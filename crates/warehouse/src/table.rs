//! In-memory tables: schema-validated row storage.

use crate::binlog::encode_payload;
use crate::binlog::EventPayload;
use crate::checksum::crc32;
use crate::error::Result;
use crate::schema::TableSchema;
use crate::value::{Row, Value};
use serde::{Deserialize, Serialize};

/// A table: a schema plus row storage.
///
/// Rows are stored in insertion order. The warehouse is append-only at the
/// fact level (XDMoD ingests logs; it does not update history); the only
/// destructive operation is [`Table::truncate`], used when aggregation
/// tables are rebuilt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Validate a batch without storing it; returns the rows after type
    /// coercion. This is the read-only half of [`Table::insert_batch`],
    /// split out so the database can validate *before* the write-ahead
    /// log append and admit the rows afterwards with
    /// [`Table::insert_checked`] — no in-memory mutation may precede the
    /// durable append.
    pub fn check_batch(&self, rows: Vec<Row>) -> Result<Vec<Row>> {
        let mut checked = Vec::with_capacity(rows.len());
        for row in rows {
            checked.push(self.schema.check_row(row)?);
        }
        Ok(checked)
    }

    /// Validate and append a batch of rows; returns the validated rows as
    /// they were stored (after type coercion) so callers can log them.
    pub fn insert_batch(&mut self, rows: Vec<Row>) -> Result<Vec<Row>> {
        let checked = self.check_batch(rows)?;
        self.rows.extend(checked.iter().cloned());
        Ok(checked)
    }

    /// Append rows that are already canonical (came out of a binlog and
    /// were validated at the source). Still re-checked in debug builds.
    pub fn insert_checked(&mut self, rows: Vec<Row>) {
        #[cfg(debug_assertions)]
        for row in &rows {
            debug_assert!(
                self.schema.check_row(row.clone()).is_ok(),
                "insert_checked received an invalid row for {}",
                self.schema.name
            );
        }
        self.rows.extend(rows);
    }

    /// Delete all rows (schema is retained).
    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Values of one column across all rows.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.column_index(column)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Order-independent content checksum.
    ///
    /// Each row is binlog-encoded and CRC'd; per-row digests are combined
    /// with a wrapping sum (so permutations of the same multiset of rows
    /// agree) and the row count is mixed in. Used to verify that satellite
    /// data replicated to the federation hub is unaltered ("the federation
    /// hub does not alter the raw, replicated data", §II-B).
    pub fn content_checksum(&self) -> u64 {
        let mut acc: u64 = 0x9E37_79B9_7F4A_7C15 ^ self.rows.len() as u64;
        for row in &self.rows {
            let payload = EventPayload::InsertBatch {
                schema: String::new(),
                table: String::new(),
                rows: vec![row.clone()],
            };
            let digest = crc32(&encode_payload(&payload)) as u64;
            // Spread the 32-bit CRC over 64 bits before summing so
            // collisions require matching both halves.
            let spread = digest.wrapping_mul(0x0100_0000_01B3);
            acc = acc.wrapping_add(spread ^ digest.rotate_left(17));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ColumnType;

    fn table() -> Table {
        Table::new(
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
    }

    fn row(res: &str, hours: f64) -> Row {
        vec![Value::Str(res.into()), Value::Float(hours)]
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.column_values("resource").unwrap(),
            vec![Value::Str("comet".into()), Value::Str("stampede".into())]
        );
    }

    #[test]
    fn insert_batch_is_atomic_per_call() {
        let mut t = table();
        // Second row is invalid; nothing should be inserted.
        let res = t.insert_batch(vec![row("comet", 1.0), vec![Value::Int(3)]]);
        assert!(res.is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_batch_returns_coerced_rows() {
        let mut t = table();
        let stored = t
            .insert_batch(vec![vec![Value::Str("comet".into()), Value::Int(4)]])
            .unwrap();
        assert_eq!(stored[0][1], Value::Float(4.0));
        assert_eq!(t.rows()[0][1], Value::Float(4.0));
    }

    #[test]
    fn truncate_keeps_schema() {
        let mut t = table();
        t.insert_batch(vec![row("comet", 1.0)]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn checksum_is_order_independent() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        b.insert_batch(vec![row("stampede", 2.0), row("comet", 1.0)])
            .unwrap();
        assert_eq!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn checksum_detects_content_change() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0)]).unwrap();
        b.insert_batch(vec![row("comet", 1.5)]).unwrap();
        assert_ne!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn checksum_detects_multiplicity_change() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0)]).unwrap();
        b.insert_batch(vec![row("comet", 1.0), row("comet", 1.0)])
            .unwrap();
        assert_ne!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn empty_tables_with_same_schema_agree() {
        assert_eq!(table().content_checksum(), table().content_checksum());
    }
}

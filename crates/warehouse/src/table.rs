//! In-memory tables: schema-validated row storage, optionally paged.
//!
//! A table's rows live in one of two stores. The default **dense** store
//! is a plain `Vec<Row>` — zero overhead, always fully resident. When
//! the database enables paging ([`crate::resident`]), the store becomes
//! a [`PagedStore`]: rows partitioned into day-bucket pages whose cold
//! members spill to disk under a shared byte budget. Either way the
//! logical contents are identical; [`Table::rows`] is fallible only
//! because a paged table may need to fault pages back in (and a corrupt
//! spill file surfaces [`crate::error::WarehouseError::SpillLost`]
//! rather than wrong rows).

use crate::binlog::encode_payload;
use crate::binlog::EventPayload;
use crate::checksum::crc32;
use crate::error::Result;
use crate::resident::{PagedStore, ResidencyManager};
use crate::schema::TableSchema;
use crate::value::{Row, Value};
use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::ops::Deref;
use std::sync::Arc;

/// Row storage behind a table: fully resident or paged under a budget.
#[derive(Debug, Clone)]
enum Store {
    /// All rows in a plain vector, in insertion order.
    Dense(Vec<Row>),
    /// Rows partitioned into budget-managed pages. The `Arc` makes
    /// clones *share* the store (cloning cannot fault pages in and must
    /// not fail); the only cloner of live database tables is the
    /// read-only snapshot capture path.
    Paged(Arc<PagedStore>),
}

/// A borrowed-or-materialized view of a table's rows, in insertion
/// order. Dense tables lend their backing slice; paged tables fault
/// everything in and hand back an owned vector. Derefs to `[Row]`, so
/// slicing, indexing, iteration, and rayon's `par_iter` all work
/// unchanged — but `for row in table.rows()?` becomes
/// `for row in table.rows()?.iter()`.
#[derive(Debug)]
pub struct RowsRef<'a>(RowsRefInner<'a>);

#[derive(Debug)]
enum RowsRefInner<'a> {
    Dense(&'a [Row]),
    Owned(Vec<Row>),
}

impl Deref for RowsRef<'_> {
    type Target = [Row];

    fn deref(&self) -> &[Row] {
        match &self.0 {
            RowsRefInner::Dense(rows) => rows,
            RowsRefInner::Owned(rows) => rows,
        }
    }
}

impl RowsRef<'_> {
    /// The rows as an owned vector (avoids a second copy when the view
    /// is already materialized).
    pub fn into_vec(self) -> Vec<Row> {
        match self.0 {
            RowsRefInner::Dense(rows) => rows.to_vec(),
            RowsRefInner::Owned(rows) => rows,
        }
    }
}

/// A table: a schema plus row storage.
///
/// Rows are stored in insertion order. The warehouse is append-only at the
/// fact level (XDMoD ingests logs; it does not update history); the only
/// destructive operation is [`Table::truncate`], used when aggregation
/// tables are rebuilt.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    store: Store,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            store: Store::Dense(Vec::new()),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Dense(rows) => rows.len(),
            Store::Paged(store) => store.len(),
        }
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All rows, in insertion order.
    ///
    /// Dense tables return a borrow and cannot fail. Paged tables fault
    /// every page in (the unbounded path — used by snapshots, dumps, and
    /// whole-table viewers; budget-bounded consumers use
    /// [`Table::scan_pages`] instead) and fail if a spilled page was
    /// lost to corruption.
    pub fn rows(&self) -> Result<RowsRef<'_>> {
        match &self.store {
            Store::Dense(rows) => Ok(RowsRef(RowsRefInner::Dense(rows))),
            Store::Paged(store) => Ok(RowsRef(RowsRefInner::Owned(store.materialize()?))),
        }
    }

    /// True if this table's rows are managed by the paging engine.
    pub fn is_paged(&self) -> bool {
        matches!(self.store, Store::Paged(_))
    }

    /// The paged store, if paging is enabled for this table.
    pub(crate) fn paged_store(&self) -> Option<&Arc<PagedStore>> {
        match &self.store {
            Store::Paged(store) => Some(store),
            Store::Dense(_) => None,
        }
    }

    /// Visit a paged table's rows one page at a time — the
    /// budget-bounded scan: each page is pinned, faulted in if spilled,
    /// handed to `f` as `(sequence, row)` pairs, then released so the
    /// residency manager can re-enforce the budget before the next page.
    /// Returns an error (and stops) on a dense table — callers branch on
    /// [`Table::is_paged`].
    pub fn scan_pages(&self, f: &mut dyn FnMut(&[(u64, Row)]) -> Result<()>) -> Result<()> {
        match &self.store {
            Store::Paged(store) => store.scan_pages(f),
            Store::Dense(_) => Err(crate::error::WarehouseError::InvalidQuery(format!(
                "scan_pages on dense table {}",
                self.schema.name
            ))),
        }
    }

    /// Convert a dense table to paged storage under `manager`'s budget.
    /// In-memory only (nothing spills until the manager next enforces);
    /// a no-op if the table is already paged.
    pub(crate) fn enable_paging(&mut self, manager: &Arc<ResidencyManager>, pages: u32) {
        if let Store::Dense(rows) = &mut self.store {
            let rows = std::mem::take(rows);
            self.store = Store::Paged(PagedStore::from_rows(
                manager.clone(),
                &self.schema,
                rows,
                pages,
            ));
        }
    }

    /// Validate a batch without storing it; returns the rows after type
    /// coercion. This is the read-only half of [`Table::insert_batch`],
    /// split out so the database can validate *before* the write-ahead
    /// log append and admit the rows afterwards with
    /// [`Table::insert_checked`] — no in-memory mutation may precede the
    /// durable append.
    pub fn check_batch(&self, rows: Vec<Row>) -> Result<Vec<Row>> {
        let mut checked = Vec::with_capacity(rows.len());
        for row in rows {
            checked.push(self.schema.check_row(row)?);
        }
        Ok(checked)
    }

    /// Validate and append a batch of rows; returns the validated rows as
    /// they were stored (after type coercion) so callers can log them.
    pub fn insert_batch(&mut self, rows: Vec<Row>) -> Result<Vec<Row>> {
        let checked = self.check_batch(rows)?;
        self.insert_checked(checked.clone());
        Ok(checked)
    }

    /// Append rows that are already canonical (came out of a binlog and
    /// were validated at the source). Still re-checked in debug builds.
    ///
    /// Infallible by contract: the database appends to the write-ahead
    /// log *before* calling this, so the mutation must succeed. Paged
    /// tables honor that by staging rows for spilled pages in an
    /// in-memory tail rather than faulting anything in.
    pub fn insert_checked(&mut self, rows: Vec<Row>) {
        #[cfg(debug_assertions)]
        for row in &rows {
            debug_assert!(
                self.schema.check_row(row.clone()).is_ok(),
                "insert_checked received an invalid row for {}",
                self.schema.name
            );
        }
        match &mut self.store {
            Store::Dense(dense) => dense.extend(rows),
            Store::Paged(store) => store.insert(rows),
        }
    }

    /// Delete all rows (schema is retained). For paged tables this also
    /// deletes the table's spill files — a truncate precedes every
    /// rewrite (aggregation rebuilds, replication resync), and stale
    /// spill data must never survive one.
    pub fn truncate(&mut self) {
        match &mut self.store {
            Store::Dense(rows) => rows.clear(),
            Store::Paged(store) => store.truncate(),
        }
    }

    /// Values of one column across all rows.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.column_index(column)?;
        Ok(self.rows()?.iter().map(|r| r[idx].clone()).collect())
    }

    /// Order-independent content checksum.
    ///
    /// Each row is binlog-encoded and CRC'd; per-row digests are combined
    /// with a wrapping sum (so permutations of the same multiset of rows
    /// agree) and the row count is mixed in. Used to verify that satellite
    /// data replicated to the federation hub is unaltered ("the federation
    /// hub does not alter the raw, replicated data", §II-B).
    ///
    /// Paged tables maintain the identical sum incrementally per page, so
    /// checksumming never faults anything in; a *lost* page deliberately
    /// perturbs its contribution so consistency checks flag the table for
    /// resync instead of vouching for unreadable rows.
    pub fn content_checksum(&self) -> u64 {
        match &self.store {
            Store::Dense(rows) => {
                let mut acc: u64 = 0x9E37_79B9_7F4A_7C15 ^ rows.len() as u64;
                for row in rows {
                    let payload = EventPayload::InsertBatch {
                        schema: String::new(),
                        table: String::new(),
                        rows: vec![row.clone()],
                    };
                    let digest = crc32(&encode_payload(&payload)) as u64;
                    // Spread the 32-bit CRC over 64 bits before summing so
                    // collisions require matching both halves.
                    let spread = digest.wrapping_mul(0x0100_0000_01B3);
                    acc = acc.wrapping_add(spread ^ digest.rotate_left(17));
                }
                acc
            }
            Store::Paged(store) => store.content_checksum(),
        }
    }
}

/// The serialized form is `{schema, rows}` regardless of the store, so
/// snapshots and dumps produced before paging existed restore unchanged
/// (and a paged table's snapshot restores as dense on a reader without
/// paging enabled). Serializing a paged table materializes it and can
/// therefore fail on a lost page — the snapshot layer surfaces that as a
/// serialization error rather than dumping wrong rows.
impl Serialize for Table {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Table", 2)?;
        st.serialize_field("schema", &self.schema)?;
        match &self.store {
            Store::Dense(rows) => st.serialize_field("rows", rows)?,
            Store::Paged(store) => {
                let rows = store.materialize().map_err(serde::ser::Error::custom)?;
                st.serialize_field("rows", &rows)?;
            }
        }
        st.end()
    }
}

impl<'de> Deserialize<'de> for Table {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct TableRepr {
            schema: TableSchema,
            rows: Vec<Row>,
        }
        let repr = TableRepr::deserialize(deserializer)?;
        Ok(Table {
            schema: repr.schema,
            store: Store::Dense(repr.rows),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resident::PagingConfig;
    use crate::schema::SchemaBuilder;
    use crate::value::ColumnType;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn table() -> Table {
        Table::new(
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
    }

    fn row(res: &str, hours: f64) -> Row {
        vec![Value::Str(res.into()), Value::Float(hours)]
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.column_values("resource").unwrap(),
            vec![Value::Str("comet".into()), Value::Str("stampede".into())]
        );
    }

    #[test]
    fn insert_batch_is_atomic_per_call() {
        let mut t = table();
        // Second row is invalid; nothing should be inserted.
        let res = t.insert_batch(vec![row("comet", 1.0), vec![Value::Int(3)]]);
        assert!(res.is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_batch_returns_coerced_rows() {
        let mut t = table();
        let stored = t
            .insert_batch(vec![vec![Value::Str("comet".into()), Value::Int(4)]])
            .unwrap();
        assert_eq!(stored[0][1], Value::Float(4.0));
        assert_eq!(t.rows().unwrap()[0][1], Value::Float(4.0));
    }

    #[test]
    fn truncate_keeps_schema() {
        let mut t = table();
        t.insert_batch(vec![row("comet", 1.0)]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn checksum_is_order_independent() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        b.insert_batch(vec![row("stampede", 2.0), row("comet", 1.0)])
            .unwrap();
        assert_eq!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn checksum_detects_content_change() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0)]).unwrap();
        b.insert_batch(vec![row("comet", 1.5)]).unwrap();
        assert_ne!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn checksum_detects_multiplicity_change() {
        let mut a = table();
        let mut b = table();
        a.insert_batch(vec![row("comet", 1.0)]).unwrap();
        b.insert_batch(vec![row("comet", 1.0), row("comet", 1.0)])
            .unwrap();
        assert_ne!(a.content_checksum(), b.content_checksum());
    }

    #[test]
    fn empty_tables_with_same_schema_agree() {
        assert_eq!(table().content_checksum(), table().content_checksum());
    }

    // --- paged-store integration ---

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn tiny_manager(tag: &str) -> std::sync::Arc<ResidencyManager> {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("xdmod-table-{}-{tag}-{n}", std::process::id()));
        ResidencyManager::new(
            &PagingConfig::new(dir).budget_bytes(1),
            xdmod_telemetry::MetricsRegistry::disabled(),
        )
    }

    #[test]
    fn paged_table_round_trips_rows_len_and_checksum() {
        let mut dense = table();
        dense
            .insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        let mut paged = dense.clone();
        paged.enable_paging(&tiny_manager("roundtrip"), 4);
        assert!(paged.is_paged());
        assert_eq!(paged.len(), 2);
        assert_eq!(
            paged.rows().unwrap().to_vec(),
            dense.rows().unwrap().to_vec()
        );
        assert_eq!(paged.content_checksum(), dense.content_checksum());
        assert_eq!(
            paged.column_values("resource").unwrap(),
            dense.column_values("resource").unwrap()
        );
    }

    #[test]
    fn paged_table_serializes_like_its_dense_twin() {
        let mut dense = table();
        dense
            .insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        let mut paged = dense.clone();
        paged.enable_paging(&tiny_manager("serde"), 4);
        let dense_json = serde_json::to_string(&dense).unwrap();
        let paged_json = serde_json::to_string(&paged).unwrap();
        assert_eq!(dense_json, paged_json);
        let restored: Table = serde_json::from_str(&paged_json).unwrap();
        assert!(!restored.is_paged());
        assert_eq!(restored.content_checksum(), dense.content_checksum());
    }

    #[test]
    fn paged_insert_and_truncate_mirror_dense() {
        let mut paged = table();
        paged.enable_paging(&tiny_manager("mutate"), 4);
        paged
            .insert_batch(vec![row("comet", 1.0), row("stampede", 2.0)])
            .unwrap();
        paged.insert_checked(vec![row("bridges", 3.0)]);
        assert_eq!(paged.len(), 3);
        paged.truncate();
        assert!(paged.is_empty());
        assert_eq!(paged.content_checksum(), table().content_checksum());
    }

    #[test]
    fn scan_pages_errors_on_dense_tables() {
        let t = table();
        assert!(t.scan_pages(&mut |_| Ok(())).is_err());
    }
}

//! Materialized aggregation tables.
//!
//! "Data aggregation is a key data processing step in which XDMoD pre-bins
//! raw dimension data, enabling the application to respond quickly to
//! complex user queries. Every day, aggregation processes run against
//! newly ingested data in the XDMoD data warehouse, binning numeric data
//! in aggregation tables." (§II-C3)
//!
//! An [`AggregationSpec`] declares, for one fact table: the time column,
//! the dimensions (raw or binned), and the measures. Materializing a spec
//! builds one table per [`Period`] named `{fact}_by_{period}`; rebuilding
//! after a config change is the paper's "re-aggregate all raw federation
//! data" operation.

use crate::bins::Bins;
use crate::database::Database;
use crate::error::{Result, WarehouseError};
use crate::parallel::{self, CacheKey, RebuildTicket};
use crate::query::{AggFn, Aggregate, GroupKey, Query, ResultSet};
use crate::schema::{ColumnDef, TableSchema};
use crate::time::Period;
use crate::value::{ColumnType, Row, Value};
use serde::{Deserialize, Serialize};

/// A dimension of an aggregation table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DimSpec {
    /// Group by the raw column value (e.g. `resource`, `user`).
    Column(String),
    /// Group a numeric column through configured bins — an XDMoD
    /// *aggregation level* (e.g. wall time in Table I).
    Binned {
        /// Source column.
        column: String,
        /// The configured levels.
        bins: Bins,
    },
}

impl DimSpec {
    /// Source column name.
    pub fn column(&self) -> &str {
        match self {
            DimSpec::Column(c) => c,
            DimSpec::Binned { column, .. } => column,
        }
    }

    /// Output column name in the aggregate table.
    pub fn output_name(&self) -> String {
        match self {
            DimSpec::Column(c) => c.clone(),
            DimSpec::Binned { column, .. } => format!("{column}_bin"),
        }
    }

    fn group_key(&self) -> GroupKey {
        match self {
            DimSpec::Column(c) => GroupKey::Column(c.clone()),
            DimSpec::Binned { column, bins } => GroupKey::Binned(column.clone(), bins.clone()),
        }
    }
}

/// Declarative description of an aggregation pipeline for one fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationSpec {
    /// Fact table to aggregate.
    pub fact_table: String,
    /// Timestamp column used for period binning.
    pub time_column: String,
    /// Dimensions carried into the aggregate tables.
    pub dims: Vec<DimSpec>,
    /// Measures computed per (period, dims) group.
    pub measures: Vec<Aggregate>,
    /// Which calendar periods to materialize.
    pub periods: Vec<Period>,
    /// Optional override for the materialized tables' name stem. By
    /// default tables are named `{fact_table}_by_{period}`; a prefix lets
    /// several pipelines aggregate the same fact table without colliding
    /// (e.g. the SUPReMM *summary* pipeline next to the full one).
    #[serde(default)]
    pub table_prefix: Option<String>,
}

impl AggregationSpec {
    /// Name of the materialized table for `period`
    /// (e.g. `jobfact_by_month`).
    pub fn table_name(&self, period: Period) -> String {
        let stem = self.table_prefix.as_deref().unwrap_or(&self.fact_table);
        format!("{stem}_by_{}", period.ident())
    }

    /// Schema of the materialized table for `period`.
    ///
    /// Layout: `period_id: Int`, `period_start: Time`, one column per
    /// dimension, then one per measure.
    pub fn output_schema(&self, fact: &TableSchema, period: Period) -> Result<TableSchema> {
        let mut columns = vec![
            ColumnDef::required("period_id", ColumnType::Int),
            ColumnDef::required("period_start", ColumnType::Time),
        ];
        for d in &self.dims {
            let src = fact.column(d.column())?;
            let ty = match d {
                DimSpec::Column(_) => src.ty,
                DimSpec::Binned { .. } => ColumnType::Str,
            };
            columns.push(ColumnDef {
                name: d.output_name(),
                ty,
                nullable: true,
            });
        }
        for m in &self.measures {
            // Validate measure input columns exist up front.
            if let Some(c) = &m.column {
                fact.column(c)?;
            }
            if let Some(w) = &m.weight {
                fact.column(w)?;
            }
            let ty = match m.func {
                AggFn::Count | AggFn::CountDistinct => ColumnType::Int,
                _ => ColumnType::Float,
            };
            columns.push(ColumnDef {
                name: m.alias.clone(),
                ty,
                nullable: true,
            });
        }
        TableSchema::new(&self.table_name(period), columns)
    }

    /// The grouped query materializing one period's table: period bucket
    /// first, then the configured dimensions and measures.
    pub fn period_query(&self, period: Period) -> Query {
        let mut query = Query::new().group(GroupKey::PeriodOf(self.time_column.clone(), period));
        for d in &self.dims {
            query = query.group(d.group_key());
        }
        for m in &self.measures {
            query = query.aggregate(m.clone());
        }
        query
    }

    /// Transform query output (period bucket id first) into the
    /// aggregate-table layout (id + start + dims + measures).
    fn transform_rows(&self, period: Period, rs: ResultSet) -> Result<Vec<Row>> {
        rs.rows
            .into_iter()
            .map(|row| {
                let mut out = Vec::with_capacity(row.len() + 1);
                let bucket = row[0].as_i64().ok_or_else(|| {
                    WarehouseError::InvalidQuery(format!(
                        "NULL {} encountered while aggregating {}",
                        self.time_column, self.fact_table
                    ))
                })?;
                out.push(Value::Int(bucket));
                out.push(Value::Time(period.bucket_start(bucket)));
                out.extend(row.into_iter().skip(1));
                Ok(out)
            })
            .collect()
    }

    /// Write one period's rows: truncate the existing table (layout
    /// permitting) or create it, then insert.
    fn write_period_table(
        &self,
        db: &mut Database,
        schema: &str,
        out_schema: TableSchema,
        rows: Vec<Row>,
    ) -> Result<()> {
        let table_name = out_schema.name.clone();
        match db.table(schema, &table_name) {
            Ok(existing) => {
                if *existing.schema() != out_schema {
                    return Err(WarehouseError::SchemaMismatch(format!(
                        "aggregate table {schema}.{table_name} exists with a \
                         different layout; drop it before re-aggregating"
                    )));
                }
                db.truncate(schema, &table_name)?;
            }
            Err(_) => {
                db.create_table(schema, out_schema)?;
            }
        }
        db.insert(schema, &table_name, rows)?;
        Ok(())
    }

    /// The cache key marking one period's materialized table current.
    fn period_cache_key(&self, schema: &str, period: Period) -> CacheKey {
        CacheKey {
            schema: schema.to_owned(),
            table: self.table_name(period),
            fingerprint: self.period_query(period).fingerprint(),
        }
    }

    /// Build (or rebuild) every period's aggregate table for the fact
    /// table in `schema`. Existing aggregate tables are truncated and
    /// repopulated — this is both the daily aggregation run and the
    /// "re-aggregate after changing levels" administrative action.
    pub fn materialize(&self, db: &mut Database, schema: &str) -> Result<()> {
        for &period in &self.periods {
            let span = db.telemetry().span(
                "warehouse_aggregation_seconds",
                &[("table", &self.table_name(period))],
            );
            let fact = db.table(schema, &self.fact_table)?;
            let out_schema = self.output_schema(&fact.schema().clone(), period)?;
            let rs = self.period_query(period).run(fact)?;
            let rows = self.transform_rows(period, rs)?;
            self.write_period_table(db, schema, out_schema, rows)?;
            span.finish();
        }
        Ok(())
    }

    /// Compute phase of a split rebuild: aggregate the fact table with
    /// the partitioned parallel engine into staged per-period outputs,
    /// without writing anything. Runs under a shared borrow, so the hub
    /// can compute every satellite's aggregates concurrently under one
    /// read lock.
    ///
    /// When the cache marks every period table current at the fact
    /// table's [`RebuildTicket`] the outputs come back empty and
    /// [`AggregationSpec::apply_outputs`] is a no-op — a repeat
    /// aggregation run after no new ingest costs O(1).
    pub fn plan_parallel(&self, db: &Database, schema: &str) -> Result<AggregationOutputs> {
        let ticket = db.rebuild_ticket(schema, &self.fact_table);
        let telemetry = db.telemetry().clone();
        if !self.periods.is_empty()
            && self.periods.iter().all(|&p| {
                db.aggregate_cache()
                    .is_fresh(&self.period_cache_key(schema, p), ticket)
            })
        {
            if telemetry.is_enabled() {
                for &period in &self.periods {
                    telemetry
                        .counter(
                            "warehouse_aggcache_hits_total",
                            &[("table", &self.table_name(period))],
                        )
                        .inc();
                }
            }
            return Ok(AggregationOutputs {
                ticket,
                tables: Vec::new(),
                cached: true,
            });
        }
        let fact = db.table(schema, &self.fact_table)?;
        let mut tables = Vec::with_capacity(self.periods.len());
        for &period in &self.periods {
            let table_name = self.table_name(period);
            if telemetry.is_enabled() {
                telemetry
                    .counter("warehouse_aggcache_misses_total", &[("table", &table_name)])
                    .inc();
            }
            let span = telemetry.span("warehouse_aggregation_seconds", &[("table", &table_name)]);
            let out_schema = self.output_schema(fact.schema(), period)?;
            // The delta-fold engine reuses retained per-shard partials and
            // folds only the binlog records appended since the last pass;
            // byte-identical to `run_sharded` (same per-shard fold order,
            // same ascending merge), so flipping `incremental` off is a
            // pure-diagnostics switch, never a results change.
            let rs = if db.incremental_enabled() {
                db.run_delta_fold(
                    schema,
                    &self.fact_table,
                    &self.period_query(period),
                    &table_name,
                )?
                .0
            } else {
                parallel::run_sharded(
                    &self.period_query(period),
                    fact,
                    db.parallelism(),
                    &telemetry,
                    &table_name,
                )?
            };
            let rows = self.transform_rows(period, rs)?;
            span.finish();
            tables.push((out_schema, rows));
        }
        Ok(AggregationOutputs {
            ticket,
            tables,
            cached: false,
        })
    }

    /// Apply phase of a split rebuild, run under the exclusive borrow
    /// (write lock). Revalidates the outputs' [`RebuildTicket`] first:
    /// if the fact table was rewritten in between — ingest, or an
    /// external rebuild such as [`Replicator::resync_target`] bumping the
    /// rebuild generation — the stale outputs are discarded, the
    /// conflict is counted (`warehouse_aggregation_rebuild_conflicts_total`),
    /// and the aggregation is recomputed right here where nothing can
    /// interleave. On success every period table is marked current so
    /// the next [`AggregationSpec::plan_parallel`] is a cache hit.
    ///
    /// [`Replicator::resync_target`]: ../../xdmod_replication/struct.Replicator.html#method.resync_target
    pub fn apply_outputs(
        &self,
        db: &mut Database,
        schema: &str,
        outputs: AggregationOutputs,
    ) -> Result<()> {
        if outputs.cached {
            return Ok(());
        }
        let mut outputs = outputs;
        if db.rebuild_ticket(schema, &self.fact_table) != outputs.ticket {
            db.telemetry()
                .counter(
                    "warehouse_aggregation_rebuild_conflicts_total",
                    &[("table", &self.fact_table)],
                )
                .inc();
            outputs = self.plan_parallel(db, schema)?;
            if outputs.cached {
                return Ok(());
            }
        }
        let ticket = outputs.ticket;
        for (out_schema, rows) in outputs.tables {
            self.write_period_table(db, schema, out_schema, rows)?;
        }
        for &period in &self.periods {
            db.aggregate_cache()
                .put(self.period_cache_key(schema, period), ticket, None);
        }
        Ok(())
    }

    /// [`AggregationSpec::plan_parallel`] + [`AggregationSpec::apply_outputs`]
    /// in one call, for callers already holding exclusive access.
    pub fn materialize_parallel(&self, db: &mut Database, schema: &str) -> Result<()> {
        let outputs = self.plan_parallel(db, schema)?;
        self.apply_outputs(db, schema, outputs)
    }
}

/// Staged output of [`AggregationSpec::plan_parallel`]: per-period table
/// schemas and rows, stamped with the fact table's data version at
/// compute time. Opaque by design — the only consumer is
/// [`AggregationSpec::apply_outputs`], which revalidates the stamp.
#[derive(Debug)]
pub struct AggregationOutputs {
    ticket: RebuildTicket,
    tables: Vec<(TableSchema, Vec<Row>)>,
    cached: bool,
}

impl AggregationOutputs {
    /// True when the cache already marked every period table current
    /// (applying is a no-op).
    pub fn is_cached(&self) -> bool {
        self.cached
    }

    /// The fact-table data version these outputs were computed from.
    pub fn ticket(&self) -> RebuildTicket {
        self.ticket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::Bin;
    use crate::schema::SchemaBuilder;
    use crate::time::CivilDate;

    fn setup() -> (Database, AggregationSpec) {
        let mut db = Database::new();
        db.create_schema("xdmod_a").unwrap();
        db.create_table(
            "xdmod_a",
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("wall_hours", ColumnType::Float)
                .required("cpu_hours", ColumnType::Float)
                .required("end_time", ColumnType::Time)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mk = |res: &str, wall: f64, cpu: f64, month: u8, day: u8| {
            vec![
                Value::Str(res.into()),
                Value::Float(wall),
                Value::Float(cpu),
                Value::Time(CivilDate::new(2017, month, day).to_epoch() + 3600),
            ]
        };
        db.insert(
            "xdmod_a",
            "jobfact",
            vec![
                mk("comet", 0.5, 8.0, 1, 5),
                mk("comet", 3.0, 96.0, 1, 20),
                mk("comet", 4.5, 144.0, 2, 5),
                mk("gordon", 2.0, 32.0, 2, 10),
            ],
        )
        .unwrap();

        let spec = AggregationSpec {
            fact_table: "jobfact".into(),
            time_column: "end_time".into(),
            dims: vec![
                DimSpec::Column("resource".into()),
                DimSpec::Binned {
                    column: "wall_hours".into(),
                    bins: Bins::new(vec![
                        Bin::new("0-1 hours", 0.0, 1.0),
                        Bin::new("1-5 hours", 1.0, 5.0),
                    ])
                    .unwrap(),
                },
            ],
            measures: vec![
                Aggregate::count("job_count"),
                Aggregate::of(AggFn::Sum, "cpu_hours", "total_cpu_hours"),
            ],
            periods: vec![Period::Month, Period::Year],
            table_prefix: None,
        };
        (db, spec)
    }

    #[test]
    fn materialize_creates_period_tables() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let names = db.table_names("xdmod_a").unwrap();
        assert!(names.contains(&"jobfact_by_month"));
        assert!(names.contains(&"jobfact_by_year"));
    }

    #[test]
    fn monthly_rollup_is_correct() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let t = db.table("xdmod_a", "jobfact_by_month").unwrap();
        // Jan comet: two jobs in different wall bins -> two rows;
        // Feb comet + Feb gordon -> two rows. Total 4.
        assert_eq!(t.len(), 4);
        let schema = t.schema();
        let cpu_idx = schema.column_index("total_cpu_hours").unwrap();
        let rows = t.rows().unwrap();
        let total: f64 = rows.iter().map(|r| r[cpu_idx].as_f64().unwrap()).sum();
        assert_eq!(total, 8.0 + 96.0 + 144.0 + 32.0);
    }

    #[test]
    fn yearly_rollup_collapses_months() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let t = db.table("xdmod_a", "jobfact_by_year").unwrap();
        // comet: bins 0-1 (1 job) and 1-5 (2 jobs); gordon: 1-5 (1 job).
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn period_start_matches_bucket() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let t = db.table("xdmod_a", "jobfact_by_month").unwrap();
        let s = t.schema();
        let id_idx = s.column_index("period_id").unwrap();
        let start_idx = s.column_index("period_start").unwrap();
        for row in t.rows().unwrap().iter() {
            let id = row[id_idx].as_i64().unwrap();
            let start = row[start_idx].as_time().unwrap();
            assert_eq!(Period::Month.bucket_start(id), start);
        }
    }

    #[test]
    fn rematerialize_is_idempotent() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let before = db
            .table("xdmod_a", "jobfact_by_month")
            .unwrap()
            .content_checksum();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let after = db
            .table("xdmod_a", "jobfact_by_month")
            .unwrap()
            .content_checksum();
        assert_eq!(before, after);
    }

    #[test]
    fn rebinning_changes_layout_only_with_same_name_errors() {
        let (mut db, mut spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        // Changing bin *contents* keeps the layout: rebuild succeeds.
        spec.dims[1] = DimSpec::Binned {
            column: "wall_hours".into(),
            bins: Bins::new(vec![Bin::new("0-10 hours", 0.0, 10.0)]).unwrap(),
        };
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let t = db.table("xdmod_a", "jobfact_by_year").unwrap();
        // Now everything lands in one bin per resource.
        assert_eq!(t.len(), 2);

        // Changing the *layout* (adding a measure) must be rejected while
        // the old table exists.
        spec.measures
            .push(Aggregate::of(AggFn::Avg, "cpu_hours", "avg_cpu"));
        let err = spec.materialize(&mut db, "xdmod_a").unwrap_err();
        assert!(matches!(err, WarehouseError::SchemaMismatch(_)));
    }

    #[test]
    fn ingest_then_reaggregate_picks_up_new_rows() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        db.insert(
            "xdmod_a",
            "jobfact",
            vec![vec![
                Value::Str("comet".into()),
                Value::Float(0.2),
                Value::Float(1.0),
                Value::Time(CivilDate::new(2017, 3, 1).to_epoch()),
            ]],
        )
        .unwrap();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let t = db.table("xdmod_a", "jobfact_by_month").unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn missing_fact_table_errors() {
        let (mut db, mut spec) = setup();
        spec.fact_table = "nope".into();
        assert!(spec.materialize(&mut db, "xdmod_a").is_err());
    }

    #[test]
    fn materialize_times_each_period_table() {
        let (mut db, spec) = setup();
        let reg = xdmod_telemetry::MetricsRegistry::new();
        db.set_telemetry(reg.clone());
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let snap = reg.snapshot();
        for period in [Period::Month, Period::Year] {
            let name = spec.table_name(period);
            let h = snap
                .histogram("warehouse_aggregation_seconds", &[("table", &name)])
                .unwrap_or_else(|| panic!("no aggregation timing for {name}"));
            assert_eq!(h.count, 1);
        }
    }

    #[test]
    fn materialize_parallel_matches_serial_byte_for_byte() {
        let (mut db, spec) = setup();
        spec.materialize(&mut db, "xdmod_a").unwrap();
        let serial = db
            .table("xdmod_a", "jobfact_by_month")
            .unwrap()
            .content_checksum();
        let (mut db2, _) = setup();
        db2.set_parallelism(crate::parallel::PoolConfig::new(4).with_shards(6));
        spec.materialize_parallel(&mut db2, "xdmod_a").unwrap();
        let parallel = db2
            .table("xdmod_a", "jobfact_by_month")
            .unwrap()
            .content_checksum();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn incremental_materialization_is_byte_identical_and_rides_the_delta() {
        let extra = || {
            vec![
                vec![
                    Value::Str("gordon".into()),
                    Value::Float(0.25),
                    Value::Float(4.0),
                    Value::Time(CivilDate::new(2017, 3, 3).to_epoch() + 7200),
                ],
                vec![
                    Value::Str("comet".into()),
                    Value::Float(2.5),
                    Value::Float(80.0),
                    Value::Time(CivilDate::new(2017, 1, 28).to_epoch() + 60),
                ],
            ]
        };
        let pool = crate::parallel::PoolConfig::new(3).with_shards(5);

        // Incremental path: cold build, ingest, delta-folded rebuild.
        let (mut db, spec) = setup();
        let reg = xdmod_telemetry::MetricsRegistry::new();
        db.set_telemetry(reg.clone());
        db.set_parallelism(pool);
        assert!(db.incremental_enabled());
        spec.materialize_parallel(&mut db, "xdmod_a").unwrap();
        db.insert("xdmod_a", "jobfact", extra()).unwrap();
        spec.materialize_parallel(&mut db, "xdmod_a").unwrap();
        let snap = reg.snapshot();
        assert!(
            snap.counter_total("warehouse_delta_folds_total") > 0,
            "second materialization must ride the delta, not rebuild"
        );
        assert!(snap.counter_total("warehouse_delta_folded_records_total") > 0);

        // Same workload with the engine disabled: full rebuilds only.
        let (mut db2, _) = setup();
        db2.set_parallelism(pool);
        db2.set_incremental(false);
        spec.materialize_parallel(&mut db2, "xdmod_a").unwrap();
        db2.insert("xdmod_a", "jobfact", extra()).unwrap();
        spec.materialize_parallel(&mut db2, "xdmod_a").unwrap();
        assert!(db2.delta_cache().is_empty());

        for table in ["jobfact_by_month", "jobfact_by_year"] {
            assert_eq!(
                db.table("xdmod_a", table).unwrap().content_checksum(),
                db2.table("xdmod_a", table).unwrap().content_checksum(),
                "{table}: incremental and full-rebuild materializations diverged"
            );
        }
    }

    #[test]
    fn repeat_parallel_materialization_is_a_cache_hit() {
        let (mut db, spec) = setup();
        let reg = xdmod_telemetry::MetricsRegistry::new();
        db.set_telemetry(reg.clone());
        spec.materialize_parallel(&mut db, "xdmod_a").unwrap();
        let before = db
            .table("xdmod_a", "jobfact_by_month")
            .unwrap()
            .content_checksum();

        let outputs = spec.plan_parallel(&db, "xdmod_a").unwrap();
        assert!(outputs.is_cached());
        spec.apply_outputs(&mut db, "xdmod_a", outputs).unwrap();
        assert_eq!(
            db.table("xdmod_a", "jobfact_by_month")
                .unwrap()
                .content_checksum(),
            before
        );
        let snap = reg.snapshot();
        assert!(
            snap.counter(
                "warehouse_aggcache_hits_total",
                &[("table", "jobfact_by_month")]
            )
            .unwrap()
                > 0
        );

        // New ingest invalidates: the next plan recomputes.
        db.insert(
            "xdmod_a",
            "jobfact",
            vec![vec![
                Value::Str("comet".into()),
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Time(CivilDate::new(2017, 4, 1).to_epoch()),
            ]],
        )
        .unwrap();
        let outputs = spec.plan_parallel(&db, "xdmod_a").unwrap();
        assert!(!outputs.is_cached());
    }

    #[test]
    fn stale_outputs_trigger_guarded_recompute_on_apply() {
        let (mut db, spec) = setup();
        let reg = xdmod_telemetry::MetricsRegistry::new();
        db.set_telemetry(reg.clone());
        let outputs = spec.plan_parallel(&db, "xdmod_a").unwrap();

        // Facts change between compute and apply (the resync race).
        db.insert(
            "xdmod_a",
            "jobfact",
            vec![vec![
                Value::Str("gordon".into()),
                Value::Float(0.5),
                Value::Float(64.0),
                Value::Time(CivilDate::new(2017, 3, 15).to_epoch()),
            ]],
        )
        .unwrap();
        spec.apply_outputs(&mut db, "xdmod_a", outputs).unwrap();
        assert_eq!(
            reg.snapshot().counter(
                "warehouse_aggregation_rebuild_conflicts_total",
                &[("table", "jobfact")]
            ),
            Some(1)
        );
        // The applied aggregates include the late row, not the stale view.
        let t = db.table("xdmod_a", "jobfact_by_month").unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn external_rebuild_generation_staleness_is_guarded_too() {
        let (mut db, spec) = setup();
        let reg = xdmod_telemetry::MetricsRegistry::new();
        db.set_telemetry(reg.clone());
        let outputs = spec.plan_parallel(&db, "xdmod_a").unwrap();
        // A resync rewrote the schema wholesale without changing the
        // watermark bookkeeping it bypasses: only the generation moves.
        db.note_external_rebuild();
        spec.apply_outputs(&mut db, "xdmod_a", outputs).unwrap();
        assert_eq!(
            reg.snapshot().counter(
                "warehouse_aggregation_rebuild_conflicts_total",
                &[("table", "jobfact")]
            ),
            Some(1)
        );
        // Content still ends up correct (recomputed from current facts).
        let t = db.table("xdmod_a", "jobfact_by_month").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let (_, spec) = setup();
        let json = serde_json::to_string(&spec).unwrap();
        let back: AggregationSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

//! Incremental aggregation state: the **delta-fold** engine's retained
//! partials and the bookkeeping that decides when they can be trusted.
//!
//! Materialization used to be all-or-nothing: any ingest moved the fact
//! table's [`RebuildTicket`](crate::parallel::RebuildTicket) watermark
//! and every aggregate recomputed from scratch. But the binlog already
//! carries exactly the delta — this module keys retained
//! [`ShardedPartials`] by `(schema, fact table, query fingerprint)` and
//! stamps each entry with a **cursor** (the binlog position through
//! which records are folded) plus the rebuild generation it was built
//! under. [`Database::run_delta_fold`](crate::database::Database::run_delta_fold)
//! advances an entry by folding only the records between its cursor and
//! the log head, touching only the day-bucket shards those records land
//! on, and falls back to a full rebuild whenever the retained state can
//! no longer be trusted (see [`FallbackReason`]).

use crate::binlog::LogPosition;
use crate::parallel::{CacheKey, ShardedPartials};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Retained incremental state for one query over one fact table.
#[derive(Debug, Clone)]
pub(crate) struct DeltaEntry {
    /// Binlog position through which every record touching the fact
    /// table has been folded into `partials`. Records at or before the
    /// cursor are never re-read; records after it are the delta.
    pub cursor: LogPosition,
    /// [`crate::database::Database::rebuild_generation`] at fold time. A
    /// mismatch means an external actor rewrote tables wholesale
    /// (replication resync, restore) and the partials are garbage.
    pub generation: u64,
    /// The per-shard retained partials.
    pub partials: ShardedPartials,
}

/// Why a delta fold abandoned its retained partials and rebuilt cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The rebuild generation moved: a replication resync or restore
    /// rewrote table contents outside normal DML accounting. (Belt and
    /// braces — [`note_external_rebuild`] also clears the delta cache,
    /// so this fires only for an entry held out across the bump.)
    ///
    /// [`note_external_rebuild`]: crate::database::Database::note_external_rebuild
    ExternalRebuild,
    /// Snapshot-triggered binlog compaction outran the cursor: the
    /// records between cursor and horizon are gone, so the delta cannot
    /// be reconstructed.
    CompactedAway,
    /// A non-insert mutation (truncate, re-create) hit the fact table;
    /// folded state cannot "unfold" removed rows.
    FactRewrite,
    /// The pool's shard geometry changed since the partials were built.
    Resharded,
    /// The delta read failed transiently (injected I/O fault); rebuilt
    /// from the live table instead of retrying.
    ReadError,
}

impl FallbackReason {
    /// Stable label used in the
    /// `warehouse_delta_fallback_rebuilds_total{reason=..}` counter.
    pub fn label(&self) -> &'static str {
        match self {
            FallbackReason::ExternalRebuild => "external-rebuild",
            FallbackReason::CompactedAway => "compacted",
            FallbackReason::FactRewrite => "fact-rewrite",
            FallbackReason::Resharded => "reshard",
            FallbackReason::ReadError => "read-error",
        }
    }
}

/// How one delta-fold pass obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// No retained partials existed; built from the full table.
    Cold,
    /// Retained partials advanced by folding only the binlog delta.
    Incremental,
    /// Retained partials were discarded as untrustworthy and the state
    /// was rebuilt from the full table.
    Fallback(FallbackReason),
}

/// What one [`Database::run_delta_fold`] pass did, for callers (and
/// tests) that assert on the path taken rather than just the bytes.
///
/// [`Database::run_delta_fold`]: crate::database::Database::run_delta_fold
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// The path taken.
    pub outcome: DeltaOutcome,
    /// Rows folded during this pass: the delta rows on an incremental
    /// pass, the whole table on a cold or fallback build.
    pub rows_folded: usize,
    /// Shards that received rows this pass (incremental passes only;
    /// cold/fallback builds report the full shard count).
    pub dirty_shards: usize,
}

impl DeltaReport {
    /// True when the pass reused retained partials (no full rebuild).
    pub fn is_incremental(&self) -> bool {
        matches!(self.outcome, DeltaOutcome::Incremental)
    }

    /// The fallback trigger, when the pass discarded retained state.
    pub fn fallback_reason(&self) -> Option<FallbackReason> {
        match self.outcome {
            DeltaOutcome::Fallback(reason) => Some(reason),
            _ => None,
        }
    }
}

/// Keyed store of retained delta-fold state, interior-mutable so the
/// fold path runs under a shared borrow (the hub plans every satellite's
/// aggregation concurrently under one read lock).
///
/// Entries are **taken** for the duration of a fold and put back
/// advanced — two concurrent folds of the same key degrade gracefully:
/// one gets the entry, the other cold-builds, and whichever finishes
/// last leaves a valid entry (both describe "all rows through cursor").
#[derive(Debug, Default)]
pub struct DeltaFoldCache {
    entries: Mutex<HashMap<CacheKey, DeltaEntry>>,
}

impl DeltaFoldCache {
    /// Empty cache.
    pub fn new() -> Self {
        DeltaFoldCache::default()
    }

    /// Remove and return the retained state for `key`, if any.
    pub(crate) fn take(&self, key: &CacheKey) -> Option<DeltaEntry> {
        self.entries.lock().remove(key)
    }

    /// Store (or supersede) retained state.
    pub(crate) fn put(&self, key: CacheKey, entry: DeltaEntry) {
        self.entries.lock().insert(key, entry);
    }

    /// The retained cursor for `key` — the introspection surface tests
    /// use to prove cursors reset on resync/restore.
    pub fn cursor_of(&self, key: &CacheKey) -> Option<LogPosition> {
        self.entries.lock().get(key).map(|e| e.cursor)
    }

    /// Drop every entry; returns how many were discarded. Called by
    /// [`note_external_rebuild`] and restore so no cursor survives an
    /// external rewrite of table contents.
    ///
    /// [`note_external_rebuild`]: crate::database::Database::note_external_rebuild
    pub fn clear(&self) -> usize {
        let mut entries = self.entries.lock();
        let dropped = entries.len();
        entries.clear();
        dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ShardedPartials;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            schema: "s".into(),
            table: "jobfact".into(),
            fingerprint: fp,
        }
    }

    #[test]
    fn take_put_cycle_round_trips() {
        let cache = DeltaFoldCache::new();
        assert!(cache.is_empty());
        let cursor = LogPosition { epoch: 0, seqno: 9 };
        cache.put(
            key(1),
            DeltaEntry {
                cursor,
                generation: 2,
                partials: ShardedPartials::new(4),
            },
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.cursor_of(&key(1)), Some(cursor));
        assert_eq!(cache.cursor_of(&key(2)), None);

        let taken = cache.take(&key(1)).expect("entry present");
        assert_eq!(taken.generation, 2);
        assert_eq!(taken.partials.shard_count(), 4);
        // Taken means gone until put back.
        assert!(cache.take(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_reports_dropped_entries() {
        let cache = DeltaFoldCache::new();
        for fp in 0..3 {
            cache.put(
                key(fp),
                DeltaEntry {
                    cursor: LogPosition::START,
                    generation: 0,
                    partials: ShardedPartials::new(1),
                },
            );
        }
        assert_eq!(cache.clear(), 3);
        assert!(cache.is_empty());
        assert_eq!(cache.clear(), 0);
    }
}

//! Deterministic random sampling helpers.
//!
//! Every simulator in this crate is seeded, so identical seeds reproduce
//! identical logs byte-for-byte — the property the benchmark harness
//! relies on to regenerate the paper's figures stably. Distribution
//! sampling (exponential, log-normal, Zipf) is implemented here from
//! uniform draws rather than pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distribution samplers the workload
/// models need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second value of the last Box-Muller pair.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child stream (used so per-resource and
    /// per-month streams don't perturb each other when parameters
    /// change).
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label through splitmix64 so fork(0) and fork(1) differ
        // substantially.
        let mut z = self.inner.random::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_int(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = 1.0 - self.uniform(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard normal (Box-Muller, with caching of the pair's second
    /// value).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Log-normal with the given median and sigma (of the underlying
    /// normal). Job runtimes and file sizes are classically log-normal.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0 && sigma >= 0.0);
        median * (sigma * self.normal()).exp()
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` — heavy-tailed
    /// user activity (a few users submit most jobs).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        // Sample by inverse CDF over precomputable harmonic weights; n is
        // small (user pools), so a linear scan is fine.
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.uniform() * h;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Pick an index from unnormalized weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        // fork(label) must not depend on how much the child consumes.
        let mut parent1 = SimRng::new(42);
        let mut c1 = parent1.fork(1);
        let _ = c1.uniform();
        let c2 = parent1.fork(2);

        let mut parent2 = SimRng::new(42);
        let mut d1 = parent2.fork(1);
        let _ = d1.uniform();
        let _ = d1.uniform(); // child consumed more...
        let mut d2 = parent2.fork(2);
        let mut c2 = c2;
        assert_eq!(c2.uniform().to_bits(), d2.uniform().to_bits());
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(13);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SimRng::new(17);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal(2.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 2.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let mut rng = SimRng::new(19);
        let mut counts = [0usize; 20];
        for _ in 0..10_000 {
            counts[rng.zipf(20, 1.1)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[19] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = SimRng::new(23);
        let mut counts = [0usize; 3];
        for _ in 0..9_000 {
            counts[rng.weighted(&[1.0, 2.0, 0.0])] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[0]);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn samplers_stay_in_domain() {
        let mut rng = SimRng::new(29);
        for _ in 0..1_000 {
            assert!(rng.exponential(1.0) >= 0.0);
            assert!(rng.lognormal(1.0, 0.5) > 0.0);
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let k = rng.uniform_int(5, 9);
            assert!((5..9).contains(&k));
        }
    }
}

//! # xdmod-sim
//!
//! Deterministic synthetic workload generators — the stand-in for the
//! production data sources this paper's figures were drawn from (XSEDE
//! accounting data, CCR's Isilon/GPFS storage, and CCR's OpenStack
//! research cloud), none of which are publicly available.
//!
//! Every generator is seeded and reproducible, and each emits the *raw
//! format* the corresponding `xdmod-ingest` shredder consumes, so the
//! entire XDMoD pipeline (ingest → warehouse → aggregate → federate →
//! chart) is exercised end-to-end:
//!
//! - [`hpc`] — per-resource job traces as `sacct` logs (plus PCP-style
//!   performance archives), with 2017 profiles shaped after Comet,
//!   Stampede, and Stampede2 for Fig. 1.
//! - [`storage_sim`] — monthly per-user filesystem samples as JSON
//!   documents, with Fig. 6's steady growth.
//! - [`cloud_sim`] — VM lifecycle event feeds with flavor-dependent
//!   lifetimes, giving Fig. 7's core-hours-by-memory-size shape.

#![warn(missing_docs)]

pub mod cloud_sim;
pub mod hpc;
pub mod rng;
pub mod storage_sim;

pub use cloud_sim::CloudSim;
pub use hpc::{ClusterSim, ResourceProfile, SimJob};
pub use rng::SimRng;
pub use storage_sim::{FilesystemProfile, StorageSim};

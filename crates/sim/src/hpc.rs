//! HPC cluster / job-trace simulator.
//!
//! Stands in for the production accounting data this paper's figures are
//! drawn from (XSEDE's Comet, Stampede, and Stampede2; CCR's clusters).
//! Each [`ResourceProfile`] describes one cluster: size, wall-time limit,
//! HPL throughput (the basis of its XD SU conversion factor, §II-C6), and
//! a month-by-month activity curve.
//!
//! The bundled 2017 profiles are shaped after the real systems' year:
//! Comet ran steadily all year; Stampede 1 was ramping *down* toward
//! decommissioning; Stampede2 entered production mid-year and ramped
//! *up*. Those curves — not absolute magnitudes — are what make the
//! regenerated Fig. 1 comparable to the paper's.

use crate::rng::SimRng;
use xdmod_warehouse::time::{days_in_month, format_iso_datetime, CivilDate};

/// Description of one simulated HPC resource.
#[derive(Debug, Clone)]
pub struct ResourceProfile {
    /// Resource name as it appears in XDMoD.
    pub name: String,
    /// Node count.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Queue wall-time limit, hours.
    pub wall_limit_hours: f64,
    /// Measured HPL throughput per core, GFLOP/s — the XD SU conversion
    /// factor relative to the Phase-1 DTF reference (factor 1.0).
    pub hpl_gflops_per_core: f64,
    /// Mean completed jobs in a fully-active month.
    pub base_jobs_per_month: u32,
    /// Relative activity per calendar month (index 0 = January).
    pub monthly_activity: [f64; 12],
    /// Size of the submitting-user pool.
    pub n_users: usize,
    /// Queue names, most-used first.
    pub queues: Vec<String>,
}

impl ResourceProfile {
    /// A generic steady-state cluster.
    pub fn generic(name: &str, nodes: u32, wall_limit_hours: f64, gflops_per_core: f64) -> Self {
        ResourceProfile {
            name: name.to_owned(),
            nodes,
            cores_per_node: 24,
            wall_limit_hours,
            hpl_gflops_per_core: gflops_per_core,
            base_jobs_per_month: 300,
            monthly_activity: [1.0; 12],
            n_users: 60,
            queues: vec!["normal".into(), "debug".into(), "large".into()],
        }
    }

    /// Comet-like profile: steady, high activity all of 2017.
    pub fn comet() -> Self {
        ResourceProfile {
            base_jobs_per_month: 500,
            n_users: 120,
            ..ResourceProfile::generic("comet", 1944, 48.0, 1.9)
        }
    }

    /// Stampede-1-like profile: ramping down to decommissioning through
    /// 2017.
    pub fn stampede() -> Self {
        ResourceProfile {
            cores_per_node: 16,
            base_jobs_per_month: 600,
            monthly_activity: [
                1.0, 1.0, 0.95, 0.9, 0.8, 0.7, 0.55, 0.4, 0.3, 0.2, 0.1, 0.05,
            ],
            n_users: 150,
            ..ResourceProfile::generic("stampede", 6400, 48.0, 1.0)
        }
    }

    /// Stampede2-like profile: entering production mid-2017, ramping up.
    /// KNL nodes have many (68) weak cores, so the per-core HPL figure —
    /// and with it the XD SU conversion factor — is well below a Xeon
    /// core's.
    pub fn stampede2() -> Self {
        ResourceProfile {
            cores_per_node: 68,
            base_jobs_per_month: 700,
            monthly_activity: [
                0.0, 0.0, 0.0, 0.0, 0.10, 0.30, 0.50, 0.70, 0.85, 0.95, 1.0, 1.0,
            ],
            n_users: 140,
            ..ResourceProfile::generic("stampede2", 4200, 48.0, 0.55)
        }
    }

    /// Total cores of the machine.
    pub fn total_cores(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.cores_per_node)
    }
}

/// One simulated job (pre-serialization).
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Job id, unique within the resource's trace.
    pub job_id: i64,
    /// Resource name.
    pub resource: String,
    /// Submitting user.
    pub user: String,
    /// Account (PI group).
    pub account: String,
    /// Queue.
    pub partition: String,
    /// Nodes allocated.
    pub nodes: i64,
    /// Cores allocated.
    pub cores: i64,
    /// Submit epoch.
    pub submit: i64,
    /// Start epoch.
    pub start: i64,
    /// End epoch.
    pub end: i64,
    /// Final state.
    pub state: String,
    /// GPUs allocated.
    pub gpus: i64,
}

impl SimJob {
    /// Wall hours of the job.
    pub fn wall_hours(&self) -> f64 {
        (self.end - self.start) as f64 / 3600.0
    }

    /// CPU hours of the job.
    pub fn cpu_hours(&self) -> f64 {
        self.cores as f64 * self.wall_hours()
    }

    /// Serialize as one `sacct --parsable2` line.
    pub fn to_sacct_line(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.job_id,
            self.user,
            self.account,
            self.partition,
            self.nodes,
            self.cores,
            format_iso_datetime(self.submit),
            format_iso_datetime(self.start),
            format_iso_datetime(self.end),
            self.state,
            self.gpus
        )
    }
}

/// The cluster simulator: turns a profile + seed into job traces.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    profile: ResourceProfile,
    seed: u64,
}

impl ClusterSim {
    /// Build a simulator; identical `(profile, seed)` pairs produce
    /// identical traces.
    pub fn new(profile: ResourceProfile, seed: u64) -> Self {
        ClusterSim { profile, seed }
    }

    /// The profile being simulated.
    pub fn profile(&self) -> &ResourceProfile {
        &self.profile
    }

    /// Generate all jobs ending in the given months of `year`.
    pub fn jobs(&self, year: i32, months: std::ops::RangeInclusive<u8>) -> Vec<SimJob> {
        let mut root = SimRng::new(self.seed ^ 0x5D1A_FE77);
        let mut out = Vec::new();
        for month in 1..=12u8 {
            // Job ids are deterministic per (year, month) so a trace for
            // one month is a strict subset of the full-year trace.
            let mut job_id: i64 =
                i64::from(year) * 1_000_000 + i64::from(month) * 10_000;
            // Fork per month unconditionally so the trace for June is the
            // same whether January was requested or not.
            let mut rng = root.fork(u64::from(month));
            if !months.contains(&month) {
                continue;
            }
            let activity = self.profile.monthly_activity[usize::from(month - 1)];
            if activity <= 0.0 {
                continue;
            }
            let jitter = 0.9 + 0.2 * rng.uniform();
            let count =
                (f64::from(self.profile.base_jobs_per_month) * activity * jitter).round() as usize;
            let month_start = CivilDate::new(year, month, 1).to_epoch();
            let month_secs = i64::from(days_in_month(year, month)) * 86_400;
            for _ in 0..count {
                job_id += 1;
                out.push(self.one_job(&mut rng, job_id, month_start, month_secs));
            }
        }
        out
    }

    fn one_job(&self, rng: &mut SimRng, job_id: i64, month_start: i64, month_secs: i64) -> SimJob {
        let p = &self.profile;
        let user_idx = rng.zipf(p.n_users, 1.05);
        let user = format!("{}_u{:03}", p.name, user_idx);
        // ~5 users per PI group.
        let account = format!("{}_pi{:02}", p.name, user_idx / 5);
        let queue_weights: Vec<f64> = (0..p.queues.len())
            .map(|i| 1.0 / f64::powi(2.0, i as i32))
            .collect();
        let partition = p.queues[rng.weighted(&queue_weights)].clone();

        // Node counts: log-normal-ish, mostly small jobs, capped at 1/4 of
        // the machine.
        let max_nodes = (p.nodes / 4).max(1);
        let nodes = rng
            .lognormal(2.0, 1.2)
            .round()
            .clamp(1.0, f64::from(max_nodes)) as i64;
        let cores = nodes * i64::from(p.cores_per_node);

        // Wall time: log-normal, capped by the queue limit; timed-out jobs
        // sit exactly at the limit.
        let state_roll = rng.uniform();
        let (state, wall_hours) = if state_roll < 0.90 {
            (
                "COMPLETED",
                rng.lognormal(1.2, 1.1).min(p.wall_limit_hours * 0.98),
            )
        } else if state_roll < 0.96 {
            (
                "FAILED",
                rng.lognormal(0.3, 1.3).min(p.wall_limit_hours * 0.98),
            )
        } else if state_roll < 0.99 {
            ("TIMEOUT", p.wall_limit_hours)
        } else {
            (
                "CANCELLED",
                rng.lognormal(0.1, 1.0).min(p.wall_limit_hours * 0.5),
            )
        };
        let wall_secs = (wall_hours * 3600.0).max(1.0) as i64;

        let submit = month_start + rng.uniform_int(0, month_secs.max(1));
        let wait_secs = rng.exponential(0.75 * 3600.0) as i64;
        let start = submit + wait_secs;
        let end = start + wall_secs;
        // GPUs on ~8% of jobs.
        let gpus = if rng.chance(0.08) {
            nodes * rng.uniform_int(1, 5)
        } else {
            0
        };
        SimJob {
            job_id,
            resource: p.name.clone(),
            user,
            account,
            partition,
            nodes,
            cores,
            submit,
            start,
            end,
            state: state.to_owned(),
            gpus,
        }
    }

    /// Render the month range as a complete `sacct` export (header +
    /// records).
    pub fn sacct_log(&self, year: i32, months: std::ops::RangeInclusive<u8>) -> String {
        let mut log = String::from(
            "JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs\n",
        );
        for job in self.jobs(year, months) {
            log.push_str(&job.to_sacct_line());
            log.push('\n');
        }
        log
    }

    /// Render a PCP-style performance archive for a slice of jobs — the
    /// SUPReMM realm's raw input. Sample cadence is one point per 10
    /// minutes of runtime (capped), correlated with the job's size.
    pub fn pcp_archive(&self, jobs: &[SimJob]) -> String {
        let mut rng = SimRng::new(self.seed ^ 0x9C9_0AC); // distinct stream from jobs()
        let mut out = String::new();
        for job in jobs {
            out.push_str(&format!(
                "job {} {} {} {}\n",
                job.job_id, job.resource, job.user, job.end
            ));
            let n_samples = (((job.end - job.start) / 600).clamp(1, 16)) as usize;
            let base_cpu = 0.55 + 0.4 * rng.uniform();
            let base_mem = rng.lognormal(8.0, 0.8);
            for s in 0..n_samples {
                let ts = job.start + (s as i64) * 600;
                let wobble = 0.95 + 0.1 * rng.uniform();
                out.push_str(&format!(
                    "ts {ts} cpu_user {:.4}\n",
                    (base_cpu * wobble).min(1.0)
                ));
                out.push_str(&format!("ts {ts} memory_used {:.3}\n", base_mem * wobble));
                out.push_str(&format!(
                    "ts {ts} memory_bandwidth {:.3}\n",
                    20.0 * base_cpu * wobble
                ));
                out.push_str(&format!("ts {ts} flops {:.3}\n", 9.5 * base_cpu * wobble));
                out.push_str(&format!(
                    "ts {ts} block_read {:.4}\n",
                    rng.exponential(0.05)
                ));
                out.push_str(&format!(
                    "ts {ts} block_write {:.4}\n",
                    rng.exponential(0.03)
                ));
            }
            out.push_str(&format!(
                "script #!/bin/bash\\n#SBATCH -N {}\\nsrun ./app_{}\n",
                job.nodes, job.partition
            ));
            out.push_str("end\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = ClusterSim::new(ResourceProfile::comet(), 42).sacct_log(2017, 1..=3);
        let b = ClusterSim::new(ResourceProfile::comet(), 42).sacct_log(2017, 1..=3);
        assert_eq!(a, b);
        let c = ClusterSim::new(ResourceProfile::comet(), 43).sacct_log(2017, 1..=3);
        assert_ne!(a, c);
    }

    #[test]
    fn month_subsets_are_consistent() {
        // June's jobs must be identical whether we ask for 6..=6 or 1..=12.
        let sim = ClusterSim::new(ResourceProfile::comet(), 42);
        let june_only = sim.jobs(2017, 6..=6);
        let full_year = sim.jobs(2017, 1..=12);
        let june_of_full: Vec<&SimJob> = full_year
            .iter()
            .filter(|j| june_only.iter().any(|k| k.job_id == j.job_id))
            .collect();
        assert_eq!(june_only.len(), june_of_full.len());
        assert!(!june_only.is_empty());
        for (a, b) in june_only.iter().zip(june_of_full) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stampede2_is_dark_before_may() {
        let sim = ClusterSim::new(ResourceProfile::stampede2(), 7);
        assert!(sim.jobs(2017, 1..=4).is_empty());
        assert!(!sim.jobs(2017, 5..=5).is_empty());
    }

    #[test]
    fn stampede_ramps_down() {
        let sim = ClusterSim::new(ResourceProfile::stampede(), 7);
        let jan = sim.jobs(2017, 1..=1).len();
        let dec = sim.jobs(2017, 12..=12).len();
        assert!(jan > dec * 5, "jan {jan} dec {dec}");
    }

    #[test]
    fn jobs_respect_resource_invariants() {
        let profile = ResourceProfile::comet();
        let wall_limit = profile.wall_limit_hours;
        let max_nodes = i64::from(profile.nodes);
        let sim = ClusterSim::new(profile, 99);
        for job in sim.jobs(2017, 1..=2) {
            assert!(job.nodes >= 1 && job.nodes <= max_nodes);
            assert_eq!(job.cores, job.nodes * 24);
            assert!(job.submit <= job.start);
            assert!(job.start < job.end);
            assert!(job.wall_hours() <= wall_limit + 1e-9, "{}", job.wall_hours());
            assert!(job.gpus >= 0);
        }
    }

    #[test]
    fn sacct_log_parses_through_ingest() {
        let sim = ClusterSim::new(ResourceProfile::comet(), 5);
        let log = sim.sacct_log(2017, 1..=1);
        let (records, report) = xdmod_ingest::slurm::parse_log(&log).unwrap();
        assert!(!records.is_empty());
        assert_eq!(report.skipped, 0);
        assert_eq!(records.len(), sim.jobs(2017, 1..=1).len());
    }

    #[test]
    fn pcp_archive_parses_through_ingest() {
        let sim = ClusterSim::new(ResourceProfile::comet(), 5);
        let jobs = sim.jobs(2017, 1..=1);
        let archive = sim.pcp_archive(&jobs[..10.min(jobs.len())]);
        let (parsed, _) = xdmod_ingest::pcp::parse_archive(&archive).unwrap();
        assert_eq!(parsed.len(), 10.min(jobs.len()));
        assert!(parsed[0].samples.iter().any(|(_, m, _)| m == "cpu_user"));
        assert!(parsed[0].script.contains("#SBATCH"));
    }

    #[test]
    fn timeout_jobs_hit_the_wall_limit() {
        let sim = ClusterSim::new(ResourceProfile::comet(), 31);
        let jobs = sim.jobs(2017, 1..=6);
        let timeouts: Vec<&SimJob> = jobs.iter().filter(|j| j.state == "TIMEOUT").collect();
        assert!(!timeouts.is_empty());
        for t in timeouts {
            assert!((t.wall_hours() - 48.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig1_yearly_ordering_holds() {
        // Total XD SUs for 2017 must rank Comet > Stampede2 > Stampede
        // (the paper's Fig. 1 ordering).
        let su = |profile: ResourceProfile, seed: u64| -> f64 {
            let factor = profile.hpl_gflops_per_core;
            ClusterSim::new(profile, seed)
                .jobs(2017, 1..=12)
                .iter()
                .map(|j| j.cpu_hours() * factor)
                .sum()
        };
        let comet = su(ResourceProfile::comet(), 1);
        let stampede = su(ResourceProfile::stampede(), 2);
        let stampede2 = su(ResourceProfile::stampede2(), 3);
        assert!(comet > stampede2, "comet {comet} vs stampede2 {stampede2}");
        assert!(stampede2 > stampede, "stampede2 {stampede2} vs stampede {stampede}");
    }
}

//! Storage filesystem growth simulator.
//!
//! Stands in for CCR's Isilon and GPFS storage (§III-A: "the storage
//! realm is being developed against CCR's Isilon and GPFS storage, both
//! persistent and scratch"). Emits monthly per-user usage samples as the
//! JSON documents `xdmod-ingest::storage_json` validates and shreds.
//!
//! The growth model is multiplicative month-over-month with per-user
//! noise, matching the steady climb of both file count and physical usage
//! visible in the paper's Fig. 6.

use crate::rng::SimRng;
use serde_json::json;
use xdmod_warehouse::time::{days_in_month, format_iso_datetime, CivilDate};

/// One simulated filesystem.
#[derive(Debug, Clone)]
pub struct FilesystemProfile {
    /// Filesystem name (the Storage realm's "Resource (Filesystem)").
    pub name: String,
    /// Mount point.
    pub mountpoint: String,
    /// `persistent` or `scratch`.
    pub resource_type: String,
    /// Number of users with data on this filesystem.
    pub n_users: usize,
    /// Mean files per user in January.
    pub base_files_per_user: f64,
    /// Mean logical usage per user in January, GB.
    pub base_usage_gb_per_user: f64,
    /// Month-over-month multiplicative growth (0.05 = +5%/month).
    pub monthly_growth: f64,
    /// Physical/logical overhead ratio (replication, snapshots).
    pub physical_overhead: f64,
    /// Per-user (soft, hard) quota in GB, if the filesystem enforces one.
    pub quota_gb: Option<(f64, f64)>,
}

impl FilesystemProfile {
    /// CCR-like Isilon home filesystem: persistent, quota'd.
    pub fn isilon_home() -> Self {
        FilesystemProfile {
            name: "isilon-home".into(),
            mountpoint: "/home".into(),
            resource_type: "persistent".into(),
            n_users: 80,
            base_files_per_user: 40_000.0,
            base_usage_gb_per_user: 35.0,
            monthly_growth: 0.045,
            physical_overhead: 1.25,
            quota_gb: Some((100.0, 120.0)),
        }
    }

    /// CCR-like GPFS scratch filesystem: volatile, no quota.
    pub fn gpfs_scratch() -> Self {
        FilesystemProfile {
            name: "gpfs-scratch".into(),
            mountpoint: "/scratch".into(),
            resource_type: "scratch".into(),
            n_users: 55,
            base_files_per_user: 90_000.0,
            base_usage_gb_per_user: 220.0,
            monthly_growth: 0.03,
            physical_overhead: 1.1,
            quota_gb: None,
        }
    }
}

/// The storage simulator.
#[derive(Debug, Clone)]
pub struct StorageSim {
    filesystems: Vec<FilesystemProfile>,
    seed: u64,
}

impl StorageSim {
    /// Build from explicit filesystem profiles.
    pub fn new(filesystems: Vec<FilesystemProfile>, seed: u64) -> Self {
        StorageSim { filesystems, seed }
    }

    /// CCR-like preset: Isilon home + GPFS scratch.
    pub fn ccr(seed: u64) -> Self {
        StorageSim::new(
            vec![
                FilesystemProfile::isilon_home(),
                FilesystemProfile::gpfs_scratch(),
            ],
            seed,
        )
    }

    /// The configured filesystems.
    pub fn filesystems(&self) -> &[FilesystemProfile] {
        &self.filesystems
    }

    /// Generate the JSON sample document for one month: one sample per
    /// (filesystem, user), taken at the end of the month.
    pub fn json_document(&self, year: i32, month: u8) -> String {
        let last_day = days_in_month(year, month);
        let ts = CivilDate::new(year, month, last_day).to_epoch() + 23 * 3600 + 59 * 60;
        let ts_str = format_iso_datetime(ts);
        let growth_exp = f64::from(month - 1);
        let mut samples = Vec::new();
        for (fs_idx, fs) in self.filesystems.iter().enumerate() {
            let mut rng = SimRng::new(
                self.seed ^ (fs_idx as u64) << 32 ^ u64::from(month) << 8 ^ year as u64,
            );
            let growth = (1.0 + fs.monthly_growth).powf(growth_exp);
            for user_idx in 0..fs.n_users {
                // Heavy-tailed per-user scale, stable across months for
                // the same user.
                let mut user_rng = SimRng::new(self.seed ^ ((fs_idx as u64) << 48) ^ user_idx as u64);
                let user_scale = user_rng.lognormal(1.0, 0.9);
                let wobble = 0.97 + 0.06 * rng.uniform();
                let files =
                    (fs.base_files_per_user * user_scale * growth * wobble).round() as i64;
                let logical = fs.base_usage_gb_per_user * user_scale * growth * wobble;
                let physical = logical * fs.physical_overhead;
                let mut obj = json!({
                    "ts": ts_str,
                    "filesystem": fs.name,
                    "mountpoint": fs.mountpoint,
                    "resource_type": fs.resource_type,
                    "user": format!("user{user_idx:03}"),
                    "pi": format!("pi{:02}", user_idx / 5),
                    "system_username": format!("u{user_idx:05}"),
                    "file_count": files.max(0),
                    "logical_usage_gb": round3(logical),
                    "physical_usage_gb": round3(physical),
                });
                if let Some((soft, hard)) = fs.quota_gb {
                    obj["soft_quota_gb"] = json!(soft);
                    obj["hard_quota_gb"] = json!(hard);
                }
                samples.push(obj);
            }
        }
        serde_json::to_string(&samples).expect("samples serialize") // xc-allow: samples are plain maps; serialization cannot fail
    }

    /// Generate documents for every month of a year.
    pub fn year_documents(&self, year: i32) -> Vec<String> {
        (1..=12).map(|m| self.json_document(year, m)).collect()
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_deterministic() {
        let a = StorageSim::ccr(9).json_document(2017, 4);
        let b = StorageSim::ccr(9).json_document(2017, 4);
        assert_eq!(a, b);
        assert_ne!(a, StorageSim::ccr(10).json_document(2017, 4));
    }

    #[test]
    fn documents_validate_against_ingest_schema() {
        let doc = StorageSim::ccr(3).json_document(2017, 6);
        let (rows, report) = xdmod_ingest::storage_json::shred(&doc).unwrap();
        assert_eq!(report.skipped, 0);
        assert_eq!(rows.len(), 80 + 55);
        let schema = xdmod_realms::storage::fact_schema();
        for row in rows {
            schema.check_row(row).unwrap();
        }
    }

    #[test]
    fn fig6_shape_totals_grow_month_over_month() {
        let sim = StorageSim::ccr(1);
        let mut prev_files = 0i64;
        let mut prev_physical = 0.0f64;
        for month in 1..=12u8 {
            let doc = sim.json_document(2017, month);
            let samples: Vec<serde_json::Value> = serde_json::from_str(&doc).unwrap();
            let files: i64 = samples
                .iter()
                .map(|s| s["file_count"].as_i64().unwrap())
                .sum();
            let physical: f64 = samples
                .iter()
                .map(|s| s["physical_usage_gb"].as_f64().unwrap())
                .sum();
            assert!(files > prev_files, "month {month}: files shrank");
            assert!(physical > prev_physical, "month {month}: usage shrank");
            prev_files = files;
            prev_physical = physical;
        }
    }

    #[test]
    fn scratch_has_no_quota_home_does() {
        let doc = StorageSim::ccr(5).json_document(2017, 1);
        let samples: Vec<serde_json::Value> = serde_json::from_str(&doc).unwrap();
        let home = samples
            .iter()
            .find(|s| s["filesystem"] == "isilon-home")
            .unwrap();
        let scratch = samples
            .iter()
            .find(|s| s["filesystem"] == "gpfs-scratch")
            .unwrap();
        assert!(home.get("soft_quota_gb").is_some());
        assert!(scratch.get("soft_quota_gb").is_none());
    }

    #[test]
    fn year_documents_cover_twelve_months() {
        assert_eq!(StorageSim::ccr(2).year_documents(2017).len(), 12);
    }

    #[test]
    fn per_user_scale_is_stable_across_months() {
        // The same user should stay a heavy or light user all year.
        let sim = StorageSim::ccr(8);
        let get_user = |month: u8| -> f64 {
            let doc = sim.json_document(2017, month);
            let samples: Vec<serde_json::Value> = serde_json::from_str(&doc).unwrap();
            samples
                .iter()
                .find(|s| s["filesystem"] == "isilon-home" && s["user"] == "user007")
                .unwrap()["logical_usage_gb"]
                .as_f64()
                .unwrap()
        };
        let jan = get_user(1);
        let dec = get_user(12);
        // Growth plus noise, but within a factor reflecting (1.045)^11.
        let ratio = dec / jan;
        assert!(ratio > 1.3 && ratio < 2.0, "ratio {ratio}");
    }
}

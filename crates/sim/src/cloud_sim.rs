//! Research-cloud (OpenStack-like) VM fleet simulator.
//!
//! Stands in for "CCR's installation of the widely-deployed OpenStack
//! platform API, backed by the Ceph storage platform" (§III-B) and for
//! the Aristotle three-site research cloud. Emits the lifecycle event
//! feed `xdmod-ingest::cloud` sessionizes: CREATE / START / STOP / PAUSE
//! / RESUME / RESIZE / TERMINATE, with flavor-dependent lifetimes so the
//! regenerated Fig. 7 (average core-hours per VM by memory size) has the
//! paper's increasing-with-size shape.

use crate::rng::SimRng;
use xdmod_warehouse::time::CivilDate;

/// A VM flavor (instance type).
#[derive(Debug, Clone)]
pub struct FlavorProfile {
    /// Flavor name.
    pub name: String,
    /// vCPUs.
    pub cores: i64,
    /// Memory, GB. The paper's Fig. 7 bins are `<1`, `1-2`, `2-4`,
    /// `4-8` GB.
    pub memory_gb: f64,
    /// Disk, GB.
    pub disk_gb: f64,
    /// Relative creation frequency.
    pub popularity: f64,
    /// Mean total running time per VM, hours.
    pub mean_run_hours: f64,
}

/// Default CCR-research-cloud-like flavor set: one flavor per Fig. 7
/// memory bin, with bigger flavors living longer.
pub fn default_flavors() -> Vec<FlavorProfile> {
    vec![
        FlavorProfile {
            name: "m1.tiny".into(),
            cores: 1,
            memory_gb: 0.5,
            disk_gb: 10.0,
            popularity: 3.0,
            mean_run_hours: 30.0,
        },
        FlavorProfile {
            name: "m1.small".into(),
            cores: 1,
            memory_gb: 1.5,
            disk_gb: 20.0,
            popularity: 4.0,
            mean_run_hours: 90.0,
        },
        FlavorProfile {
            name: "m1.medium".into(),
            cores: 2,
            memory_gb: 3.0,
            disk_gb: 40.0,
            popularity: 2.5,
            mean_run_hours: 200.0,
        },
        FlavorProfile {
            name: "m1.large".into(),
            cores: 4,
            memory_gb: 6.0,
            disk_gb: 80.0,
            popularity: 1.2,
            mean_run_hours: 420.0,
        },
    ]
}

/// The cloud fleet simulator.
#[derive(Debug, Clone)]
pub struct CloudSim {
    /// Cloud resource name (e.g. `ccr-cloud`, `cornell-cloud`).
    pub resource: String,
    flavors: Vec<FlavorProfile>,
    projects: Vec<String>,
    n_users: usize,
    vms_per_month: u32,
    seed: u64,
}

impl CloudSim {
    /// Build a simulator with the default flavor set.
    pub fn new(resource: &str, vms_per_month: u32, seed: u64) -> Self {
        CloudSim {
            resource: resource.to_owned(),
            flavors: default_flavors(),
            projects: vec![
                "aristotle".into(),
                "genomics".into(),
                "hydrology".into(),
                "teaching".into(),
            ],
            n_users: 40,
            vms_per_month,
            seed,
        }
    }

    /// Override the flavor set.
    pub fn with_flavors(mut self, flavors: Vec<FlavorProfile>) -> Self {
        assert!(!flavors.is_empty());
        self.flavors = flavors;
        self
    }

    /// The flavor catalog.
    pub fn flavors(&self) -> &[FlavorProfile] {
        &self.flavors
    }

    /// Generate the event feed (CSV with header) for one year. Events are
    /// globally sorted by timestamp; VMs created near year-end may still
    /// be running at the horizon.
    pub fn event_feed(&self, year: i32) -> String {
        let mut events: Vec<(i64, String)> = Vec::new();
        let year_start = CivilDate::new(year, 1, 1).to_epoch();
        let year_end = CivilDate::new(year + 1, 1, 1).to_epoch();
        let mut vm_counter = 0u32;
        let weights: Vec<f64> = self.flavors.iter().map(|f| f.popularity).collect();

        for month in 1..=12u8 {
            let mut rng = SimRng::new(
                self.seed ^ (u64::from(month) << 16) ^ (year as u64).rotate_left(7),
            );
            let month_start = CivilDate::new(year, month, 1).to_epoch();
            let count = (f64::from(self.vms_per_month) * (0.85 + 0.3 * rng.uniform())) as u32;
            for _ in 0..count {
                vm_counter += 1;
                let vm_id = format!("vm-{}-{vm_counter:05}", self.resource);
                let flavor = &self.flavors[rng.weighted(&weights)];
                let user = format!("cloud_u{:02}", rng.zipf(self.n_users, 1.0));
                let project = self.projects[rng.weighted(&[3.0, 2.0, 1.5, 1.0])].clone();
                let venue = ["api", "dashboard", "cli", "gateway"][rng.weighted(&[3.0, 3.0, 2.0, 1.0])];
                let config = |f: &FlavorProfile| {
                    format!(
                        "{user},{project},{},{},{},{},{venue},{}",
                        f.name, f.cores, f.memory_gb, f.disk_gb, self.resource
                    )
                };
                let mut t = month_start + rng.uniform_int(0, 28 * 86_400);
                events.push((t, format!("{t},{vm_id},CREATE,{}", config(flavor))));
                t += rng.uniform_int(30, 600);
                events.push((t, format!("{t},{vm_id},START,,,,,,,,")));

                // Split the VM's total running budget over 1-3 sessions,
                // with stop/pause gaps between them, then terminate (or
                // run past the horizon).
                let total_run_secs = (rng.exponential(flavor.mean_run_hours) * 3600.0) as i64;
                let sessions = 1 + rng.uniform_int(0, 3);
                let mut remaining = total_run_secs.max(600);
                let mut alive = true;
                for s in 0..sessions {
                    let chunk = if s == sessions - 1 {
                        remaining
                    } else {
                        let c = remaining / 2 + rng.uniform_int(0, (remaining / 2).max(1));
                        remaining -= c;
                        c
                    };
                    t += chunk.max(60);
                    if t >= year_end {
                        // Still running at the horizon: no further events.
                        alive = false;
                        break;
                    }
                    if s == sessions - 1 {
                        events.push((t, format!("{t},{vm_id},TERMINATE,,,,,,,,")));
                        alive = false;
                    } else if rng.chance(0.2) {
                        // Mid-life resize to the next flavor up.
                        let idx = self
                            .flavors
                            .iter()
                            .position(|f| f.name == flavor.name)
                            .unwrap(); // xc-allow: flavor was drawn from self.flavors
                        let next = &self.flavors[(idx + 1).min(self.flavors.len() - 1)];
                        events.push((t, format!("{t},{vm_id},RESIZE,{}", config(next))));
                    } else if rng.chance(0.5) {
                        events.push((t, format!("{t},{vm_id},PAUSE,,,,,,,,")));
                        t += rng.uniform_int(600, 48 * 3600);
                        if t >= year_end {
                            alive = false;
                            break;
                        }
                        events.push((t, format!("{t},{vm_id},RESUME,,,,,,,,")));
                    } else {
                        events.push((t, format!("{t},{vm_id},STOP,,,,,,,,")));
                        t += rng.uniform_int(600, 72 * 3600);
                        if t >= year_end {
                            alive = false;
                            break;
                        }
                        events.push((t, format!("{t},{vm_id},START,,,,,,,,")));
                    }
                }
                let _ = alive;
            }
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut feed = String::from(
            "ts,vm_id,event,user,project,instance_type,cores,memory_gb,disk_gb,venue,resource\n",
        );
        let _ = year_start;
        for (_, line) in events {
            feed.push_str(&line);
            feed.push('\n');
        }
        feed
    }

    /// The observation horizon for a year's feed (start of the next
    /// year) — pass this to `xdmod-ingest::cloud::shred`.
    pub fn horizon(year: i32) -> i64 {
        CivilDate::new(year + 1, 1, 1).to_epoch()
    }

    /// Generate a reservation (purchased capacity) feed for the year:
    /// each project buys quarterly blocks sized from its expected usage
    /// with deliberate over-provisioning — the behaviour the paper's
    /// reservation tracking is meant to expose.
    pub fn reservation_feed(&self, year: i32) -> String {
        let mut rng = SimRng::new(self.seed ^ 0x5E_5E11);
        let mut out = String::from(
            "reservation_id,resource,project,user,cores,memory_gb,start,end\n",
        );
        let mut counter = 0;
        for quarter in 0..4u8 {
            let start = CivilDate::new(year, quarter * 3 + 1, 1).to_epoch();
            let end = if quarter == 3 {
                CivilDate::new(year + 1, 1, 1).to_epoch()
            } else {
                CivilDate::new(year, quarter * 3 + 4, 1).to_epoch()
            };
            for (p_idx, project) in self.projects.iter().enumerate() {
                counter += 1;
                // Over-provision by 1.2-2.5x of a rough expected usage.
                let cores = 4 + rng.uniform_int(0, 4 + p_idx as i64 * 2);
                let memory = cores as f64 * 2.0;
                let owner = format!("cloud_u{:02}", rng.zipf(self.n_users, 1.0));
                out.push_str(&format!(
                    "rsv-{counter:04},{},{project},{owner},{cores},{memory},{start},{end}\n",
                    self.resource
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_ingest::cloud::shred;

    #[test]
    fn feed_is_deterministic() {
        let a = CloudSim::new("ccr-cloud", 20, 3).event_feed(2017);
        let b = CloudSim::new("ccr-cloud", 20, 3).event_feed(2017);
        assert_eq!(a, b);
        assert_ne!(a, CloudSim::new("ccr-cloud", 20, 4).event_feed(2017));
    }

    #[test]
    fn feed_sessionizes_cleanly() {
        let sim = CloudSim::new("ccr-cloud", 25, 7);
        let feed = sim.event_feed(2017);
        let (rows, report) = shred(&feed, CloudSim::horizon(2017)).unwrap();
        assert!(!rows.is_empty());
        // A well-formed feed should produce no transition warnings.
        assert_eq!(report.skipped, 0, "warnings: {:?}", &report.warnings[..report.warnings.len().min(5)]);
        let schema = xdmod_realms::cloud::fact_schema();
        for row in &rows {
            schema.check_row(row.clone()).unwrap();
        }
    }

    #[test]
    fn sessions_have_positive_core_hours_for_running_vms() {
        let sim = CloudSim::new("ccr-cloud", 15, 11);
        let feed = sim.event_feed(2017);
        let (rows, _) = shred(&feed, CloudSim::horizon(2017)).unwrap();
        let schema = xdmod_realms::cloud::fact_schema();
        let wall = schema.column_index("wall_hours").unwrap();
        let ch = schema.column_index("core_hours").unwrap();
        for row in &rows {
            let w = row[wall].as_f64().unwrap();
            let c = row[ch].as_f64().unwrap();
            assert!(w >= 0.0);
            assert!(c >= w - 1e-9); // cores >= 1
        }
    }

    #[test]
    fn fig7_shape_core_hours_increase_with_memory_bin() {
        let sim = CloudSim::new("ccr-cloud", 40, 5);
        let feed = sim.event_feed(2017);
        let (rows, _) = shred(&feed, CloudSim::horizon(2017)).unwrap();
        let schema = xdmod_realms::cloud::fact_schema();
        let mem = schema.column_index("memory_gb").unwrap();
        let ch = schema.column_index("core_hours").unwrap();
        let vm = schema.column_index("vm_id").unwrap();

        // Average core hours per VM per Fig. 7 memory bin.
        let bins = [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0)];
        let mut avg = Vec::new();
        for (lo, hi) in bins {
            let mut hours = 0.0;
            let mut vms = std::collections::HashSet::new();
            for row in &rows {
                let m = row[mem].as_f64().unwrap();
                if m >= lo && m < hi {
                    hours += row[ch].as_f64().unwrap();
                    vms.insert(row[vm].as_str().unwrap().to_owned());
                }
            }
            assert!(!vms.is_empty(), "no VMs in bin [{lo},{hi})");
            avg.push(hours / vms.len() as f64);
        }
        for pair in avg.windows(2) {
            assert!(
                pair[1] > pair[0],
                "Fig 7 shape violated: {avg:?} not increasing"
            );
        }
    }

    #[test]
    fn some_vms_survive_to_the_horizon() {
        let sim = CloudSim::new("ccr-cloud", 30, 13);
        let feed = sim.event_feed(2017);
        let (rows, _) = shred(&feed, CloudSim::horizon(2017)).unwrap();
        let schema = xdmod_realms::cloud::fact_schema();
        let ended = schema.column_index("ended").unwrap();
        let open = rows
            .iter()
            .filter(|r| r[ended] == xdmod_warehouse::Value::Bool(false))
            .count();
        assert!(open > 0, "expected some still-running sessions");
    }

    #[test]
    fn reservation_feed_parses_and_over_provisions() {
        let sim = CloudSim::new("ccr-cloud", 20, 3);
        let feed = sim.reservation_feed(2017);
        let (rows, report) =
            xdmod_ingest::cloud::shred_reservations(&feed).unwrap();
        assert_eq!(report.ingested, 16); // 4 quarters x 4 projects
        let schema = xdmod_realms::cloud::reservation_schema();
        for row in &rows {
            schema.check_row(row.clone()).unwrap();
        }
        // Deterministic.
        assert_eq!(feed, CloudSim::new("ccr-cloud", 20, 3).reservation_feed(2017));
    }

    #[test]
    fn resizes_appear_in_feed() {
        let feed = CloudSim::new("ccr-cloud", 60, 17).event_feed(2017);
        assert!(feed.contains(",RESIZE,"), "no resizes generated");
        assert!(feed.contains(",PAUSE,"));
        assert!(feed.contains(",STOP,"));
    }
}

//! The concurrency analysis: lock-order graph, guard-across-blocking,
//! cross-crate lock composition, and channel discipline.
//!
//! Consumes [`crate::model`] summaries and emits stable diagnostics in
//! the workspace finding format:
//!
//! - **XL0001 — lock-order inversion.** Replaying each function's
//!   events yields directed edges `A -> B` ("B acquired while A held"),
//!   both directly and through calls resolved one level deep. Any pair
//!   with both an `A -> B` and a `B -> A` edge anywhere in the
//!   workspace graph is a potential deadlock; the diagnostic prints
//!   both witness chains.
//! - **XL0002 — guard held across a blocking operation.** A lock guard
//!   alive at a `send`/`recv`, socket read/write, `thread::sleep`,
//!   condvar wait, or chaos fault-point call serializes every other
//!   thread behind an unbounded wait. Also fires when a *called*
//!   function (resolved in the same crate) is the one that blocks.
//! - **XL0003 — guard held across a cross-crate lock.** Calling into
//!   another crate that takes its own lock while holding one here is
//!   deadlock-by-composition waiting for the second edge to appear;
//!   each such site must be justified or restructured.
//! - **XL0004 — unbounded channel.** `mpsc::channel()` where the
//!   workspace convention is a bounded `sync_channel` (backpressure at
//!   the accept queue, not OOM under load).
//!
//! Every diagnostic is suppressible with `// xc-allow: <reason>` on the
//! flagged line or the line above (for XL0001: on either witness's
//! acquisition site). Call resolution is name-based and deliberately
//! conservative: a callee resolves only when its name is defined in
//! exactly one workspace crate, by at most three functions, and is not
//! a ubiquitous method name (`get`, `insert`, ...).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use crate::model::{self, Event, FnSummary, Mode, Workspace};

/// Stable diagnostic codes for the concurrency analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XlCode {
    /// AB/BA lock acquisition cycle.
    LockOrder,
    /// Guard held across a blocking operation.
    GuardAcrossBlocking,
    /// Guard held across a call into another crate that locks.
    CrossCrateLock,
    /// Unbounded `mpsc::channel()` against workspace convention.
    UnboundedChannel,
}

impl XlCode {
    /// The stable identifier (`XL0001`..`XL0004`).
    pub fn ident(self) -> &'static str {
        match self {
            XlCode::LockOrder => "XL0001",
            XlCode::GuardAcrossBlocking => "XL0002",
            XlCode::CrossCrateLock => "XL0003",
            XlCode::UnboundedChannel => "XL0004",
        }
    }
}

impl fmt::Display for XlCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ident())
    }
}

/// One analyzer diagnostic.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Which analysis fired.
    pub code: XlCode,
    /// Workspace-relative file of the primary location.
    pub path: String,
    /// 1-based line of the primary location.
    pub line: usize,
    /// One-line description.
    pub message: String,
    /// Witness chains / held-guard details.
    pub notes: Vec<String>,
    /// `(path, line)` sites where an `xc-allow` suppresses this diag.
    pub anchors: Vec<(String, usize)>,
}

impl Diag {
    /// Render as one rustc-style text block (same shape as
    /// `xdmod-check`).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "error[{}]: {}\n  --> {}:{}\n",
            self.code, self.message, self.path, self.line
        );
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }

    /// Render as a JSON object (parity with `xdmod-check --json`).
    pub fn render_json(&self) -> String {
        let notes: Vec<String> = self.notes.iter().map(|n| json_escape(n)).collect();
        format!(
            "{{\"code\":\"{}\",\"path\":{},\"line\":{},\"message\":{},\"notes\":[{}]}}",
            self.code.ident(),
            json_escape(&self.path),
            self.line,
            json_escape(&self.message),
            notes.join(",")
        )
    }
}

/// Escape a string as a JSON string literal (quotes included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed diagnostics, ordered by (path, line, code).
    pub diags: Vec<Diag>,
    /// Diagnostics silenced by `xc-allow` markers.
    pub suppressed: usize,
}

impl Analysis {
    /// Render all diagnostics as a JSON array.
    pub fn render_json(&self) -> String {
        let items: Vec<String> = self.diags.iter().map(Diag::render_json).collect();
        format!("[{}]", items.join(","))
    }
}

/// Method names too generic to resolve by name: resolving `get` to a
/// random workspace function would drown the analysis in false edges.
const COMMON_NAMES: &[&str] = &[
    "new", "clone", "insert", "get", "get_mut", "len", "push", "pop", "iter", "iter_mut",
    "into_iter", "next", "map", "and_then", "then", "unwrap_or_else", "unwrap_or", "ok", "err",
    "to_owned", "to_string", "into", "from", "as_ref", "as_str", "as_bytes", "collect", "retain",
    "clear", "contains", "contains_key", "remove", "drain", "extend", "join", "expect", "unwrap",
    "is_empty", "is_some", "is_none", "is_ok", "is_err", "fmt", "eq", "ne", "cmp", "partial_cmp",
    "hash", "default", "drop", "write", "read", "lock", "min", "max", "abs", "find", "filter",
    "position", "any", "all", "fold", "rev", "take", "skip", "chain", "zip", "count", "last",
    "first", "sort", "sort_by", "sort_by_key", "split", "trim", "starts_with", "ends_with",
    "replace", "parse", "keys", "values", "entry", "or_insert", "or_insert_with", "with_capacity",
    "reserve", "spawn", "elapsed", "now", "load", "store", "fetch_add", "swap",
    "compare_exchange", "name", "id", "kind", "path", "line", "code", "message",
];

/// Analyze `(rel_path, text)` sources. Test code never contributes.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let ws = model::extract(files);
    let lines: BTreeMap<&str, Vec<&str>> = files
        .iter()
        .map(|(p, t)| (p.as_str(), t.lines().collect()))
        .collect();
    run(&ws, &lines)
}

/// Analyze every lint-scope source file under a workspace root.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for path in crate::source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(analyze_sources(&files))
}

/// A lock-order edge witness: where A was held and B acquired.
#[derive(Debug, Clone)]
struct Witness {
    fn_qual: String,
    file: String,
    first_line: usize,
    second_line: usize,
    via_call: Option<String>,
}

struct HeldGuard {
    idx: usize,
    lock: String,
    mode: Mode,
    line: usize,
}

fn run(ws: &Workspace, lines: &BTreeMap<&str, Vec<&str>>) -> Analysis {
    // Name index for one-level call resolution.
    let mut by_name: BTreeMap<&str, Vec<&FnSummary>> = BTreeMap::new();
    for f in ws.fns.iter().filter(|f| !f.is_test) {
        by_name.entry(f.name.as_str()).or_default().push(f);
    }
    let resolve = |callee: &str, caller: &FnSummary| -> Vec<&FnSummary> {
        if COMMON_NAMES.contains(&callee) || callee == caller.name {
            return Vec::new();
        }
        let Some(cands) = by_name.get(callee) else {
            return Vec::new();
        };
        if cands.is_empty() || cands.len() > 3 {
            return Vec::new();
        }
        let crate0 = &cands[0].crate_name;
        if !cands.iter().all(|c| &c.crate_name == crate0) {
            return Vec::new();
        }
        cands.clone()
    };

    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let mut raw_diags: Vec<Diag> = Vec::new();

    for f in ws.fns.iter().filter(|f| !f.is_test) {
        let mut held: Vec<HeldGuard> = Vec::new();
        for ev in &f.events {
            match ev {
                Event::Acquire {
                    idx,
                    path,
                    mode,
                    line,
                    ..
                } => {
                    let id = lock_id(f, path);
                    for h in &held {
                        if h.lock != id {
                            edges.entry((h.lock.clone(), id.clone())).or_insert(Witness {
                                fn_qual: format!("{}::{}", f.crate_name, f.qual_name()),
                                file: f.file.clone(),
                                first_line: h.line,
                                second_line: *line,
                                via_call: None,
                            });
                        }
                    }
                    held.push(HeldGuard {
                        idx: *idx,
                        lock: id,
                        mode: *mode,
                        line: *line,
                    });
                }
                Event::Release { idx, .. } => {
                    held.retain(|h| h.idx != *idx);
                }
                Event::Blocking { what, line } => {
                    if !held.is_empty() {
                        raw_diags.push(blocking_diag(f, &held, what, *line, None));
                    }
                }
                Event::Call { callee, line } => {
                    let targets = resolve(callee, f);
                    if targets.is_empty() {
                        continue;
                    }
                    if held.is_empty() {
                        continue;
                    }
                    // Held-lock set propagates one level into the callee.
                    let mut callee_locks: BTreeSet<(String, String, usize)> = BTreeSet::new();
                    let mut callee_blocks: Option<(String, String, usize)> = None;
                    for t in &targets {
                        for ev in t.direct_acquires() {
                            if let Event::Acquire {
                                path, line: aline, ..
                            } = ev
                            {
                                callee_locks.insert((lock_id(t, path), t.file.clone(), *aline));
                            }
                        }
                        if callee_blocks.is_none() {
                            if let Some(Event::Blocking { what, line: bline }) =
                                t.events.iter().find(|e| matches!(e, Event::Blocking { .. }))
                            {
                                callee_blocks =
                                    Some((what.clone(), t.file.clone(), *bline));
                            }
                        }
                    }
                    for (lid, tfile, tline) in &callee_locks {
                        for h in &held {
                            if &h.lock != lid {
                                edges
                                    .entry((h.lock.clone(), lid.clone()))
                                    .or_insert(Witness {
                                        fn_qual: format!(
                                            "{}::{}",
                                            f.crate_name,
                                            f.qual_name()
                                        ),
                                        file: f.file.clone(),
                                        first_line: h.line,
                                        second_line: *line,
                                        via_call: Some(format!(
                                            "{callee}() -> {tfile}:{tline}"
                                        )),
                                    });
                            }
                        }
                    }
                    // Cross-crate composition: the callee lives in
                    // another crate and takes its own lock.
                    let foreign: Vec<&&FnSummary> = targets
                        .iter()
                        .filter(|t| {
                            t.crate_name != f.crate_name
                                && t.direct_acquires().next().is_some()
                        })
                        .collect();
                    if let Some(t) = foreign.first() {
                        let callee_site = t
                            .direct_acquires()
                            .find_map(|e| match e {
                                Event::Acquire { line, path, .. } => {
                                    Some(format!("{}:{} (`{}`)", t.file, line, path))
                                }
                                _ => None,
                            })
                            .unwrap_or_default();
                        let held_desc = held_description(&held);
                        raw_diags.push(Diag {
                            code: XlCode::CrossCrateLock,
                            path: f.file.clone(),
                            line: *line,
                            message: format!(
                                "guard held across call into crate `{}`: `{}::{}` calls \
                                 `{}::{}` which acquires a lock",
                                t.crate_name,
                                f.crate_name,
                                f.qual_name(),
                                t.crate_name,
                                t.qual_name()
                            ),
                            notes: vec![
                                format!("held here: {held_desc}"),
                                format!("callee acquires at {callee_site}"),
                            ],
                            anchors: vec![(f.file.clone(), *line)],
                        });
                    }
                    // Same-crate callee that blocks: the guard is still
                    // held across the blocking op, one level deep.
                    if let Some((what, tfile, tline)) = callee_blocks {
                        raw_diags.push(blocking_diag(
                            f,
                            &held,
                            &what,
                            *line,
                            Some(format!("via {callee}() -> {tfile}:{tline}")),
                        ));
                    }
                }
                Event::UnboundedChannel { line } => {
                    raw_diags.push(Diag {
                        code: XlCode::UnboundedChannel,
                        path: f.file.clone(),
                        line: *line,
                        message: format!(
                            "unbounded `channel()` in `{}::{}`; workspace convention is a \
                             bounded `sync_channel` (backpressure, not OOM, under load)",
                            f.crate_name,
                            f.qual_name()
                        ),
                        notes: Vec::new(),
                        anchors: vec![(f.file.clone(), *line)],
                    });
                }
            }
        }
    }

    // Lock-order inversions: both directions present anywhere.
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), wit_ab) in &edges {
        if a >= b {
            continue;
        }
        let Some(wit_ba) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        if !seen_pairs.insert((a.clone(), b.clone())) {
            continue;
        }
        raw_diags.push(Diag {
            code: XlCode::LockOrder,
            path: wit_ab.file.clone(),
            line: wit_ab.second_line,
            message: format!("lock-order inversion between `{a}` and `{b}`"),
            notes: vec![witness_note(a, b, wit_ab), witness_note(b, a, wit_ba)],
            anchors: vec![
                (wit_ab.file.clone(), wit_ab.second_line),
                (wit_ba.file.clone(), wit_ba.second_line),
            ],
        });
    }

    // Deduplicate (a blocking op inside a loop replays once per event),
    // then split by suppression.
    let mut seen: BTreeSet<(String, String, usize)> = BTreeSet::new();
    let mut out = Analysis::default();
    raw_diags.sort_by(|x, y| {
        (&x.path, x.line, x.code.ident()).cmp(&(&y.path, y.line, y.code.ident()))
    });
    for d in raw_diags {
        if !seen.insert((d.code.ident().to_owned(), d.path.clone(), d.line)) {
            continue;
        }
        if d.anchors
            .iter()
            .any(|(p, l)| allowed_at(lines.get(p.as_str()), *l))
        {
            out.suppressed += 1;
        } else {
            out.diags.push(d);
        }
    }
    out
}

fn witness_note(first: &str, second: &str, w: &Witness) -> String {
    let via = match &w.via_call {
        Some(v) => format!(" (via {v})"),
        None => String::new(),
    };
    format!(
        "`{}` holds `{first}` (acquired {}:{}) then takes `{second}` at {}:{}{via}",
        w.fn_qual, w.file, w.first_line, w.file, w.second_line
    )
}

fn held_description(held: &[HeldGuard]) -> String {
    held.iter()
        .map(|h| format!("`{}` ({} at line {})", h.lock, h.mode.as_str(), h.line))
        .collect::<Vec<_>>()
        .join(", ")
}

fn blocking_diag(
    f: &FnSummary,
    held: &[HeldGuard],
    what: &str,
    line: usize,
    via: Option<String>,
) -> Diag {
    let mut notes = vec![format!("held here: {}", held_description(held))];
    if let Some(v) = via {
        notes.push(v);
    }
    Diag {
        code: XlCode::GuardAcrossBlocking,
        path: f.file.clone(),
        line,
        message: format!(
            "lock guard held across blocking `{what}` in `{}::{}`",
            f.crate_name,
            f.qual_name()
        ),
        notes,
        anchors: vec![(f.file.clone(), line)],
    }
}

/// Global lock identity from a function-local receiver path.
fn lock_id(f: &FnSummary, path: &str) -> String {
    if let Some(rest) = path.strip_prefix("self.") {
        let owner = f.impl_ty.clone().unwrap_or_else(|| f.name.clone());
        format!("{}::{owner}::{rest}", f.crate_name)
    } else {
        format!("{}::{}::{path}", f.crate_name, f.qual_name())
    }
}

/// Is there a reasoned `xc-allow:` on `line` or the line above?
fn allowed_at(lines: Option<&Vec<&str>>, line: usize) -> bool {
    let Some(lines) = lines else {
        return false;
    };
    let has = |n: usize| -> bool {
        n >= 1
            && lines.get(n - 1).is_some_and(|l| {
                l.split("xc-allow:")
                    .nth(1)
                    .is_some_and(|reason| !reason.trim().is_empty())
            })
    };
    has(line) || has(line.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Analysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| ((*p).to_owned(), (*t).to_owned()))
            .collect();
        analyze_sources(&owned)
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diags.iter().map(|d| d.code.ident()).collect()
    }

    #[test]
    fn ab_ba_inversion_detected_with_witnesses() {
        let src = r#"
impl Store {
    pub fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_them(&a, &b);
    }
    pub fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_them(&a, &b);
    }
}
"#;
        let a = analyze(&[("crates/core/src/s.rs", src)]);
        assert_eq!(codes(&a), vec!["XL0001"]);
        let d = &a.diags[0];
        assert!(d.message.contains("core::Store::alpha"));
        assert!(d.message.contains("core::Store::beta"));
        assert_eq!(d.notes.len(), 2, "both witness chains: {d:?}");
        assert!(d.notes[0].contains("crates/core/src/s.rs:"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
impl Store {
    pub fn one(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_them(&a, &b);
    }
    pub fn two(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_them(&a, &b);
    }
}
"#;
        let a = analyze(&[("crates/core/src/s.rs", src)]);
        assert!(a.diags.is_empty(), "{:?}", a.diags);
    }

    #[test]
    fn inversion_through_call_one_level() {
        let src = r#"
impl Store {
    pub fn outer_path(&self) {
        let a = self.alpha.lock();
        self.take_beta_first();
        drop(a);
    }
    pub fn take_beta_first(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_them(&a, &b);
    }
}
"#;
        // outer_path holds alpha and calls take_beta_first, which takes
        // beta (edge alpha->beta via call) and then alpha after beta
        // (edge beta->alpha directly): inversion.
        let a = analyze(&[("crates/core/src/s.rs", src)]);
        assert!(codes(&a).contains(&"XL0001"), "{:?}", a.diags);
    }

    #[test]
    fn guard_across_recv_detected() {
        let src = r#"
impl Pool {
    pub fn drain(&self) {
        let q = self.queue.lock();
        let job = self.rx.recv();
        run(q, job);
    }
}
"#;
        let a = analyze(&[("crates/gateway/src/p.rs", src)]);
        assert_eq!(codes(&a), vec!["XL0002"]);
        assert!(a.diags[0].notes[0].contains("gateway::Pool::queue"));
    }

    #[test]
    fn blocking_after_release_is_clean() {
        let src = r#"
impl Pool {
    pub fn drain(&self) {
        let job = { let mut q = self.queue.lock(); q.pop() };
        let more = self.rx.recv();
        run(job, more);
    }
}
"#;
        let a = analyze(&[("crates/gateway/src/p.rs", src)]);
        assert!(a.diags.is_empty(), "{:?}", a.diags);
    }

    #[test]
    fn cross_crate_lock_composition_detected() {
        let hub = r#"
impl Hub {
    pub fn refresh(&self) {
        let db = self.db.write();
        invalidate_aggregates(&db);
    }
}
"#;
        let wh = r#"
pub fn invalidate_aggregates(db: &Database) {
    let mut entries = self.cache.lock();
    entries.clear();
}
"#;
        let a = analyze(&[
            ("crates/core/src/hub.rs", hub),
            ("crates/warehouse/src/cache.rs", wh),
        ]);
        assert!(codes(&a).contains(&"XL0003"), "{:?}", a.diags);
    }

    #[test]
    fn unbounded_channel_flagged_outside_tests_only() {
        let src = r#"
pub fn build() {
    let (tx, rx) = channel();
    use_it(tx, rx);
}
#[cfg(test)]
mod tests {
    fn t() {
        let (tx, rx) = channel();
    }
}
"#;
        let a = analyze(&[("crates/gateway/src/c.rs", src)]);
        assert_eq!(codes(&a), vec!["XL0004"]);
        assert_eq!(a.diags[0].line, 3);
    }

    #[test]
    fn xc_allow_suppresses_each_code() {
        let src = r#"
impl Pool {
    pub fn drain(&self) {
        let q = self.queue.lock();
        // xc-allow: queue handoff is bounded by the pool soak test
        let job = self.rx.recv();
        run(q, job);
    }
    pub fn build(&self) {
        let (tx, rx) = channel(); // xc-allow: feeds a drop-ok debug tap
        use_it(tx, rx);
    }
}
"#;
        let a = analyze(&[("crates/gateway/src/p.rs", src)]);
        assert!(a.diags.is_empty(), "{:?}", a.diags);
        assert_eq!(a.suppressed, 2);
    }

    #[test]
    fn bare_allow_does_not_suppress() {
        // The marker is assembled so this file never contains a literal
        // reasonless marker (the R-series `bare-allow` lint scans raw
        // lines, fixture strings included).
        let marker = concat!("xc-", "allow");
        let src = format!(
            "impl Pool {{\n    pub fn drain(&self) {{\n        let q = self.queue.lock();\n        let job = self.rx.recv(); // {marker}:\n        run(q, job);\n    }}\n}}\n"
        );
        let a = analyze(&[("crates/gateway/src/p.rs", &src)]);
        assert_eq!(codes(&a), vec!["XL0002"]);
    }

    #[test]
    fn test_code_is_ignored_entirely() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn t(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        self.rx.recv();
    }
    fn u(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
    }
}
"#;
        let a = analyze(&[("crates/core/src/s.rs", src)]);
        assert!(a.diags.is_empty(), "{:?}", a.diags);
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let src = r#"
impl Pool {
    pub fn drain(&self) {
        let q = self.queue.lock();
        let job = self.rx.recv();
        run(q, job);
    }
}
"#;
        let a = analyze(&[("crates/gateway/src/p.rs", src)]);
        let json = a.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"code\":\"XL0002\""));
        assert!(json.contains("\"line\":5"));
        // Balanced quotes: even count.
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn read_read_same_lock_no_self_edge() {
        let src = r#"
impl Hub {
    pub fn compare(&self) {
        let a = self.db.read();
        let b = self.db.read();
        diff(&a, &b);
    }
}
"#;
        let a = analyze(&[("crates/core/src/h.rs", src)]);
        assert!(a.diags.is_empty(), "{:?}", a.diags);
    }
}

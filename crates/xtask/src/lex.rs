//! A minimal std-only Rust lexer for the concurrency analyzer.
//!
//! The line-based scanner in `lib.rs` is fine for single-line patterns,
//! but lock-order and guard-lifetime analysis need a token stream:
//! receiver chains (`self.inner.stale`), statement boundaries, brace
//! scopes, and attributes all span lines. This lexer produces exactly
//! what [`crate::model`] needs and nothing more:
//!
//! - identifiers and keywords (one token kind — the parser decides),
//! - single-character punctuation (`::` arrives as two `:` tokens),
//! - literals collapsed to placeholder kinds (contents dropped, so
//!   `"panic!(x.lock())"` can never confuse the analysis),
//! - lifetimes distinguished from char literals,
//! - comments skipped entirely (suppression markers are matched against
//!   the raw file text by line, not against tokens).
//!
//! It is resilient rather than strict: unknown bytes are skipped, an
//! unterminated literal ends at end-of-file. The analyzer must degrade
//! gracefully on any source text the workspace can throw at it.

/// What a token is. Literal contents are deliberately dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`self`, `fn`, `query_cached`, ...).
    Ident(String),
    /// One punctuation character (`{`, `.`, `:`, `#`, ...).
    Punct(char),
    /// String / raw-string / byte-string literal.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, Tok::Ident(t) if t == s)
    }
}

/// Tokenize Rust source text. Never fails; see module docs.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        bytes: text.as_bytes(),
        text,
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => {
                    self.pos += 1;
                    self.skip_string_body();
                    self.push(Tok::Str, line);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    // raw_or_byte_string consumed the literal.
                    self.push(Tok::Str, line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => {
                    self.skip_number();
                    self.push(Tok::Num, line);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    // Raw identifier `r#match`: skip the prefix, lex the
                    // ident proper (the raw-string case was tried above).
                    if b == b'r'
                        && self.peek(1) == Some(b'#')
                        && self
                            .peek(2)
                            .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
                    {
                        self.pos += 2;
                    }
                    let start = self.pos;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] == b'_'
                            || self.bytes[self.pos].is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    let ident = self.text[start..self.pos].to_owned();
                    self.push(Tok::Ident(ident), line);
                }
                _ if b.is_ascii() => {
                    self.push(Tok::Punct(b as char), line);
                    self.pos += 1;
                }
                // Non-ASCII byte (inside an identifier we don't care
                // about, or stray): skip it.
                _ => self.pos += 1,
            }
        }
        self.out
    }

    fn push(&mut self, kind: Tok, line: usize) {
        self.out.push(Token { kind, line });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    /// Rust block comments nest.
    fn skip_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Body of a normal string literal; opening quote already consumed.
    fn skip_string_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// If the cursor sits on `r"`, `r#"`, `b"`, `br#"`, ... consume the
    /// whole literal and return true. A raw *identifier* (`r#match`) or
    /// a plain ident starting with r/b returns false and consumes
    /// nothing.
    fn raw_or_byte_string(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        let mut i = 0;
        // Optional b, optional r (in either br order Rust allows: b, r, br, rb? only br).
        if rest.get(i) == Some(&b'b') {
            i += 1;
        }
        let raw = rest.get(i) == Some(&b'r');
        if raw {
            i += 1;
        }
        let mut hashes = 0;
        while rest.get(i + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if !raw && hashes > 0 {
            return false; // `b#` is not a thing
        }
        if hashes > 0 && !raw {
            return false;
        }
        if rest.get(i + hashes) != Some(&b'"') {
            return false; // raw ident (`r#match`) or plain ident
        }
        if !raw && hashes == 0 && i == 0 {
            return false; // plain `"` handled elsewhere
        }
        // Consume: prefix + hashes + quote.
        self.pos += i + hashes + 1;
        if raw {
            // Scan for `"` followed by `hashes` hashes; no escapes.
            while self.pos < self.bytes.len() {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                    self.pos += 1;
                } else if self.bytes[self.pos] == b'"'
                    && self.bytes[self.pos + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count()
                        == hashes
                {
                    self.pos += 1 + hashes;
                    return true;
                } else {
                    self.pos += 1;
                }
            }
        } else {
            self.skip_string_body();
        }
        true
    }

    /// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: usize) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: skip to the closing quote.
            self.pos += 2;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            self.push(Tok::Char, line);
            return;
        }
        // `'X'` where X is any single char -> char literal. Otherwise a
        // lifetime: consume the identifier after the quote.
        let close_soon = {
            // A char is at most 4 utf8 bytes; find a `'` within 5 bytes
            // with at least one byte between.
            let mut found = None;
            for n in 2..=5 {
                if self.peek(n) == Some(b'\'') {
                    found = Some(n);
                    break;
                }
            }
            // `''` is invalid rust; `'a'` gives n == 2.
            found.filter(|&n| {
                // Reject `'a': ...` style false positives: a lifetime
                // followed by a char literal is rare enough to ignore.
                // Only accept if the bytes between are not ident chars
                // beyond position 1 (i.e. short enough to be one char).
                n == 2 || !self.bytes[self.pos + 1].is_ascii_alphanumeric()
            })
        };
        if let Some(n) = close_soon {
            self.pos += n + 1;
            self.push(Tok::Char, line);
        } else {
            // Lifetime: `'` + ident.
            self.pos += 1;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos] == b'_' || self.bytes[self.pos].is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(Tok::Lifetime, line);
        }
    }

    fn skip_number(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else if b == b'.'
                && self
                    .peek(1)
                    .is_some_and(|n| n.is_ascii_digit())
            {
                // `1.5` but not `1.max(2)` and not `x.0.1` chains.
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        lex(text)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("fn f() {\n  x.lock()\n}\n");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("f"));
        let lock = toks.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!(lock.line, 2);
        let close = toks.iter().find(|t| t.is_punct('}')).unwrap();
        assert_eq!(close.line, 3);
    }

    #[test]
    fn strings_are_opaque() {
        let toks = lex("let s = \"a.lock() // not code\"; done");
        assert_eq!(idents("let s = \"a.lock()\"; done"), vec!["let", "s", "done"]);
        assert!(toks.iter().any(|t| t.kind == Tok::Str));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn raw_strings_span_lines_and_keep_line_count() {
        let toks = lex("let q = r#\"\n panic!() .lock()\n\"#;\nnext");
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 4);
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        assert_eq!(idents("r#match x"), vec!["match", "x"]);
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let src = "a // b.lock()\n/* c /* nested */ still */ d";
        assert_eq!(idents(src), vec!["a", "d"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(toks.iter().any(|t| t.kind == Tok::Char));
        assert_eq!(toks.iter().filter(|t| t.kind == Tok::Lifetime).count(), 2);
        // The lifetime ident must not leak as an Ident token.
        assert!(!toks.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn escaped_char_literal() {
        let toks = lex("let c = '\\n'; x");
        assert!(toks.iter().any(|t| t.kind == Tok::Char));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("1.max(2) 1.5 0xff_u32");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        // `1`, `2`, `1.5`, `0xff_u32`.
        assert_eq!(toks.iter().filter(|t| t.kind == Tok::Num).count(), 4);
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let toks = lex("std::thread::sleep");
        assert_eq!(toks.iter().filter(|t| t.is_punct(':')).count(), 4);
    }

    #[test]
    fn byte_string_is_opaque() {
        let toks = lex("let b = b\"lock()\"; z");
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
        assert!(toks.iter().any(|t| t.is_ident("z")));
    }
}

//! `cargo run -p xtask -- lint` — workspace invariant gate.
//!
//! See the crate docs in `lib.rs` for the rules. Exit codes: 0 clean,
//! 1 findings, 2 usage/IO error.

use std::process::ExitCode;

const USAGE: &str = "usage: xtask lint [ROOT]\n\n  lint   scan workspace sources for invariant violations";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.get(1).map(String::as_str)),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(root_arg: Option<&str>) -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(e) => {
            eprintln!("xtask: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg {
        // An explicit root must actually be a workspace: a typo'd path
        // scanning zero files would report "clean" and green a CI gate.
        Some(path) => {
            let root = std::path::PathBuf::from(path);
            if !root.join("Cargo.toml").is_file() {
                eprintln!("xtask: {path} is not a workspace root (no Cargo.toml)");
                return ExitCode::from(2);
            }
            root
        }
        None => match xtask::find_workspace_root(&cwd) {
            Some(root) => root,
            None => {
                eprintln!("xtask: no workspace root (Cargo.toml + crates/) above {}", cwd.display());
                return ExitCode::from(2);
            }
        },
    };
    match xtask::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

//! `cargo run -p xtask -- lint|analyze` — workspace static gates.
//!
//! - `lint` — the line-based invariant lint (R1 no-unwrap, R2
//!   hot-path-lock, R3 untraced-query). See `lib.rs`.
//! - `analyze` — the static concurrency analyzer (XL0001 lock-order
//!   inversion, XL0002 guard-across-blocking, XL0003 cross-crate lock
//!   composition, XL0004 unbounded channel). See `locks.rs`.
//!
//! `--json` renders findings as a JSON array on stdout (parity with
//! `xdmod-check --json`) so CI can archive machine-readable reports.
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: xtask <lint|analyze> [--json] [ROOT]\n\n  \
lint     scan workspace sources for invariant violations\n  \
analyze  static concurrency analysis (lock order, guards, channels)\n\n  \
--json   render findings as a JSON array";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut command: Option<String> = None;
    let mut root_arg: Option<String> = None;
    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            other if command.is_none() => command = Some(other.to_owned()),
            other if root_arg.is_none() => root_arg = Some(other.to_owned()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match command.as_deref() {
        Some("lint") => lint(root_arg.as_deref(), json),
        Some("analyze") => analyze(root_arg.as_deref(), json),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Resolve the workspace root: an explicit argument must actually be a
/// workspace (a typo'd path scanning zero files would report "clean"
/// and green a CI gate); otherwise ascend from the current directory.
fn resolve_root(root_arg: Option<&str>) -> Result<PathBuf, ExitCode> {
    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(e) => {
            eprintln!("xtask: cannot determine current dir: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match root_arg {
        Some(path) => {
            let root = PathBuf::from(path);
            if !root.join("Cargo.toml").is_file() {
                eprintln!("xtask: {path} is not a workspace root (no Cargo.toml)");
                return Err(ExitCode::from(2));
            }
            Ok(root)
        }
        None => match xtask::find_workspace_root(&cwd) {
            Some(root) => Ok(root),
            None => {
                eprintln!(
                    "xtask: no workspace root (Cargo.toml + crates/) above {}",
                    cwd.display()
                );
                Err(ExitCode::from(2))
            }
        },
    }
}

fn lint(root_arg: Option<&str>, json: bool) -> ExitCode {
    let root = match resolve_root(root_arg) {
        Ok(root) => root,
        Err(code) => return code,
    };
    match xtask::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                println!("{}", xtask::findings_json(&findings));
            } else if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("xtask lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn analyze(root_arg: Option<&str>, json: bool) -> ExitCode {
    let root = match resolve_root(root_arg) {
        Ok(root) => root,
        Err(code) => return code,
    };
    match xtask::analyze_workspace(&root) {
        Ok(analysis) => {
            if json {
                println!("{}", analysis.render_json());
            } else if analysis.diags.is_empty() {
                println!(
                    "xtask analyze: clean ({} suppressed by xc-allow)",
                    analysis.suppressed
                );
            } else {
                for d in &analysis.diags {
                    print!("{}", d.render_text());
                }
                println!(
                    "xtask analyze: {} finding(s), {} suppressed",
                    analysis.diags.len(),
                    analysis.suppressed
                );
            }
            if analysis.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

//! Item extraction and per-function concurrency summaries.
//!
//! Built on [`crate::lex`], this module turns workspace sources into a
//! [`Workspace`] of [`FnSummary`] records: for every function (free or
//! in an `impl` block, excluding `#[cfg(test)]` regions and `#[test]`
//! functions) a linear stream of concurrency [`Event`]s —
//!
//! - **Acquire/Release** pairs for lock guards, with lifetimes inferred
//!   from Rust scoping rules: `let`-bound guards live to the end of the
//!   enclosing block (or an explicit `drop(guard)`); temporaries live to
//!   the end of their statement; `if let` / `while let` / `match` / `for`
//!   scrutinee temporaries live to the end of the whole construct
//!   (including `else` chains — the classic edition-2021 deadlock
//!   footgun); plain `if`/`while` condition temporaries are dropped
//!   before the block.
//! - **Call** events for every function/method call, so the analysis in
//!   [`crate::locks`] can propagate held-lock sets one level into
//!   callees.
//! - **Blocking** events for operations that can park the thread:
//!   channel `send`/`recv`, socket `accept`/`read_exact`/`write_all`/
//!   `flush`, `thread::sleep`, condvar waits, and chaos fault-point
//!   calls (`next_fault` — an injected fault may stall or fail the op).
//! - **UnboundedChannel** events for `mpsc::channel()` construction
//!   (the workspace convention is bounded `sync_channel`).
//!
//! Lock identity is a *field-path heuristic*, not type resolution:
//! `self.db.read()` inside `impl FederationHub` is the lock
//! `FederationHub::db`; a local `db.read()` is keyed to the enclosing
//! function unless a recorded alias (`let db = self.db.clone()`,
//! `Arc::clone(&self.db)`, `let db = &self.db`) resolves it back to a
//! field. `.lock()` is a Mutex acquisition; zero-argument `.read()` /
//! `.write()` are RwLock acquisitions (the zero-arg form cannot be
//! `io::Read`/`io::Write`, which take a buffer). Functions whose return
//! type names a `*Guard` type are *guard helpers*: a call
//! `lock(&self.bucket)` is an acquisition of `self.bucket` at the call
//! site (second extraction pass, once all signatures are known).
//!
//! Closure bodies are analyzed inline as part of the enclosing
//! function: a guard visibly held at the point a closure runs is
//! usually held by the thread executing it (worker-pool jobs are the
//! exception, and are what `xc-allow` is for).

use crate::lex::{lex, Tok, Token};

/// How a lock is acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `Mutex::lock` (or a guard-returning helper).
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl Mode {
    /// Method-name rendering for messages.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Lock => "lock()",
            Mode::Read => "read()",
            Mode::Write => "write()",
        }
    }
}

/// One concurrency-relevant step in a function body, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A lock guard comes into existence. `idx` pairs it with its
    /// `Release`; `path` is the alias-resolved receiver (`self.db`,
    /// `receiver`, ...); `via_helper` names the guard-returning helper
    /// if the acquisition went through one.
    Acquire {
        idx: usize,
        path: String,
        mode: Mode,
        line: usize,
        via_helper: Option<String>,
    },
    /// The guard from `Acquire { idx }` is dropped.
    Release { idx: usize, line: usize },
    /// A call to `callee` (last path segment only).
    Call { callee: String, line: usize },
    /// A potentially thread-parking operation.
    Blocking { what: String, line: usize },
    /// `mpsc::channel()` — unbounded, against workspace convention.
    UnboundedChannel { line: usize },
}

/// Per-function concurrency summary.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Workspace crate (`core`, `warehouse`, ... or `xdmod` for the
    /// top-level `src/`).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, if any.
    pub impl_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inside `#[cfg(test)]` / `#[test]` — excluded from analysis.
    pub is_test: bool,
    /// Return type names a `*Guard` type.
    pub returns_guard: bool,
    /// Concurrency events in source order.
    pub events: Vec<Event>,
}

impl FnSummary {
    /// `Type::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        match &self.impl_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Direct lock acquisitions (the `Acquire` events).
    pub fn direct_acquires(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Acquire { .. }))
    }
}

/// All function summaries for a set of sources.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnSummary>,
}

/// Derive the crate name from a workspace-relative path.
pub fn crate_of(rel_path: &str) -> String {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("xdmod")
        .to_owned()
}

/// Extract summaries from `(rel_path, text)` sources. Two passes: the
/// first finds every function and its signature (so guard-returning
/// helpers are known workspace-wide), the second generates events.
pub fn extract(files: &[(String, String)]) -> Workspace {
    struct RawFn {
        file_idx: usize,
        name: String,
        impl_ty: Option<String>,
        line: usize,
        is_test: bool,
        returns_guard: bool,
        body: std::ops::Range<usize>,
    }

    let tokens: Vec<Vec<Token>> = files.iter().map(|(_, text)| lex(text)).collect();
    let mut raw: Vec<RawFn> = Vec::new();
    for (file_idx, toks) in tokens.iter().enumerate() {
        for item in extract_items(toks) {
            raw.push(RawFn {
                file_idx,
                name: item.name,
                impl_ty: item.impl_ty,
                line: item.line,
                is_test: item.is_test,
                returns_guard: item.returns_guard,
                body: item.body,
            });
        }
    }

    // Guard-returning helper names, workspace-wide (pass 1 result).
    let guard_fns: std::collections::BTreeSet<String> = raw
        .iter()
        .filter(|f| f.returns_guard)
        .map(|f| f.name.clone())
        .collect();

    let mut ws = Workspace::default();
    for f in raw {
        let (rel_path, _) = &files[f.file_idx];
        let events = body_events(&tokens[f.file_idx][f.body.clone()], &guard_fns);
        ws.fns.push(FnSummary {
            crate_name: crate_of(rel_path),
            file: rel_path.clone(),
            name: f.name,
            impl_ty: f.impl_ty,
            line: f.line,
            is_test: f.is_test,
            returns_guard: f.returns_guard,
            events,
        });
    }
    ws
}

// ---------------------------------------------------------------------------
// Item extraction
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    impl_ty: Option<String>,
    line: usize,
    is_test: bool,
    returns_guard: bool,
    /// Token range of the body, *excluding* the outer braces.
    body: std::ops::Range<usize>,
}

/// True when a flattened attribute ident list marks a test item:
/// contains `test` without a `not(...)` (so `#[cfg(not(test))]` does
/// not count).
fn attr_is_test(idents: &[String]) -> bool {
    idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not")
}

fn extract_items(toks: &[Token]) -> Vec<Item> {
    let mut items = Vec::new();
    // Scope stack entries: (brace depth *inside* the scope, impl type if
    // an impl block, whether the scope is test code).
    struct Scope {
        depth: i32,
        impl_ty: Option<String>,
        test: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_test = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            Tok::Punct('#') if toks.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                // Attribute: collect idents to the matching `]`.
                let mut j = i + 2;
                let mut bdepth = 1;
                let mut idents = Vec::new();
                while j < toks.len() && bdepth > 0 {
                    match &toks[j].kind {
                        Tok::Punct('[') => bdepth += 1,
                        Tok::Punct(']') => bdepth -= 1,
                        Tok::Ident(s) => idents.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                if attr_is_test(&idents) {
                    pending_test = true;
                }
                i = j;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // Parse to the opening `{`; extract the implemented type.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut ty: Option<String> = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        // `impl Trait for Type`: the type is what counts.
                        Tok::Ident(s) if angle <= 0 && s == "for" => ty = None,
                        Tok::Ident(s) if angle <= 0 && s == "where" => break,
                        Tok::Ident(s) if angle <= 0 => ty = Some(s.clone()),
                        Tok::Punct('{') => break,
                        _ => {}
                    }
                    j += 1;
                }
                // Skip to the `{` itself (the `where` clause carries no
                // braces of its own).
                while j < toks.len() && !toks[j].is_punct('{') {
                    j += 1;
                }
                let parent_test = scopes.last().map(|s| s.test).unwrap_or(false);
                depth += 1;
                scopes.push(Scope {
                    depth,
                    impl_ty: ty,
                    test: parent_test || pending_test,
                });
                pending_test = false;
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name {` opens a scope; `mod name;` does not.
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                    let parent_test = scopes.last().map(|s| s.test).unwrap_or(false);
                    depth += 1;
                    scopes.push(Scope {
                        depth,
                        impl_ty: None,
                        test: parent_test || pending_test,
                    });
                }
                pending_test = false;
                i = j + 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
                    i += 1;
                    continue;
                };
                let name = name.to_owned();
                let line = t.line;
                // Signature: to the body `{` or a trait-decl `;`, at
                // paren depth 0. Generics can contain parens (Fn traits),
                // so track both.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut arrow_at: Option<usize> = None;
                let mut body_open: Option<usize> = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                        Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                        // `->` ends in '>': note where the return type
                        // starts (the last arrow wins, which is the real
                        // one — earlier arrows live inside Fn() bounds).
                        Tok::Punct('>')
                            if toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) =>
                        {
                            arrow_at = Some(j + 1);
                        }
                        Tok::Punct('{') if paren == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let returns_guard = match (arrow_at, body_open) {
                    (Some(a), Some(b)) => toks[a..b]
                        .iter()
                        .any(|t| t.ident().is_some_and(|s| s.ends_with("Guard"))),
                    (Some(a), None) => toks[a..j.min(toks.len())]
                        .iter()
                        .any(|t| t.ident().is_some_and(|s| s.ends_with("Guard"))),
                    _ => false,
                };
                let scope_test = scopes.last().map(|s| s.test).unwrap_or(false);
                let impl_ty = scopes.iter().rev().find_map(|s| s.impl_ty.clone());
                if let Some(open) = body_open {
                    // Match braces to find the body end.
                    let mut k = open + 1;
                    let mut bd = 1i32;
                    while k < toks.len() && bd > 0 {
                        match &toks[k].kind {
                            Tok::Punct('{') => bd += 1,
                            Tok::Punct('}') => bd -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    items.push(Item {
                        name,
                        impl_ty,
                        line,
                        is_test: scope_test || pending_test,
                        returns_guard,
                        body: open + 1..k.saturating_sub(1),
                    });
                    pending_test = false;
                    i = k;
                } else {
                    pending_test = false;
                    i = j + 1;
                }
            }
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                while scopes.last().is_some_and(|s| s.depth >= depth) {
                    scopes.pop();
                }
                depth -= 1;
                i += 1;
            }
            Tok::Punct(';') => {
                pending_test = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    items
}

// ---------------------------------------------------------------------------
// Body event generation
// ---------------------------------------------------------------------------

/// Methods that can park the calling thread. `join` is deliberately
/// absent (`Vec<String>::join` would swamp the signal); worker joins on
/// shutdown paths are cold and covered by review.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "send",
    "accept",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "flush",
    "wait",
    "wait_timeout",
    "park",
    "sleep",
    "next_fault",
];

/// Guard lifetime classification while walking a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Life {
    /// `let g = ...` — to end of enclosing block (or `drop(g)`).
    LetBound,
    /// Temporary — to end of statement.
    TempStmt,
    /// `if let` / `match` / `for` scrutinee — to end of the construct.
    Scrutinee,
    /// Plain `if`/`while` condition — dropped at the block `{`.
    Cond,
}

struct Active {
    idx: usize,
    name: Option<String>,
    life: Life,
    /// Brace depth the guard's block lives at (LetBound) or the depth
    /// the construct started at (Scrutinee/Cond).
    depth: i32,
    /// Construct frame id for Scrutinee/Cond guards.
    frame: usize,
}

struct Frame {
    id: usize,
    depth: i32,
    /// `if`/`while let` chains continue over `else`.
    if_like: bool,
    /// Seen the construct's block `{` yet?
    in_block: bool,
    /// Scrutinee-extending construct (`if let`/`while let`/`match`/
    /// `for`) vs a plain condition.
    extends_temps: bool,
}

struct Walker<'a> {
    toks: &'a [Token],
    guard_fns: &'a std::collections::BTreeSet<String>,
    events: Vec<Event>,
    active: Vec<Active>,
    aliases: std::collections::BTreeMap<String, String>,
    next_idx: usize,
    next_frame: usize,
    depth: i32,
    /// Paren/bracket depth within the current statement.
    paren: i32,
    /// Saved paren depths across `{ ... }` (closure/block expressions
    /// inside a statement restore the outer depth on close).
    paren_stack: Vec<i32>,
    /// Current statement: `let` binding name (simple pattern only).
    let_name: Option<String>,
    /// Statement began with `let` (any pattern shape).
    stmt_is_let: bool,
    /// Pending construct kind seen at statement start.
    frames: Vec<Frame>,
    stmt_start: bool,
}

/// Generate the event stream for one function body.
fn body_events(
    toks: &[Token],
    guard_fns: &std::collections::BTreeSet<String>,
) -> Vec<Event> {
    let mut w = Walker {
        toks,
        guard_fns,
        events: Vec::new(),
        active: Vec::new(),
        aliases: std::collections::BTreeMap::new(),
        next_idx: 0,
        next_frame: 0,
        depth: 0,
        paren: 0,
        paren_stack: Vec::new(),
        let_name: None,
        stmt_is_let: false,
        frames: Vec::new(),
        stmt_start: true,
    };
    w.run();
    // Guards still alive at the end of the body die with the function.
    let end_line = toks.last().map(|t| t.line).unwrap_or(0);
    let remaining: Vec<usize> = w.active.iter().map(|a| a.idx).collect();
    for idx in remaining {
        w.events.push(Event::Release {
            idx,
            line: end_line,
        });
    }
    w.events
}

impl<'a> Walker<'a> {
    fn run(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            i = self.step(i);
        }
    }

    /// Process the token at `i`; return the next index.
    fn step(&mut self, i: usize) -> usize {
        let t = &self.toks[i];
        if self.stmt_start {
            if let Some(next) = self.at_stmt_start(i) {
                return next;
            }
        }
        match &t.kind {
            Tok::Punct('(') | Tok::Punct('[') => {
                self.paren += 1;
                i + 1
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                self.paren -= 1;
                i + 1
            }
            Tok::Punct('{') => {
                // A construct waiting for its block enters it now.
                if let Some(f) = self.frames.last_mut() {
                    if !f.in_block && self.paren == 0 {
                        f.in_block = true;
                        // Plain-condition guards drop before the block.
                        let fid = f.id;
                        self.release_frame_guards(fid, Life::Cond, t.line);
                    }
                }
                self.depth += 1;
                self.paren_stack.push(self.paren);
                self.begin_stmt();
                i + 1
            }
            Tok::Punct('}') => {
                let line = t.line;
                // Let-bound guards of the closing block die here.
                self.release_let_guards_at(self.depth, line);
                self.depth -= 1;
                // Construct frames whose block just closed: an if-chain
                // survives into an immediate `else`.
                while let Some(f) = self.frames.last() {
                    if !f.in_block || f.depth != self.depth {
                        break;
                    }
                    let continues = f.if_like
                        && self.toks.get(i + 1).is_some_and(|n| n.is_ident("else"));
                    if continues {
                        // Stay in the frame; the else arm re-opens it.
                        break;
                    }
                    let fid = f.id;
                    self.frames.pop();
                    self.release_frame_guards(fid, Life::Scrutinee, line);
                }
                self.begin_stmt();
                self.paren = self.paren_stack.pop().unwrap_or(0);
                i + 1
            }
            Tok::Punct(';') if self.paren == 0 => {
                self.end_stmt(t.line);
                self.begin_stmt();
                i + 1
            }
            Tok::Ident(kw) if kw == "else" => {
                // `else {` or `else if ...`: frame continues either way;
                // a following `if` must not open a second frame.
                if self.toks.get(i + 1).is_some_and(|n| n.is_ident("if")) {
                    if let Some(f) = self.frames.last_mut() {
                        f.in_block = false;
                    }
                    return i + 2;
                }
                i + 1
            }
            Tok::Ident(name) => self.at_ident(i, name.clone(), t.line),
            _ => i + 1,
        }
    }

    /// Statement-start bookkeeping: `let` bindings and construct
    /// keywords. Returns `Some(next_index)` when tokens were consumed.
    fn at_stmt_start(&mut self, i: usize) -> Option<usize> {
        let t = &self.toks[i];
        let kw = t.ident()?;
        match kw {
            "let" => {
                self.stmt_is_let = true;
                self.stmt_start = false;
                // Simple `let [mut] name =` (or `: Ty =`) binds by name;
                // any other pattern binds anonymously (scope lifetime).
                let mut j = i + 1;
                if self.toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = self.toks.get(j).and_then(|t| t.ident()) {
                    let nxt = self.toks.get(j + 1);
                    if nxt.is_some_and(|t| t.is_punct('=') || t.is_punct(':')) {
                        self.let_name = Some(name.to_owned());
                        self.try_record_alias(j);
                    }
                }
                Some(i + 1)
            }
            "if" | "while" => {
                let is_let = self.toks.get(i + 1).is_some_and(|t| t.is_ident("let"));
                self.open_frame(true, is_let);
                self.stmt_start = false;
                Some(i + 1 + usize::from(is_let))
            }
            "match" | "for" => {
                self.open_frame(false, true);
                self.stmt_start = false;
                Some(i + 1)
            }
            _ => {
                self.stmt_start = false;
                None
            }
        }
    }

    fn open_frame(&mut self, if_like: bool, extends_temps: bool) {
        self.next_frame += 1;
        self.frames.push(Frame {
            id: self.next_frame,
            depth: self.depth,
            if_like,
            in_block: false,
            extends_temps,
        });
    }

    /// Identifier that is not a statement keyword: detect acquisitions,
    /// blocking ops, calls, channel construction.
    fn at_ident(&mut self, i: usize, name: String, line: usize) -> usize {
        let is_method = i > 0 && self.toks[i - 1].is_punct('.');
        let next_is_paren = self.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let next_is_bang = self.toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if next_is_bang {
            return i + 1; // macro call: skip the name
        }

        // `.lock()` / zero-arg `.read()` / `.write()` — an acquisition.
        if is_method
            && matches!(name.as_str(), "lock" | "read" | "write")
            && next_is_paren
            && self.toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            let mode = match name.as_str() {
                "lock" => Mode::Lock,
                "read" => Mode::Read,
                _ => Mode::Write,
            };
            let path = self.receiver_path(i - 1);
            let consumed = self.chain_consumes_guard(i + 3);
            self.emit_acquire(path, mode, line, None, consumed);
            return i + 3;
        }

        // Guard-returning helper call: `lock(&self.bucket)`.
        if !is_method && next_is_paren && self.guard_fns.contains(&name) {
            let arg = self.first_arg_path(i + 1);
            let path = arg.unwrap_or_else(|| format!("{name}(..)"));
            let consumed = self
                .matching_paren(i + 1)
                .is_some_and(|close| self.chain_consumes_guard(close + 1));
            self.emit_acquire(path, Mode::Lock, line, Some(name), consumed);
            return i + 1; // the `(` is processed normally
        }

        // Unbounded channel construction: `channel()` / `channel::<T>()`.
        if name == "channel" && !is_method {
            let zero_arg = self.toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && self.toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
            let turbofish = self.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && self.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && self.toks.get(i + 3).is_some_and(|t| t.is_punct('<'));
            if zero_arg || turbofish {
                self.events.push(Event::UnboundedChannel { line });
                return i + 1;
            }
        }

        // `drop(g)` / `mem::drop(g)` — explicit guard release.
        if name == "drop" && next_is_paren {
            if let Some(arg) = self.first_arg_path(i + 1) {
                if let Some(pos) = self
                    .active
                    .iter()
                    .rposition(|a| a.name.as_deref() == Some(arg.as_str()))
                {
                    let idx = self.active[pos].idx;
                    self.active.remove(pos);
                    self.events.push(Event::Release { idx, line });
                }
            }
            return i + 1;
        }

        // Blocking operations (method or path call).
        if next_is_paren && BLOCKING_METHODS.contains(&name.as_str()) {
            let what = if is_method {
                format!("{}.{name}()", self.receiver_path(i - 1))
            } else {
                format!("{name}()")
            };
            self.events.push(Event::Blocking { what, line });
            return i + 1;
        }

        // Anything else followed by `(` is a plain call.
        if next_is_paren && !Self::is_keyword(&name) {
            self.events.push(Event::Call { callee: name, line });
        }
        i + 1
    }

    /// After an acquisition's closing paren: does the method chain
    /// consume the guard (`.read().binlog_position()`)? `.unwrap()`,
    /// `.expect(..)` and `.unwrap_or_else(..)` forward the guard
    /// (poison recovery) and are skipped. A consumed guard is a
    /// statement temporary even under `let` — the binding holds the
    /// chained call's result, not the guard.
    fn chain_consumes_guard(&self, mut j: usize) -> bool {
        loop {
            if !self.toks.get(j).is_some_and(|t| t.is_punct('.')) {
                return false; // chain ends: the guard is the value
            }
            let Some(name) = self.toks.get(j + 1).and_then(|t| t.ident()) else {
                return false;
            };
            if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                return true;
            }
            match self.matching_paren(j + 2) {
                Some(close) => j = close + 1,
                None => return false,
            }
        }
    }

    /// Index of the `)` matching the `(` at `open`, if any.
    fn matching_paren(&self, open: usize) -> Option<usize> {
        if !self.toks.get(open)?.is_punct('(') {
            return None;
        }
        let mut depth = 0usize;
        for (k, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }

    /// Record an acquisition with the lifetime the current statement
    /// context implies.
    fn emit_acquire(
        &mut self,
        path: String,
        mode: Mode,
        line: usize,
        via_helper: Option<String>,
        consumed: bool,
    ) {
        let path = self.resolve_alias(&path);
        let (life, name, depth, frame) = if let Some(f) = self.frames.last() {
            if !f.in_block {
                // Inside a condition / scrutinee. Scrutinee temporaries
                // live to the end of the construct even when the guard
                // is consumed by a chained call (the 2021 footgun).
                let life = if f.extends_temps {
                    Life::Scrutinee
                } else {
                    Life::Cond
                };
                (life, None, f.depth, f.id)
            } else {
                self.stmt_life(consumed)
            }
        } else {
            self.stmt_life(consumed)
        };
        self.next_idx += 1;
        let idx = self.next_idx - 1;
        self.events.push(Event::Acquire {
            idx,
            path,
            mode,
            line,
            via_helper,
        });
        self.active.push(Active {
            idx,
            name,
            life,
            depth,
            frame,
        });
    }

    /// Lifetime for an acquisition in an ordinary statement. A guard
    /// consumed by its method chain never reaches the binding, so the
    /// `let` does not extend it past the statement.
    fn stmt_life(&self, consumed: bool) -> (Life, Option<String>, i32, usize) {
        if self.stmt_is_let && !consumed {
            (Life::LetBound, self.let_name.clone(), self.depth, 0)
        } else {
            (Life::TempStmt, None, self.depth, 0)
        }
    }

    fn begin_stmt(&mut self) {
        self.stmt_start = true;
        self.stmt_is_let = false;
        self.let_name = None;
        self.paren = 0;
    }

    /// Keywords that must never be mistaken for call targets.
    fn is_keyword(name: &str) -> bool {
        matches!(
            name,
            "if" | "while"
                | "match"
                | "for"
                | "loop"
                | "let"
                | "else"
                | "return"
                | "in"
                | "move"
                | "as"
                | "ref"
                | "mut"
                | "break"
                | "continue"
                | "unsafe"
                | "await"
                | "fn"
                | "impl"
                | "dyn"
                | "where"
                | "use"
                | "pub"
                | "self"
                | "Self"
                | "super"
                | "crate"
        )
    }

    /// Statement end (`;`): temporaries die.
    fn end_stmt(&mut self, line: usize) {
        let mut released = Vec::new();
        self.active.retain(|a| {
            if a.life == Life::TempStmt {
                released.push(a.idx);
                false
            } else {
                true
            }
        });
        for idx in released {
            self.events.push(Event::Release { idx, line });
        }
    }

    /// Block close: let-bound guards (and stray temporaries from a tail
    /// expression) of blocks at `depth` die.
    fn release_let_guards_at(&mut self, depth: i32, line: usize) {
        let mut released = Vec::new();
        self.active.retain(|a| {
            let dies = match a.life {
                Life::LetBound | Life::TempStmt => a.depth >= depth,
                _ => false,
            };
            if dies {
                released.push(a.idx);
            }
            !dies
        });
        for idx in released {
            self.events.push(Event::Release { idx, line });
        }
    }

    /// Release guards belonging to construct frame `fid` with the given
    /// lifetime class.
    fn release_frame_guards(&mut self, fid: usize, life: Life, line: usize) {
        let mut released = Vec::new();
        self.active.retain(|a| {
            if a.frame == fid && a.life == life {
                released.push(a.idx);
                false
            } else {
                true
            }
        });
        for idx in released {
            self.events.push(Event::Release { idx, line });
        }
    }

    /// Walk backwards from the `.` at `dot` to build the receiver path:
    /// `self.inner.stale`, `member.source_db`, `instance.database()`.
    /// `Arc::clone(&x)` and trailing `.clone()` normalize away.
    fn receiver_path(&self, dot: usize) -> String {
        let mut segs: Vec<String> = Vec::new();
        let mut k = dot as isize - 1;
        loop {
            if k < 0 {
                break;
            }
            let t = &self.toks[k as usize];
            match &t.kind {
                Tok::Ident(s) => {
                    segs.push(s.clone());
                    k -= 1;
                    // Continue over `.` or `::`.
                    if k >= 0 && self.toks[k as usize].is_punct('.') {
                        segs.push(".".into());
                        k -= 1;
                        continue;
                    }
                    if k >= 1
                        && self.toks[k as usize].is_punct(':')
                        && self.toks[(k - 1) as usize].is_punct(':')
                    {
                        segs.push("::".into());
                        k -= 2;
                        continue;
                    }
                    break;
                }
                Tok::Punct(')') => {
                    // Balanced-paren call: capture the call's argument
                    // path for clone-normalization, then the callee.
                    let close = k as usize;
                    let mut depth = 1i32;
                    let mut m = close as isize - 1;
                    while m >= 0 && depth > 0 {
                        match &self.toks[m as usize].kind {
                            Tok::Punct(')') => depth += 1,
                            Tok::Punct('(') => depth -= 1,
                            _ => {}
                        }
                        m -= 1;
                    }
                    // m now sits before the '('.
                    if m >= 0 {
                        if let Some(callee) = self.toks[m as usize].ident() {
                            if callee == "clone" {
                                // `Arc::clone(&path)` or `x.clone()`:
                                // normalize to the underlying path.
                                if close > (m + 2) as usize {
                                    // Args present: use them.
                                    if let Some(arg) =
                                        self.arg_path_between((m + 2) as usize, close)
                                    {
                                        segs.push(arg);
                                        break;
                                    }
                                }
                                // `.clone()` chained: skip callee and the
                                // `.` and keep walking the receiver.
                                k = m - 1;
                                if k >= 0 && self.toks[k as usize].is_punct('.') {
                                    k -= 1;
                                    continue;
                                }
                                break;
                            }
                            segs.push(format!("{callee}()"));
                            k = m - 1;
                            if k >= 0 && self.toks[k as usize].is_punct('.') {
                                segs.push(".".into());
                                k -= 1;
                                continue;
                            }
                            break;
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
        segs.reverse();
        let joined: String = segs.concat();
        // `Foo::bar` receivers (statics/consts) keep the path; strip a
        // leading `&`-free representation is already token-based.
        if joined.is_empty() {
            "<expr>".to_owned()
        } else {
            joined
        }
    }

    /// The first argument of a call whose `(` is at `open`: a pure
    /// `&`/`mut`-stripped ident path, if that is all there is.
    fn first_arg_path(&self, open: usize) -> Option<String> {
        let mut close = open + 1;
        let mut depth = 1i32;
        while close < self.toks.len() && depth > 0 {
            match &self.toks[close].kind {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                _ => {}
            }
            close += 1;
        }
        self.arg_path_between(open + 1, close - 1)
    }

    /// Parse `&[mut] ident(.ident)*` between token indices, rejecting
    /// anything more complex.
    fn arg_path_between(&self, from: usize, to: usize) -> Option<String> {
        let mut path = String::new();
        let mut expect_ident = true;
        for t in &self.toks[from..to] {
            match &t.kind {
                Tok::Punct('&') => continue,
                Tok::Ident(s) if s == "mut" => continue,
                Tok::Ident(s) if expect_ident => {
                    path.push_str(s);
                    expect_ident = false;
                }
                Tok::Punct('.') if !expect_ident => {
                    path.push('.');
                    expect_ident = true;
                }
                _ => return None,
            }
        }
        if path.is_empty() || expect_ident {
            None
        } else {
            Some(path)
        }
    }

    /// `let x = self.db.clone();` / `= Arc::clone(&self.db);` /
    /// `= &self.db;` — record `x -> self.db`. `j` indexes the bound
    /// name.
    fn try_record_alias(&mut self, j: usize) {
        // Find the `=` (skip a type annotation).
        let mut k = j + 1;
        let mut angle = 0i32;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('=') if angle <= 0 => break,
                Tok::Punct(';') | Tok::Punct('{') => return,
                _ => {}
            }
            k += 1;
        }
        if k >= self.toks.len() {
            return;
        }
        // RHS tokens to the `;`.
        let start = k + 1;
        let mut end = start;
        let mut depth = 0i32;
        while end < self.toks.len() {
            match &self.toks[end].kind {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            end += 1;
        }
        let rhs = &self.toks[start..end];
        let name = match self.toks[j].ident() {
            Some(n) => n.to_owned(),
            None => return,
        };
        // `Arc::clone(&path)` / `Rc::clone(&path)`.
        if rhs.len() >= 6
            && rhs[0]
                .ident()
                .is_some_and(|s| s == "Arc" || s == "Rc")
            && rhs[3].is_ident("clone")
        {
            if let Some(arg) = self.arg_path_between(start + 5, end - 1) {
                let resolved = self.resolve_alias(&arg);
                self.aliases.insert(name, resolved);
            }
            return;
        }
        // `path.clone()` — strip the trailing clone.
        if rhs.len() >= 4
            && rhs[rhs.len() - 1].is_punct(')')
            && rhs[rhs.len() - 2].is_punct('(')
            && rhs[rhs.len() - 3].is_ident("clone")
            && rhs[rhs.len() - 4].is_punct('.')
        {
            if let Some(path) = self.arg_path_between(start, end - 4) {
                let resolved = self.resolve_alias(&path);
                self.aliases.insert(name, resolved);
            }
            return;
        }
        // `&path` / `path` (pure path only).
        if let Some(path) = self.arg_path_between(start, end) {
            let resolved = self.resolve_alias(&path);
            self.aliases.insert(name, resolved);
        }
    }

    /// Resolve a path's first segment through recorded aliases.
    fn resolve_alias(&self, path: &str) -> String {
        let mut current = path.to_owned();
        for _ in 0..8 {
            let first_end = current.find(['.', ':']).unwrap_or(current.len());
            let first = &current[..first_end];
            match self.aliases.get(first) {
                Some(base) if base != first => {
                    current = format!("{base}{}", &current[first_end..]);
                }
                _ => break,
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(src: &str) -> Vec<FnSummary> {
        extract(&[("crates/core/src/a.rs".to_owned(), src.to_owned())]).fns
    }

    fn events_of(src: &str, name: &str) -> Vec<Event> {
        summaries(src)
            .into_iter()
            .find(|f| f.name == name)
            .map(|f| f.events)
            .unwrap_or_default()
    }

    fn acquire_paths(events: &[Event]) -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn finds_fns_with_impl_types_and_test_regions() {
        let src = r#"
impl Hub {
    pub fn go(&self) { self.db.read(); }
}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {}
}
fn free() {}
"#;
        let fns = summaries(src);
        let go = fns.iter().find(|f| f.name == "go").unwrap();
        assert_eq!(go.impl_ty.as_deref(), Some("Hub"));
        assert!(!go.is_test);
        assert!(fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(fns.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!fns.iter().find(|f| f.name == "free").unwrap().is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(not(test))]\nfn real() { x.lock(); }\n";
        assert!(!summaries(src)[0].is_test);
    }

    #[test]
    fn acquire_and_release_let_bound() {
        let src = "fn f(&self) {\n    let g = self.db.write();\n    use_it(&g);\n}\n";
        let ev = events_of(src, "f");
        assert_eq!(acquire_paths(&ev), vec!["self.db"]);
        // Release comes after the call.
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let call = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "use_it"))
            .unwrap();
        assert!(rel > call);
    }

    #[test]
    fn consumed_let_guard_is_a_statement_temporary() {
        // The binding holds the u64, not the guard: the guard dies at
        // the semicolon, before the next statement's call.
        let src = "fn f(&self) {\n    let head = self.db.read().binlog_position();\n    self.seek(head);\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let call = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "seek"))
            .unwrap();
        assert!(rel < call, "consumed guard must die at the `;`: {ev:?}");
    }

    #[test]
    fn unwrap_chain_preserves_the_let_guard() {
        let src = "fn f(&self) {\n    let g = self.db.read().unwrap_or_else(PoisonError::into_inner);\n    use_it(&g);\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let call = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "use_it"))
            .unwrap();
        assert!(rel > call, "unwrap chain keeps the guard let-bound: {ev:?}");
    }

    #[test]
    fn consumed_helper_guard_is_a_statement_temporary() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }\nfn f(&self) {\n    let n = lock(&self.bucket).len();\n    after(n);\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let call = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "after"))
            .unwrap();
        assert!(rel < call, "consumed helper guard dies at the `;`: {ev:?}");
    }

    #[test]
    fn temporary_released_at_statement_end() {
        let src = "fn f(&self) {\n    self.m.lock().insert(1);\n    other();\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let other = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "other"))
            .unwrap();
        assert!(rel < other, "temp guard must die before the next stmt: {ev:?}");
    }

    #[test]
    fn explicit_drop_releases_early() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    drop(g);\n    after();\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let after = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "after"))
            .unwrap();
        assert!(rel < after);
    }

    #[test]
    fn if_let_scrutinee_held_through_else() {
        let src = r#"
fn f(&self) {
    if let Some(x) = self.m.lock().get(1) {
        a();
    } else {
        b();
    }
    after();
}
"#;
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let b = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "b"))
            .unwrap();
        let after = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "after"))
            .unwrap();
        assert!(rel > b, "2021 scrutinee lives through else: {ev:?}");
        assert!(rel < after, "but dies before the next stmt: {ev:?}");
    }

    #[test]
    fn plain_if_condition_dropped_before_block() {
        let src = "fn f(&self) {\n    if self.m.lock().is_empty() {\n        a();\n    }\n}\n";
        let ev = events_of(src, "f");
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let a = ev
            .iter()
            .position(|e| matches!(e, Event::Call { callee, .. } if callee == "a"))
            .unwrap();
        assert!(rel < a, "plain-if cond temp dies at the block: {ev:?}");
    }

    #[test]
    fn zero_arg_read_write_only() {
        let src = "fn f(&self, buf: &mut [u8]) {\n    self.db.read();\n    self.stream.read(buf);\n}\n";
        let ev = events_of(src, "f");
        assert_eq!(acquire_paths(&ev), vec!["self.db"]);
    }

    #[test]
    fn alias_resolution_through_clone() {
        let src = "fn f(&self) {\n    let db = self.db.clone();\n    let g = db.write();\n}\n";
        assert_eq!(acquire_paths(&events_of(src, "f")), vec!["self.db"]);
        let src2 = "fn f(&self) {\n    let db = Arc::clone(&self.db);\n    db.read();\n}\n";
        assert_eq!(acquire_paths(&events_of(src2, "f")), vec!["self.db"]);
    }

    #[test]
    fn guard_helper_call_is_an_acquisition() {
        let src = r#"
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }
fn f(&self) {
    lock(&self.buckets).insert(1);
}
"#;
        let fns = summaries(src);
        assert!(fns.iter().find(|f| f.name == "lock").unwrap().returns_guard);
        let ev = fns.iter().find(|f| f.name == "f").unwrap().events.clone();
        let acq = ev
            .iter()
            .find_map(|e| match e {
                Event::Acquire {
                    path, via_helper, ..
                } => Some((path.clone(), via_helper.clone())),
                _ => None,
            })
            .unwrap();
        assert_eq!(acq.0, "self.buckets");
        assert_eq!(acq.1.as_deref(), Some("lock"));
    }

    #[test]
    fn blocking_ops_detected() {
        let src = "fn f(&self) {\n    self.rx.recv();\n    std::thread::sleep(d);\n}\n";
        let ev = events_of(src, "f");
        let blocking: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                Event::Blocking { what, .. } => Some(what.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(blocking, vec!["self.rx.recv()", "sleep()"]);
    }

    #[test]
    fn unbounded_channel_flagged_bounded_not() {
        let src = "fn f() {\n    let (a, b) = channel();\n    let (c, d) = sync_channel(4);\n    let (e, g) = channel::<u8>();\n}\n";
        let ev = events_of(src, "f");
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e, Event::UnboundedChannel { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn helper_guard_temp_held_across_recv_in_same_statement() {
        let src = r#"
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }
fn worker(receiver: &Mutex<Receiver<Job>>) {
    let job = match lock(receiver).recv() { Ok(j) => j, Err(_) => return };
}
"#;
        let fns = summaries(src);
        let ev = fns.iter().find(|f| f.name == "worker").unwrap().events.clone();
        let acq = ev
            .iter()
            .position(|e| matches!(e, Event::Acquire { .. }))
            .unwrap();
        let blk = ev
            .iter()
            .position(|e| matches!(e, Event::Blocking { .. }))
            .unwrap();
        let rel = ev
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        assert!(acq < blk && blk < rel, "recv under the guard: {ev:?}");
    }

    #[test]
    fn receiver_through_method_call() {
        let src = "fn f(&self) {\n    instance.database().read();\n}\n";
        assert_eq!(
            acquire_paths(&events_of(src, "f")),
            vec!["instance.database()"]
        );
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/core/src/hub.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "xdmod");
    }
}

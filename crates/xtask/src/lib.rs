//! Workspace invariant lint: a std-only, line-based source scanner.
//!
//! Three rules, enforced over `crates/*/src/**/*.rs` and `src/**/*.rs`
//! (test files under `tests/`/`benches/`/`examples/` are out of scope
//! by construction, and `#[cfg(test)]` regions inside source files are
//! skipped):
//!
//! - **R1 `no-unwrap`** — no `.unwrap()`, `.expect(...)`, or `panic!`
//!   in non-test code. Every such call is a latent federation outage:
//!   a poisoned lock or absent table must surface as a typed error, not
//!   a crashed replication thread.
//! - **R2 `hot-path-lock`** — no `.lock().unwrap()` / `.lock().expect(`
//!   in the replication / warehouse / telemetry crates, *even where R1
//!   is allowlisted*: those paths run on every poll tick and must
//!   recover from poisoning (`unwrap_or_else(PoisonError::into_inner)`).
//! - **R3 `untraced-query`** — every public query entry point in
//!   `warehouse/src/database.rs` and `core/src/hub.rs` must reference
//!   the telemetry layer (span / timer / counter); a query path that
//!   bypasses telemetry is invisible to the Ops dashboard.
//!
//! A finding on a line is suppressed by `// xc-allow: <reason>` on the
//! same line or the line directly above. The reason is mandatory — a
//! bare `xc-allow:` is itself a finding.
//!
//! Beyond the line-based lint, `xtask analyze` runs the static
//! *concurrency* analyzer ([`lex`] → [`model`] → [`locks`]): a
//! lightweight Rust lexer and item extractor feed per-function
//! summaries of lock acquisitions and guard lifetimes into an
//! interprocedural lock-order graph, emitting stable diagnostics
//! XL0001 (lock-order inversion), XL0002 (guard across a blocking op),
//! XL0003 (guard across a cross-crate lock), and XL0004 (unbounded
//! channel). See the module docs of [`locks`] for the model.

pub mod lex;
pub mod locks;
pub mod model;

pub use locks::{analyze_sources, analyze_workspace, Analysis, Diag, XlCode};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: `.unwrap()` / `.expect(` / `panic!(` outside test code.
    NoUnwrap,
    /// R2: `.lock().unwrap()` / `.lock().expect(` on a hot-path crate.
    HotPathLock,
    /// R3: public query entry point with no telemetry reference.
    UntracedQuery,
    /// `xc-allow:` marker without a reason.
    BareAllow,
}

impl Rule {
    /// Short stable identifier used in output.
    pub fn ident(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::HotPathLock => "hot-path-lock",
            Rule::UntracedQuery => "untraced-query",
            Rule::BareAllow => "bare-allow",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ident())
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Render as a JSON object (parity with `xdmod-check --json`).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":{},\"line\":{},\"message\":{}}}",
            self.rule.ident(),
            locks::json_escape(&self.path),
            self.line,
            locks::json_escape(&self.message)
        )
    }
}

/// Render lint findings as a JSON array (for `xtask lint --json`).
pub fn findings_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings.iter().map(Finding::render_json).collect();
    format!("[{}]", items.join(","))
}

/// Crates whose runtime paths hold locks on every poll tick or every
/// request (R2 scope). `gateway` runs per-request lock paths (session
/// table, rate-limit buckets, the federation RwLock) and `alerts` is
/// pumped from the supervisor tick — a poisoned lock in either stalls
/// the serving tier, so both recover instead of unwrapping.
const HOT_PATH_CRATES: &[&str] = &["replication", "warehouse", "telemetry", "gateway", "alerts"];

/// Crates exempt from R1: `bench` is the workspace's experiment /
/// figure-reproduction harness — the moral equivalent of `benches/`,
/// where `expect()` on setup I/O is the idiom. R2/R3 still apply.
const R1_EXEMPT_CRATES: &[&str] = &["bench"];

/// Files whose public `*query*` functions must reference telemetry (R3).
const TRACED_QUERY_FILES: &[&str] = &["crates/warehouse/src/database.rs", "crates/core/src/hub.rs"];

/// Substrings that count as "references the telemetry layer".
const TELEMETRY_MARKERS: &[&str] = &["span", "timer", "counter", "observe", "telemetry"];

/// Carries comment/string state across lines of one file.
#[derive(Default)]
struct ScanState {
    in_block_comment: bool,
    /// `Some(hash_count)` while inside a raw string literal.
    in_raw_string: Option<usize>,
}

/// Strip comments and string-literal *contents* from one line so that
/// brace counting and pattern matching cannot be fooled by text inside
/// quotes or comments. Keeps the quotes themselves as placeholders.
fn sanitize_line(line: &str, state: &mut ScanState) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if state.in_block_comment {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                state.in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if let Some(hashes) = state.in_raw_string {
            if bytes[i] == b'"' && line[i + 1..].starts_with(&"#".repeat(hashes)) {
                state.in_raw_string = None;
                out.push('"');
                i += 1 + hashes;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break, // line comment
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                state.in_block_comment = true;
                i += 2;
            }
            b'r' | b'b'
                if {
                    // r"..."  r#"..."#  br"..." — raw string opener.
                    let rest = &line[i..];
                    let after_prefix = rest.trim_start_matches(['r', 'b']);
                    let hashes = after_prefix.len() - after_prefix.trim_start_matches('#').len();
                    rest.len() - after_prefix.len() <= 2
                        && rest.starts_with('r')
                        && after_prefix[hashes..].starts_with('"')
                } =>
            {
                let rest = &line[i..];
                let after_prefix = rest.trim_start_matches(['r', 'b']);
                let hashes = after_prefix.len() - after_prefix.trim_start_matches('#').len();
                state.in_raw_string = Some(hashes);
                out.push('"');
                i += (rest.len() - after_prefix.len()) + hashes + 1;
            }
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes within
                // a few bytes; a lifetime has no closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip to closing quote.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    out.push_str("' '");
                    i = j + 1;
                } else {
                    let close = bytes[i + 1..].iter().take(4).position(|&b| b == b'\'');
                    match close {
                        Some(n) if n > 0 => {
                            out.push_str("' '");
                            i += n + 2;
                        }
                        _ => {
                            out.push('\'');
                            i += 1;
                        }
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// Lint one source file's text. `rel_path` is workspace-relative and
/// decides which crate-specific rules apply.
pub fn lint_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let hot_path = HOT_PATH_CRATES.contains(&crate_name);
    let r1_exempt = R1_EXEMPT_CRATES.contains(&crate_name);

    let mut findings = Vec::new();
    let mut state = ScanState::default();
    let mut depth: i32 = 0;
    // Depth at which the innermost #[cfg(test)] region opened; we are in
    // test code while depth > that value.
    let mut test_region: Option<i32> = None;
    // A #[cfg(test)] attribute was seen and waits for its item's `{`.
    let mut pending_test_attr = false;
    let mut prev_raw: &str = "";

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let code = sanitize_line(raw, &mut state);
        let trimmed = code.trim();

        let allow_here = raw.contains("xc-allow:")
            || prev_raw.trim_start().starts_with("//") && prev_raw.contains("xc-allow:");
        if raw.contains("xc-allow")
            && raw
                .split("xc-allow")
                .nth(1)
                .map(|rest| {
                    let reason = rest.trim_start_matches(':').trim();
                    reason.is_empty()
                })
                .unwrap_or(true)
        {
            findings.push(Finding {
                rule: Rule::BareAllow,
                path: rel_path.to_owned(),
                line: lineno,
                message: "xc-allow marker without a reason; write `// xc-allow: <why>`"
                    .to_owned(),
            });
        }

        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(any(test") {
            pending_test_attr = true;
        }

        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        if pending_test_attr && opens > 0 {
            if test_region.is_none() {
                test_region = Some(depth);
            }
            pending_test_attr = false;
        } else if pending_test_attr && trimmed.ends_with(';') {
            // `#[cfg(test)] mod tests;` — out-of-line, nothing to skip here.
            pending_test_attr = false;
        }

        let in_test = test_region.is_some();

        if !in_test && !allow_here && !r1_exempt {
            for (pat, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!(", "panic!"),
            ] {
                if code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::NoUnwrap,
                        path: rel_path.to_owned(),
                        line: lineno,
                        message: format!(
                            "{what} in non-test code; return a typed error \
                             (or justify with `// xc-allow: <why>`)"
                        ),
                    });
                    break;
                }
            }
        }
        // `.lock()`, and the RwLock forms `.read()`/`.write()` the
        // gateway's per-request paths use.
        let hot_lock_unwrap = [".lock()", ".read()", ".write()"].iter().any(|acq| {
            code.contains(&format!("{acq}.unwrap()")) || code.contains(&format!("{acq}.expect("))
        });
        if !in_test && hot_path && hot_lock_unwrap {
            // Deliberately NOT suppressible via xc-allow: poisoning on a
            // poll-tick path must be recovered, never unwrapped.
            findings.push(Finding {
                rule: Rule::HotPathLock,
                path: rel_path.to_owned(),
                line: lineno,
                message: format!(
                    "lock()/read()/write() unwrap/expect on hot-path crate `{crate_name}`; \
                     use .unwrap_or_else(PoisonError::into_inner)"
                ),
            });
        }

        depth += opens - closes;
        if let Some(entry) = test_region {
            if depth <= entry {
                test_region = None;
            }
        }
        prev_raw = raw;
    }

    if TRACED_QUERY_FILES.contains(&rel_path) {
        findings.extend(lint_query_tracing(rel_path, text));
    }
    findings
}

/// R3: every `pub fn *query*` in scope must mention a telemetry marker
/// somewhere in its body.
fn lint_query_tracing(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut state = ScanState::default();
    let sanitized: Vec<String> = text
        .lines()
        .map(|l| sanitize_line(l, &mut state))
        .collect();

    let mut i = 0;
    while i < sanitized.len() {
        let line = &sanitized[i];
        let is_query_fn = line.trim_start().starts_with("pub fn")
            && line
                .split("pub fn")
                .nth(1)
                .and_then(|rest| rest.split('(').next())
                .map(|name| name.contains("query"))
                .unwrap_or(false);
        if !is_query_fn {
            i += 1;
            continue;
        }
        let fn_line = i + 1;
        // Walk to the end of the function body by brace depth.
        let mut depth = 0i32;
        let mut body = String::new();
        let mut opened = false;
        let mut j = i;
        while j < sanitized.len() {
            let l = &sanitized[j];
            depth += l.matches('{').count() as i32 - l.matches('}').count() as i32;
            if l.contains('{') {
                opened = true;
            }
            // Use the raw text for marker search: metric names live in
            // string literals which sanitize_line strips.
            body.push_str(text.lines().nth(j).unwrap_or(""));
            body.push('\n');
            j += 1;
            if opened && depth <= 0 {
                break;
            }
        }
        let lowered = body.to_lowercase();
        if !TELEMETRY_MARKERS.iter().any(|m| lowered.contains(m)) {
            findings.push(Finding {
                rule: Rule::UntracedQuery,
                path: rel_path.to_owned(),
                line: fn_line,
                message: "public query entry point has no telemetry span/counter; \
                          every query path must be visible to the Ops dashboard"
                    .to_owned(),
            });
        }
        i = j.max(i + 1);
    }
    findings
}

/// Collect the workspace-relative paths the lint covers: every `.rs`
/// under `crates/*/src` and under the top-level `src/`.
pub fn source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full lint over a workspace root. Returns all findings.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in source_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &text));
    }
    Ok(findings)
}

/// Ascend from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "pub fn f() {\n    let x = maybe().unwrap();\n}\n";
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoUnwrap]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn skips_cfg_test_regions() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        maybe().unwrap();\n        panic!(\"x\");\n    }\n}\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_region_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { maybe().unwrap(); }\n}\n\npub fn g() { maybe().unwrap(); }\n";
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules(&f), vec![Rule::NoUnwrap]);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn xc_allow_with_reason_suppresses_same_and_next_line() {
        let same = "fn f() { x.unwrap(); } // xc-allow: startup, cannot fail\n";
        assert!(lint_source("crates/core/src/a.rs", same).is_empty());
        let above = "// xc-allow: startup, cannot fail\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/core/src/a.rs", above).is_empty());
    }

    #[test]
    fn bare_xc_allow_is_itself_a_finding() {
        let src = "fn f() { x.unwrap(); } // xc-allow:\n";
        let f = lint_source("crates/core/src/a.rs", src);
        assert!(rules(&f).contains(&Rule::BareAllow));
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let src = "fn f() {\n    // calls .unwrap() internally\n    let s = \"panic!(boom) .unwrap()\";\n    let r = r#\".expect(nothing)\"#;\n    drop((s, r));\n}\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        let src = "fn f() { m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
        assert!(lint_source("crates/replication/src/a.rs", src).is_empty());
    }

    #[test]
    fn hot_path_lock_flagged_even_with_allow() {
        let src = "fn f() { m.lock().unwrap(); } // xc-allow: trust me\n";
        let f = lint_source("crates/replication/src/a.rs", src);
        assert_eq!(rules(&f), vec![Rule::HotPathLock]);
        // Same pattern in a cold crate with an allow: suppressed.
        assert!(lint_source("crates/chart/src/a.rs", src).is_empty());
    }

    #[test]
    fn lock_expect_on_hot_path_flagged() {
        let src = "fn f() { m.lock().expect(\"poisoned\"); }\n";
        let f = lint_source("crates/telemetry/src/a.rs", src);
        assert!(rules(&f).contains(&Rule::HotPathLock));
    }

    #[test]
    fn gateway_and_alerts_are_hot_path_crates() {
        let src = "fn f() { m.lock().unwrap(); } // xc-allow: trust me\n";
        for path in ["crates/gateway/src/a.rs", "crates/alerts/src/a.rs"] {
            let f = lint_source(path, src);
            assert_eq!(rules(&f), vec![Rule::HotPathLock], "{path}");
        }
    }

    #[test]
    fn rwlock_unwrap_on_hot_path_flagged() {
        let read = "fn f() { fed.read().unwrap(); }\n";
        let write = "fn f() { fed.write().expect(\"poisoned\"); }\n";
        assert!(rules(&lint_source("crates/gateway/src/a.rs", read))
            .contains(&Rule::HotPathLock));
        assert!(rules(&lint_source("crates/gateway/src/a.rs", write))
            .contains(&Rule::HotPathLock));
        // Recovered form stays clean.
        let ok = "fn f() { fed.read().unwrap_or_else(PoisonError::into_inner); }\n";
        assert!(lint_source("crates/gateway/src/a.rs", ok).is_empty());
    }

    #[test]
    fn findings_render_as_json_array() {
        let src = "pub fn f() {\n    let x = maybe().unwrap();\n}\n";
        let f = lint_source("crates/core/src/a.rs", src);
        let json = findings_json(&f);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"rule\":\"no-unwrap\""));
        assert!(json.contains("\"line\":2"));
        assert_eq!(findings_json(&[]), "[]");
    }

    #[test]
    fn untraced_query_in_scope_file_flagged() {
        let src = "pub fn query_instance(&self) -> u32 {\n    let rows = self.scan();\n    rows\n}\n";
        let f = lint_source("crates/core/src/hub.rs", src);
        assert_eq!(rules(&f), vec![Rule::UntracedQuery]);
        // Same function outside the traced files: not R3 scope.
        assert!(lint_source("crates/chart/src/hub.rs", src).is_empty());
    }

    #[test]
    fn traced_query_passes() {
        let src = "pub fn query_instance(&self) -> u32 {\n    let _t = self.telemetry.span(\"hub_query\");\n    self.scan()\n}\n";
        assert!(lint_source("crates/core/src/hub.rs", src).is_empty());
    }

    #[test]
    fn bench_harness_is_r1_exempt_but_not_r2() {
        let src = "pub fn f() { x.expect(\"io\"); }\n";
        assert!(lint_source("crates/bench/src/experiments.rs", src).is_empty());
        let lock = "pub fn f() { m.lock().unwrap(); }\n";
        assert!(lint_source("crates/bench/src/experiments.rs", lock).is_empty());
        // The same exemption does not leak to other crates.
        assert_eq!(
            rules(&lint_source("crates/core/src/a.rs", src)),
            vec![Rule::NoUnwrap]
        );
    }

    #[test]
    fn raw_string_spanning_lines_is_ignored() {
        let src = "fn f() {\n    let q = r#\"\n        panic!(not code) .unwrap()\n    \"#;\n    drop(q);\n}\n";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn nested_test_module_depth_tracking() {
        // A test module containing nested braces must not end the
        // region early.
        let src = "#[cfg(test)]\nmod tests {\n    fn a() {\n        if x {\n            y.unwrap();\n        }\n    }\n}\npub fn b() { z.unwrap(); }\n";
        let f = lint_source("crates/core/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 9);
    }
}

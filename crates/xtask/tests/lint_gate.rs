//! The lint gate, end to end: a seeded workspace with invariant
//! violations must fail, and the real workspace (which CI runs the gate
//! over) must pass.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{find_workspace_root, lint_workspace, Rule};

/// Build a throwaway workspace under the target temp dir. Each test uses
/// its own subdirectory so parallel test threads never collide.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("xtask-lint-gate")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/replication/src")).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    root
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

#[test]
fn seeded_bad_file_fails_the_gate() {
    let root = scratch_workspace("bad");
    write(
        &root,
        "crates/replication/src/worker.rs",
        r#"
pub fn drain(queue: &std::sync::Mutex<Vec<u8>>) -> u8 {
    let first = queue.lock().unwrap().pop().unwrap();
    first
}
"#,
    );
    let findings = lint_workspace(&root).unwrap();
    // One hot-path-lock finding plus no-unwrap findings on the same line.
    assert!(
        findings.iter().any(|f| f.rule == Rule::HotPathLock),
        "expected hot-path-lock in: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == Rule::NoUnwrap),
        "expected no-unwrap in: {findings:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn xc_allow_does_not_excuse_hot_path_locks() {
    let root = scratch_workspace("hotpath");
    write(
        &root,
        "crates/replication/src/worker.rs",
        "pub fn f(m: &std::sync::Mutex<u8>) -> u8 {\n    \
         *m.lock().unwrap() // xc-allow: trying to silence the gate\n}\n",
    );
    let findings = lint_workspace(&root).unwrap();
    assert!(
        findings.iter().any(|f| f.rule == Rule::HotPathLock),
        "hot-path-lock must not be suppressible: {findings:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_seeded_workspace_passes() {
    let root = scratch_workspace("clean");
    write(
        &root,
        "crates/replication/src/worker.rs",
        r#"
pub fn drain(queue: &std::sync::Mutex<Vec<u8>>) -> Option<u8> {
    queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        Some(1u8).unwrap();
    }
}
"#,
    );
    let findings = lint_workspace(&root).unwrap();
    assert!(findings.is_empty(), "unexpected: {findings:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn findings_render_as_json_with_check_parity_shape() {
    // `xtask lint --json` (CI artifact) serializes findings the same way
    // `xdmod-check --json` does: an array of flat objects.
    let root = scratch_workspace("json");
    write(
        &root,
        "crates/replication/src/worker.rs",
        "pub fn f(m: &std::sync::Mutex<u8>) -> u8 {\n    *m.lock().unwrap()\n}\n",
    );
    let findings = lint_workspace(&root).unwrap();
    assert!(!findings.is_empty());
    let json = xtask::findings_json(&findings);
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"rule\":\"hot-path-lock\""), "{json}");
    assert!(
        json.contains("\"path\":\"crates/replication/src/worker.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\":2"), "{json}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn the_real_workspace_passes_the_gate() {
    // CI runs `cargo run -p xtask -- lint`; this test is the same gate
    // from inside the test suite, so a regression fails `cargo test` too.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let findings = lint_workspace(&root).unwrap();
    assert!(
        findings.is_empty(),
        "workspace lint regressions:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! The concurrency-analyzer gate, end to end: seeded workspaces with
//! deadlock patterns must produce the exact diagnostics (codes, paths,
//! lines, witness chains), their clean twins must pass, reasoned
//! `xc-allow` markers must suppress per diagnostic, and the real
//! workspace (which CI gates on) must be analyzer-clean.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{analyze_workspace, find_workspace_root};

/// Build a throwaway workspace under the target temp dir. Each test uses
/// its own subdirectory so parallel test threads never collide.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("xtask-analyze-gate")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    root
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

/// 1-indexed line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> usize {
    src.lines().position(|l| l.contains(needle)).unwrap() + 1
}

/// Two functions taking the same pair of locks in opposite orders.
const INVERTED: &str = r#"
impl Hub {
    pub fn refresh(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(&a, &b);
    }
    pub fn invalidate(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_both(&a, &b);
    }
}
"#;

/// The clean twin: both functions agree on alpha-then-beta.
const CONSISTENT: &str = r#"
impl Hub {
    pub fn refresh(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(&a, &b);
    }
    pub fn invalidate(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(&a, &b);
    }
}
"#;

/// A guard held across a channel send.
const SEND_UNDER_LOCK: &str = r#"
impl Pump {
    pub fn drain(&self) {
        let state = self.state.lock();
        self.tx.send(state.snapshot());
    }
}
"#;

/// The clean twin: the guard dies in an inner scope before the send.
const SEND_AFTER_DROP: &str = r#"
impl Pump {
    pub fn drain(&self) {
        let snap = {
            let state = self.state.lock();
            state.snapshot()
        };
        self.tx.send(snap);
    }
}
"#;

#[test]
fn lock_order_inversion_reports_both_witness_chains() {
    let root = scratch_workspace("inversion");
    write(&root, "crates/core/src/hub.rs", INVERTED);
    let a = analyze_workspace(&root).unwrap();
    assert_eq!(a.diags.len(), 1, "expected one XL0001: {:?}", a.diags);
    let d = &a.diags[0];
    assert_eq!(d.code.ident(), "XL0001");
    assert_eq!(d.path, "crates/core/src/hub.rs");
    // Anchored where the AB witness takes its second lock.
    assert_eq!(d.line, line_of(INVERTED, "let b = self.beta.lock();"));
    assert_eq!(d.notes.len(), 2, "both witness chains: {:?}", d.notes);
    assert!(
        d.notes[0].contains("refresh") && d.notes[0].contains("alpha") && d.notes[0].contains("beta"),
        "AB witness chain: {}",
        d.notes[0]
    );
    assert!(
        d.notes[1].contains("invalidate"),
        "BA witness chain: {}",
        d.notes[1]
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn guard_across_send_is_flagged_at_the_send_site() {
    let root = scratch_workspace("send");
    write(&root, "crates/gateway/src/pump.rs", SEND_UNDER_LOCK);
    let a = analyze_workspace(&root).unwrap();
    assert_eq!(a.diags.len(), 1, "expected one XL0002: {:?}", a.diags);
    let d = &a.diags[0];
    assert_eq!(d.code.ident(), "XL0002");
    assert_eq!(d.path, "crates/gateway/src/pump.rs");
    assert_eq!(d.line, line_of(SEND_UNDER_LOCK, ".send("));
    assert!(
        d.notes[0].contains("gateway::Pump::state"),
        "held-guard note names the lock: {}",
        d.notes[0]
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_twins_pass_with_nothing_suppressed() {
    let root = scratch_workspace("clean");
    write(&root, "crates/core/src/hub.rs", CONSISTENT);
    write(&root, "crates/gateway/src/pump.rs", SEND_AFTER_DROP);
    let a = analyze_workspace(&root).unwrap();
    assert!(a.diags.is_empty(), "unexpected: {:?}", a.diags);
    assert_eq!(a.suppressed, 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cross_crate_composition_and_unbounded_channel_are_flagged() {
    let root = scratch_workspace("composition");
    write(
        &root,
        "crates/gateway/src/app.rs",
        r#"
impl App {
    pub fn tick(&self) {
        let cfg = self.cfg.lock();
        rebuild_watermarks(&cfg);
    }
    pub fn wire(&self) {
        let (tx, rx) = channel();
        use_pair(tx, rx);
    }
}
"#,
    );
    write(
        &root,
        "crates/core/src/hub.rs",
        r#"
pub fn rebuild_watermarks(cfg: &Config) {
    let db = GLOBAL.db.lock();
    db.touch(cfg);
}
"#,
    );
    let a = analyze_workspace(&root).unwrap();
    let codes: Vec<&str> = a.diags.iter().map(|d| d.code.ident()).collect();
    assert_eq!(codes, vec!["XL0003", "XL0004"], "{:?}", a.diags);
    let xl3 = &a.diags[0];
    assert_eq!(xl3.path, "crates/gateway/src/app.rs");
    assert!(
        xl3.message.contains("crate `core`") && xl3.message.contains("rebuild_watermarks"),
        "cross-crate message: {}",
        xl3.message
    );
    assert!(
        xl3.notes[1].contains("crates/core/src/hub.rs:3"),
        "callee acquisition site: {:?}",
        xl3.notes
    );
    let xl4 = &a.diags[1];
    assert_eq!(xl4.path, "crates/gateway/src/app.rs");
    assert!(xl4.message.contains("sync_channel"), "{}", xl4.message);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn reasoned_xc_allow_suppresses_each_diagnostic() {
    let root = scratch_workspace("suppress");
    // XL0001: allowing ONE witness anchor suppresses the pair finding.
    write(
        &root,
        "crates/core/src/hub.rs",
        r#"
impl Hub {
    pub fn refresh(&self) {
        let a = self.alpha.lock();
        // xc-allow: alpha-then-beta is the documented order; invalidate is startup-only
        let b = self.beta.lock();
        use_both(&a, &b);
    }
    pub fn invalidate(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        use_both(&a, &b);
    }
}
"#,
    );
    // XL0002 and XL0004, one marker each.
    write(
        &root,
        "crates/gateway/src/pump.rs",
        r#"
impl Pump {
    pub fn drain(&self) {
        let state = self.state.lock();
        // xc-allow: rendezvous channel, receiver is the same struct's test double
        self.tx.send(state.snapshot());
    }
    pub fn wire(&self) {
        let (tx, rx) = channel(); // xc-allow: debug tap, drops are acceptable
        use_pair(tx, rx);
    }
}
"#,
    );
    let a = analyze_workspace(&root).unwrap();
    assert!(a.diags.is_empty(), "all suppressed: {:?}", a.diags);
    assert_eq!(a.suppressed, 3);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_rendering_has_check_parity_shape() {
    let root = scratch_workspace("json");
    write(&root, "crates/core/src/hub.rs", INVERTED);
    let a = analyze_workspace(&root).unwrap();
    let json = a.render_json();
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"code\":\"XL0001\""), "{json}");
    assert!(json.contains("\"path\":\"crates/core/src/hub.rs\""), "{json}");
    assert!(json.contains("\"notes\":["), "{json}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn the_real_workspace_is_analyzer_clean() {
    // CI runs `cargo run -p xtask -- analyze`; this test is the same
    // gate from inside the test suite, so a regression fails
    // `cargo test` too. Deliberate patterns carry reasoned xc-allow
    // markers and count as suppressed, not clean-by-accident.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let a = analyze_workspace(&root).unwrap();
    assert!(
        a.diags.is_empty(),
        "workspace concurrency regressions:\n{}",
        a.diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("")
    );
}

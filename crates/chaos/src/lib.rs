//! `xdmod-chaos` — deterministic, seeded fault injection for the
//! federation stack.
//!
//! A production federation must survive flaky satellites: transient I/O
//! errors, stalled transports, truncated or bit-flipped binlog tails
//! after a crash, and links that die permanently. This crate provides
//! the *adversary*: a [`FaultPlan`] describes which [`FaultKind`]s fire
//! at which [`FaultPoint`]s (on an op-count schedule, every Nth op, or
//! with a probability), and [`FaultPlan::injector`] compiles it into a
//! [`FaultInjector`] whose entire behaviour — including every
//! probabilistic draw — is reproducible from a single `u64` seed.
//!
//! The injector is a cheap-clone handle (an `Arc`), `Send + Sync`, and
//! is consulted from the warehouse binlog reader, the replication
//! transport, and the schema-apply path. When the consuming call sites
//! are driven in a deterministic order (single-threaded polling, as the
//! chaos integration tests do), two runs with the same seed and plan
//! produce a byte-identical fault schedule ([`FaultInjector::schedule_text`])
//! and therefore identical post-recovery state.
//!
//! ```
//! use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
//!
//! let plan = FaultPlan::new()
//!     .with(FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 3).for_target("link-a"))
//!     .with(FaultSpec::at_ops(FaultPoint::Transport, FaultKind::LinkDown, &[7]).for_target("link-c"));
//! let injector = plan.injector(42);
//! assert_eq!(injector.next_fault(FaultPoint::Transport, "link-a"), None); // op 1
//! assert_eq!(injector.next_fault(FaultPoint::Transport, "link-a"), None); // op 2
//! assert_eq!(
//!     injector.next_fault(FaultPoint::Transport, "link-a"),
//!     Some(FaultKind::Transient) // op 3
//! );
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// A small, fast, seedable PRNG (SplitMix64). Not cryptographic — the
/// point is *reproducibility*: the same seed always yields the same
/// stream, on every platform, with no global state.
///
/// Also used by the replication retry policy for decorrelated jitter,
/// so that backoff sequences are reproducible in tests.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Create a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open range `[lo, hi)`. Returns `lo`
    /// when the range is empty. (Modulo bias is irrelevant at chaos
    /// scale and keeps the implementation obviously portable.)
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

/// Where in the stack a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultPoint {
    /// Reading the source warehouse's binary log (`Database::binlog_after`).
    BinlogRead,
    /// The replication link's transport (`Replicator::poll`).
    Transport,
    /// Applying a replicated event to the target (`Database::apply_event`).
    Apply,
    /// The gateway's accept loop taking a connection off the listener.
    Accept,
    /// The gateway reading a request off an accepted socket.
    SocketRead,
    /// The disk storage backend appending a frame to the active binlog
    /// segment file (`DiskBackend::append`).
    SegmentAppend,
    /// The disk storage backend writing a snapshot file
    /// (`DiskBackend::write_snapshot`).
    SnapshotWrite,
    /// The paging engine spilling a cold page to its per-shard spill file
    /// (`SpillFile::write`).
    SpillWrite,
    /// The paging engine reading a spilled page back in on the query path
    /// (`SpillFile::read`).
    SpillRead,
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultPoint::BinlogRead => "binlog-read",
            FaultPoint::Transport => "transport",
            FaultPoint::Apply => "apply",
            FaultPoint::Accept => "accept",
            FaultPoint::SocketRead => "socket-read",
            FaultPoint::SegmentAppend => "segment-append",
            FaultPoint::SnapshotWrite => "snapshot-write",
            FaultPoint::SpillWrite => "spill-write",
            FaultPoint::SpillRead => "spill-read",
        })
    }
}

/// What kind of fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O error: the operation fails once and a retry may
    /// succeed.
    Transient,
    /// The operation stalls for the given number of milliseconds, then
    /// proceeds normally.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Permanent link loss: once fired for a target, *every* subsequent
    /// consultation for that target reports the link down.
    LinkDown,
    /// Flip one byte inside the last binlog frame (simulated disk
    /// corruption); the next CRC-checked read detects it.
    CorruptTailByte,
    /// Chop raw bytes off the binlog tail (simulated torn write /
    /// crash mid-append).
    TruncateTail {
        /// How many raw bytes to remove from the end of the log.
        bytes: u64,
    },
    /// The write appears to succeed but the fsync is silently dropped:
    /// the whole record vanishes on "crash" (contrast with
    /// [`FaultKind::TruncateTail`], which leaves a partial record).
    DropFsync,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => f.write_str("transient"),
            FaultKind::Stall { millis } => write!(f, "stall({millis}ms)"),
            FaultKind::LinkDown => f.write_str("link-down"),
            FaultKind::CorruptTailByte => f.write_str("corrupt-tail-byte"),
            FaultKind::TruncateTail { bytes } => write!(f, "truncate-tail({bytes}B)"),
            FaultKind::DropFsync => f.write_str("drop-fsync"),
        }
    }
}

/// When a [`FaultSpec`] fires, relative to the per-`(point, target)`
/// operation counter (1-based).
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Fire exactly at these operation counts.
    AtOps(Vec<u64>),
    /// Fire on every Nth operation (`count % n == 0`). `n == 0` never
    /// fires.
    EveryNth(u64),
    /// Fire with this probability on each operation, drawn from the
    /// injector's seeded RNG.
    WithProbability(f64),
}

/// One fault rule: a kind, an injection point, a trigger, and optional
/// target/budget restrictions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    kind: FaultKind,
    point: FaultPoint,
    trigger: Trigger,
    target: Option<String>,
    budget: Option<u64>,
}

impl FaultSpec {
    /// Fire `kind` at `point` exactly at the given (1-based) op counts.
    pub fn at_ops(point: FaultPoint, kind: FaultKind, ops: &[u64]) -> Self {
        Self {
            kind,
            point,
            trigger: Trigger::AtOps(ops.to_vec()),
            target: None,
            budget: None,
        }
    }

    /// Fire `kind` at `point` on every `n`th op.
    pub fn every(point: FaultPoint, kind: FaultKind, n: u64) -> Self {
        Self {
            kind,
            point,
            trigger: Trigger::EveryNth(n),
            target: None,
            budget: None,
        }
    }

    /// Fire `kind` at `point` with probability `p` per op.
    pub fn with_probability(point: FaultPoint, kind: FaultKind, p: f64) -> Self {
        Self {
            kind,
            point,
            trigger: Trigger::WithProbability(p),
            target: None,
            budget: None,
        }
    }

    /// Restrict this spec to one target label (e.g. a link name).
    /// Unrestricted specs match every target.
    pub fn for_target(mut self, target: impl Into<String>) -> Self {
        self.target = Some(target.into());
        self
    }

    /// Cap the total number of times this spec may fire.
    pub fn with_budget(mut self, n: u64) -> Self {
        self.budget = Some(n);
        self
    }

    /// The fault this spec injects.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The injection point this spec applies to.
    pub fn point(&self) -> FaultPoint {
        self.point
    }
}

/// A declarative set of [`FaultSpec`]s. Compile into a live injector
/// with [`FaultPlan::injector`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add a spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Add a spec in place.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// The specs in evaluation order (first match wins per op).
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Compile the plan into a live, thread-safe injector whose entire
    /// behaviour is reproducible from `seed`.
    pub fn injector(&self, seed: u64) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                state: Mutex::new(InjectorState {
                    rng: DeterministicRng::new(seed),
                    specs: self.specs.iter().cloned().map(|s| (s, 0)).collect(),
                    counts: BTreeMap::new(),
                    down: BTreeSet::new(),
                    log: Vec::new(),
                }),
            }),
        }
    }
}

/// One fired fault, as recorded in the injector's schedule log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// 1-based global sequence number of this firing.
    pub seq: u64,
    /// The per-`(point, target)` operation count at which it fired.
    pub op: u64,
    /// Where it fired.
    pub point: FaultPoint,
    /// The target label the consultation carried.
    pub target: String,
    /// What fired.
    pub kind: FaultKind,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}[{}] op {}: {}",
            self.seq, self.point, self.target, self.op, self.kind
        )
    }
}

struct InjectorInner {
    state: Mutex<InjectorState>,
}

struct InjectorState {
    rng: DeterministicRng,
    /// Each spec paired with its fired-so-far count (for budgets).
    specs: Vec<(FaultSpec, u64)>,
    /// Per-`(point, target)` operation counters.
    counts: BTreeMap<(FaultPoint, String), u64>,
    /// Targets for which a `LinkDown` has fired (permanent).
    down: BTreeSet<String>,
    /// Every fault fired, in order.
    log: Vec<FaultRecord>,
}

/// A live fault injector: cheap to clone (`Arc` handle), `Send + Sync`,
/// consulted by the warehouse/replication layers via
/// [`FaultInjector::next_fault`].
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.lock();
        f.debug_struct("FaultInjector")
            .field("fired", &state.log.len())
            .field("down", &state.down)
            .finish()
    }
}

impl FaultInjector {
    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        // The injector's state stays valid under interruption (counters
        // and a log), so poisoning is recovered, never propagated.
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Consult the injector at an injection point. Increments the
    /// `(point, target)` op counter and returns the fault to inject for
    /// this operation, if any. Once a [`FaultKind::LinkDown`] has fired
    /// for a target, every later consultation for that target returns
    /// `LinkDown` (without advancing counters or extending the log, so
    /// schedules stay finite and comparable).
    pub fn next_fault(&self, point: FaultPoint, target: &str) -> Option<FaultKind> {
        let mut state = self.lock();
        if state.down.contains(target) {
            return Some(FaultKind::LinkDown);
        }
        let count = state
            .counts
            .entry((point, target.to_owned()))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let op = *count;
        for idx in 0..state.specs.len() {
            let (spec, fired) = &state.specs[idx];
            let fired = *fired;
            if spec.point != point {
                continue;
            }
            if let Some(t) = &spec.target {
                if t != target {
                    continue;
                }
            }
            if spec.budget.is_some_and(|b| fired >= b) {
                continue;
            }
            let hit = match &spec.trigger {
                Trigger::AtOps(ops) => ops.contains(&op),
                Trigger::EveryNth(n) => *n > 0 && op % *n == 0,
                Trigger::WithProbability(p) => {
                    let p = *p;
                    state.rng.next_f64() < p
                }
            };
            if hit {
                let kind = state.specs[idx].0.kind;
                state.specs[idx].1 += 1;
                let seq = state.log.len() as u64 + 1;
                state.log.push(FaultRecord {
                    seq,
                    op,
                    point,
                    target: target.to_owned(),
                    kind,
                });
                if kind == FaultKind::LinkDown {
                    state.down.insert(target.to_owned());
                }
                return Some(kind);
            }
        }
        None
    }

    /// Whether a permanent `LinkDown` has fired for `target`.
    pub fn is_down(&self, target: &str) -> bool {
        self.lock().down.contains(target)
    }

    /// How many times `(point, target)` has been consulted.
    pub fn op_count(&self, point: FaultPoint, target: &str) -> u64 {
        self.lock()
            .counts
            .get(&(point, target.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Every fault fired so far, in firing order.
    pub fn schedule(&self) -> Vec<FaultRecord> {
        self.lock().log.clone()
    }

    /// The fired-fault schedule rendered one record per line — the
    /// byte-identical artifact two same-seed runs are compared on.
    pub fn schedule_text(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for record in &state.log {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        let mut c = DeterministicRng::new(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn rng_f64_stays_in_unit_interval() {
        let mut rng = DeterministicRng::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_empty_range() {
        let mut rng = DeterministicRng::new(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
        assert_eq!(rng.gen_range(5, 5), 5);
        assert_eq!(rng.gen_range(9, 5), 9);
    }

    #[test]
    fn at_ops_fires_exactly_on_schedule() {
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::Transient,
            &[2, 4],
        ));
        let inj = plan.injector(0);
        let fired: Vec<bool> = (0..5)
            .map(|_| inj.next_fault(FaultPoint::Transport, "x").is_some())
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
    }

    #[test]
    fn every_nth_fires_periodically_and_zero_never_fires() {
        let plan = FaultPlan::new()
            .with(FaultSpec::every(FaultPoint::Apply, FaultKind::Transient, 3))
            .with(FaultSpec::every(
                FaultPoint::BinlogRead,
                FaultKind::Transient,
                0,
            ));
        let inj = plan.injector(0);
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.next_fault(FaultPoint::Apply, "x").is_some())
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);
        for _ in 0..10 {
            assert_eq!(inj.next_fault(FaultPoint::BinlogRead, "x"), None);
        }
    }

    #[test]
    fn per_point_and_per_target_counters_are_independent() {
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::Transient,
            &[1],
        ));
        let inj = plan.injector(0);
        // Consultations at another point do not advance transport's counter.
        assert_eq!(inj.next_fault(FaultPoint::Apply, "a"), None);
        assert_eq!(
            inj.next_fault(FaultPoint::Transport, "a"),
            Some(FaultKind::Transient)
        );
        // A different target has its own op 1.
        assert_eq!(
            inj.next_fault(FaultPoint::Transport, "b"),
            Some(FaultKind::Transient)
        );
        assert_eq!(inj.op_count(FaultPoint::Transport, "a"), 1);
        assert_eq!(inj.op_count(FaultPoint::Transport, "b"), 1);
    }

    #[test]
    fn targeting_restricts_to_one_label() {
        let plan = FaultPlan::new()
            .with(FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 1).for_target("a"));
        let inj = plan.injector(0);
        assert!(inj.next_fault(FaultPoint::Transport, "a").is_some());
        assert!(inj.next_fault(FaultPoint::Transport, "b").is_none());
    }

    #[test]
    fn budget_caps_total_firings() {
        let plan = FaultPlan::new()
            .with(FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 1).with_budget(2));
        let inj = plan.injector(0);
        let fired: Vec<bool> = (0..5)
            .map(|_| inj.next_fault(FaultPoint::Transport, "x").is_some())
            .collect();
        assert_eq!(fired, vec![true, true, false, false, false]);
    }

    #[test]
    fn link_down_is_permanent_but_logged_once() {
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::LinkDown,
            &[2],
        ));
        let inj = plan.injector(0);
        assert_eq!(inj.next_fault(FaultPoint::Transport, "c"), None);
        assert_eq!(
            inj.next_fault(FaultPoint::Transport, "c"),
            Some(FaultKind::LinkDown)
        );
        assert!(inj.is_down("c"));
        // Every later consultation reports down, at any point…
        assert_eq!(
            inj.next_fault(FaultPoint::BinlogRead, "c"),
            Some(FaultKind::LinkDown)
        );
        // …but the schedule records the loss exactly once.
        assert_eq!(inj.schedule().len(), 1);
        assert!(!inj.is_down("a"));
    }

    #[test]
    fn probability_draws_are_seed_deterministic() {
        let plan = FaultPlan::new().with(FaultSpec::with_probability(
            FaultPoint::Transport,
            FaultKind::Transient,
            0.3,
        ));
        let drive = |seed: u64| {
            let inj = plan.injector(seed);
            for _ in 0..200 {
                inj.next_fault(FaultPoint::Transport, "x");
            }
            inj.schedule_text()
        };
        assert_eq!(drive(42), drive(42));
        assert_ne!(drive(42), drive(43));
        // Sanity: p=0.3 over 200 ops fires a plausible number of times.
        let fired = drive(42).lines().count();
        assert!((20..=120).contains(&fired), "fired {fired} times");
    }

    #[test]
    fn schedule_text_is_byte_identical_across_identical_runs() {
        let plan = FaultPlan::new()
            .with(FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 2).for_target("a"))
            .with(
                FaultSpec::at_ops(FaultPoint::BinlogRead, FaultKind::CorruptTailByte, &[3])
                    .for_target("b"),
            )
            .with(FaultSpec::with_probability(
                FaultPoint::Apply,
                FaultKind::Stall { millis: 1 },
                0.5,
            ));
        let drive = |()| {
            let inj = plan.injector(1337);
            for _ in 0..50 {
                inj.next_fault(FaultPoint::Transport, "a");
                inj.next_fault(FaultPoint::BinlogRead, "b");
                inj.next_fault(FaultPoint::Apply, "a");
            }
            inj.schedule_text()
        };
        let one = drive(());
        let two = drive(());
        assert_eq!(one, two);
        assert!(!one.is_empty());
        // Records render with point, target, op and kind.
        assert!(one
            .lines()
            .next()
            .is_some_and(|l| l.contains("[") && l.contains("op ")));
    }

    #[test]
    fn first_matching_spec_wins() {
        let plan = FaultPlan::new()
            .with(FaultSpec::at_ops(
                FaultPoint::Transport,
                FaultKind::Transient,
                &[1],
            ))
            .with(FaultSpec::at_ops(
                FaultPoint::Transport,
                FaultKind::LinkDown,
                &[1],
            ));
        let inj = plan.injector(0);
        assert_eq!(
            inj.next_fault(FaultPoint::Transport, "x"),
            Some(FaultKind::Transient)
        );
        assert!(!inj.is_down("x"));
    }

    #[test]
    fn injector_clone_shares_state() {
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::Transient,
            &[2],
        ));
        let inj = plan.injector(0);
        let other = inj.clone();
        assert_eq!(inj.next_fault(FaultPoint::Transport, "x"), None);
        assert_eq!(
            other.next_fault(FaultPoint::Transport, "x"),
            Some(FaultKind::Transient)
        );
    }

    #[test]
    fn display_renderings_are_stable() {
        assert_eq!(FaultKind::Transient.to_string(), "transient");
        assert_eq!(FaultKind::Stall { millis: 5 }.to_string(), "stall(5ms)");
        assert_eq!(FaultKind::LinkDown.to_string(), "link-down");
        assert_eq!(FaultKind::CorruptTailByte.to_string(), "corrupt-tail-byte");
        assert_eq!(
            FaultKind::TruncateTail { bytes: 7 }.to_string(),
            "truncate-tail(7B)"
        );
        assert_eq!(FaultKind::DropFsync.to_string(), "drop-fsync");
        assert_eq!(FaultPoint::BinlogRead.to_string(), "binlog-read");
        assert_eq!(FaultPoint::Accept.to_string(), "accept");
        assert_eq!(FaultPoint::SocketRead.to_string(), "socket-read");
        assert_eq!(FaultPoint::SegmentAppend.to_string(), "segment-append");
        assert_eq!(FaultPoint::SnapshotWrite.to_string(), "snapshot-write");
        assert_eq!(FaultPoint::SpillWrite.to_string(), "spill-write");
        assert_eq!(FaultPoint::SpillRead.to_string(), "spill-read");
        let record = FaultRecord {
            seq: 3,
            op: 17,
            point: FaultPoint::Transport,
            target: "link-x".into(),
            kind: FaultKind::Transient,
        };
        assert_eq!(record.to_string(), "#3 transport[link-x] op 17: transient");
    }

    #[test]
    fn injector_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultInjector>();
    }
}

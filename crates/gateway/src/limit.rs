//! Admission control: per-client token buckets plus a global in-flight
//! gate.
//!
//! The serving tier sits in front of the hub's aggregation locks; an
//! unthrottled burst of federated queries from one dashboard would queue
//! every worker behind the warehouse and starve the other members'
//! operators. Two independent valves:
//!
//! - [`RateLimiter`] — a token bucket per client address. Bursts up to
//!   the bucket capacity pass; beyond that the client gets 429 with a
//!   `Retry-After` telling it when one token will exist again.
//! - [`AdmissionGate`] — a global cap on concurrently-served requests.
//!   When the gateway is saturated, new arrivals get an immediate 503
//!   instead of a connection that hangs until timeout.
//!
//! Both are time-injected (caller passes elapsed milliseconds) so tests
//! and the chaos soak are deterministic. The bucket arithmetic itself
//! lives in [`xdmod_alerts::TokenBucket`] — one milli-token scheme
//! shared between client rate limiting here and the alert engine's
//! notification gating, so both layers throttle identically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use xdmod_alerts::{TakeOutcome, TokenBucket};

/// Lock that survives a poisoned mutex: a panicked worker must not wedge
/// admission control for every other connection.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Outcome of a rate-limit check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Under budget; a token was consumed.
    Allowed,
    /// Over budget; retry after this many whole seconds.
    Limited {
        /// Seconds until one token is refilled (at least 1).
        retry_after_secs: u64,
    },
}

/// Per-client token buckets. One instance serves the whole gateway;
/// clients are keyed by address string.
pub struct RateLimiter {
    capacity: u64,
    refill_per_sec: u64,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl RateLimiter {
    /// Buckets hold `capacity` tokens and refill at `refill_per_sec`
    /// tokens per second (both at least 1).
    pub fn new(capacity: u64, refill_per_sec: u64) -> Self {
        RateLimiter {
            capacity,
            refill_per_sec,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Try to take one token for `client` at `now_ms` milliseconds since
    /// gateway start.
    pub fn check(&self, client: &str, now_ms: u64) -> RateDecision {
        let mut buckets = lock(&self.buckets);
        // `new_at`, not `new`: a client first seen at now_ms must not be
        // credited refill for the time before it existed.
        let bucket = buckets
            .entry(client.to_owned())
            .or_insert_with(|| TokenBucket::new_at(self.capacity, self.refill_per_sec, now_ms));
        match bucket.try_take(now_ms) {
            TakeOutcome::Taken => RateDecision::Allowed,
            TakeOutcome::Empty { retry_after_secs } => RateDecision::Limited { retry_after_secs },
        }
    }

    /// Clients currently tracked (test/ops visibility).
    pub fn tracked_clients(&self) -> usize {
        lock(&self.buckets).len()
    }
}

/// RAII slot in the global in-flight gate; dropping it frees the slot.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::Release);
    }
}

/// Global cap on concurrently-served requests.
pub struct AdmissionGate {
    max_inflight: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// Gate admitting at most `max_inflight` concurrent requests.
    pub fn new(max_inflight: usize) -> Self {
        AdmissionGate {
            max_inflight: max_inflight.max(1),
            inflight: AtomicUsize::new(0),
        }
    }

    /// Take a slot, or `None` when saturated (caller answers 503).
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.max_inflight {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(Permit { gate: self }),
                Err(actual) => current = actual,
            }
        }
    }

    /// Requests currently holding a slot.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_allows_bursts_then_limits() {
        let limiter = RateLimiter::new(3, 1);
        for _ in 0..3 {
            assert_eq!(limiter.check("10.0.0.1", 0), RateDecision::Allowed);
        }
        let RateDecision::Limited { retry_after_secs } = limiter.check("10.0.0.1", 0) else {
            panic!("fourth request in the burst must be limited");
        };
        assert_eq!(retry_after_secs, 1);
        // Another client has its own bucket.
        assert_eq!(limiter.check("10.0.0.2", 0), RateDecision::Allowed);
        assert_eq!(limiter.tracked_clients(), 2);
    }

    #[test]
    fn bucket_refills_over_time_up_to_capacity() {
        let limiter = RateLimiter::new(2, 2); // 2 tokens/sec
        assert_eq!(limiter.check("c", 0), RateDecision::Allowed);
        assert_eq!(limiter.check("c", 0), RateDecision::Allowed);
        assert!(matches!(
            limiter.check("c", 0),
            RateDecision::Limited { .. }
        ));
        // 500 ms refills one token at 2/sec.
        assert_eq!(limiter.check("c", 500), RateDecision::Allowed);
        assert!(matches!(
            limiter.check("c", 500),
            RateDecision::Limited { .. }
        ));
        // A long idle period refills to capacity, not beyond.
        assert_eq!(limiter.check("c", 60_000), RateDecision::Allowed);
        assert_eq!(limiter.check("c", 60_000), RateDecision::Allowed);
        assert!(matches!(
            limiter.check("c", 60_000),
            RateDecision::Limited { .. }
        ));
    }

    #[test]
    fn retry_after_reflects_refill_rate() {
        let limiter = RateLimiter::new(1, 1);
        assert_eq!(limiter.check("c", 0), RateDecision::Allowed);
        assert_eq!(
            limiter.check("c", 0),
            RateDecision::Limited {
                retry_after_secs: 1
            }
        );
    }

    #[test]
    fn gate_caps_inflight_and_frees_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().map(|_p| ()).is_some();
        assert!(a);
        // Hold two permits, third is refused.
        let p1 = gate.try_acquire();
        let p2 = gate.try_acquire();
        assert!(p1.is_some() && p2.is_some());
        assert!(gate.try_acquire().is_none());
        assert_eq!(gate.inflight(), 2);
        drop(p1);
        assert_eq!(gate.inflight(), 1);
        assert!(gate.try_acquire().is_some());
        drop(p2);
        assert_eq!(gate.inflight(), 0);
    }
}

//! `gateway-smoke`: stand up a three-satellite federation behind the
//! gateway and curl every endpoint over real TCP.
//!
//! CI runs this as the cheap end-to-end gate: every endpoint must answer
//! with its documented status code, the ETag revalidation loop must
//! produce a 304, and drain must turn new requests into 503s — all with
//! zero worker panics. Exit code 0 means the serving tier works.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, RwLock};

use xdmod_auth::{Role, User};
use xdmod_core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod_gateway::{serve, GatewayConfig, SESSION_COOKIE};
use xdmod_sim::{ClusterSim, ResourceProfile};

fn satellite(name: &str, resource: &str, sim_seed: u64) -> Result<XdmodInstance, String> {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.0);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 48.0, 1.0), sim_seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
        .map_err(|e| format!("ingest {name}: {e}"))?;
    Ok(inst)
}

/// One raw HTTP exchange: connect, send, read to EOF, split the status
/// code, headers, and body out of the response.
fn exchange(addr: SocketAddr, raw: &str) -> Result<(u16, String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("unparseable response: {response:?}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body split in {response:?}"))?;
    Ok((status, head.to_owned(), body.to_owned()))
}

fn get(addr: SocketAddr, target: &str, headers: &str) -> Result<(u16, String, String), String> {
    exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: smoke\r\n{headers}\r\n"),
    )
}

fn expect(name: &str, got: u16, want: u16, context: &str) -> Result<(), String> {
    if got == want {
        println!("ok - {name} -> {got}");
        Ok(())
    } else {
        Err(format!(
            "FAIL - {name}: expected {want}, got {got}: {context}"
        ))
    }
}

fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
    })
}

fn main() -> Result<(), String> {
    let x = satellite("site-x", "res-x", 7)?;
    let y = satellite("site-y", "res-y", 8)?;
    let z = satellite("site-z", "res-z", 9)?;
    let mut fed = Federation::new(FederationHub::new("hub"));
    for inst in [&x, &y, &z] {
        fed.join_tight(inst, FederationConfig::default())
            .map_err(|e| format!("join: {e}"))?;
    }
    fed.sync().map_err(|e| format!("sync: {e}"))?;
    fed.hub_mut().auth_mut().enroll(
        User::member("ops", "ops@hub.example", "hub.example").with_role(Role::CenterStaff),
        Some("smoke-pw"),
    );

    let fed = Arc::new(RwLock::new(fed));
    let handle = serve(Arc::clone(&fed), GatewayConfig::default(), None)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr();
    println!("# gateway listening on {addr}");

    let (status, _, body) = get(addr, "/health", "")?;
    expect("GET /health", status, 200, &body)?;

    let (status, _, body) = get(addr, "/realms", "")?;
    expect("GET /realms", status, 200, &body)?;
    if !body.contains("\"site-x\"") || !body.contains("\"jobs\"") {
        return Err(format!(
            "FAIL - /realms body missing members/realms: {body}"
        ));
    }

    let (status, _, body) = get(addr, "/ops", "")?;
    expect("GET /ops", status, 200, &body)?;

    let (status, _, body) = get(addr, "/query?realm=jobs&metric=job_count", "")?;
    expect("GET /query without a session", status, 401, &body)?;

    let creds = "{\"username\":\"ops\",\"password\":\"smoke-pw\"}";
    let login = format!(
        "POST /login HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n{creds}",
        creds.len()
    );
    let (status, head, body) = exchange(addr, &login)?;
    expect("POST /login", status, 200, &body)?;
    let cookie = header_value(&head, "set-cookie")
        .and_then(|c| c.split(';').next().map(str::to_owned))
        .ok_or("FAIL - login did not set a session cookie")?;
    if !cookie.starts_with(SESSION_COOKIE) {
        return Err(format!("FAIL - unexpected cookie {cookie:?}"));
    }
    let auth = format!("Cookie: {cookie}\r\n");

    let target = "/query?realm=jobs&metric=job_count&dimension=resource&view=aggregate";
    let (status, head, body) = get(addr, target, &auth)?;
    expect("GET /query (cold)", status, 200, &body)?;
    let etag = header_value(&head, "etag").ok_or("FAIL - query response had no ETag")?;

    let revalidate = format!("{auth}If-None-Match: {etag}\r\n");
    let (status, _, body) = get(addr, target, &revalidate)?;
    expect("GET /query (revalidated)", status, 304, &body)?;

    let (status, _, body) = get(addr, "/query?realm=marbles&metric=job_count", &auth)?;
    expect("GET /query bad realm", status, 400, &body)?;

    let (status, _, body) = get(addr, "/metrics", "")?;
    expect("GET /metrics", status, 200, &body)?;
    for needle in [
        "gateway_http_requests_total",
        "gateway_http_304_total",
        "gateway_connections_total",
    ] {
        if !body.contains(needle) {
            return Err(format!("FAIL - /metrics missing {needle}"));
        }
    }

    handle.drain();
    let (status, _, body) = get(addr, "/ops", "")?;
    expect("GET /ops while draining", status, 503, &body)?;
    let (status, _, body) = get(addr, "/health", "")?;
    expect("GET /health while draining", status, 200, &body)?;

    let panics = handle.worker_panics();
    handle.shutdown();
    if panics != 0 {
        return Err(format!("FAIL - {panics} worker panic(s)"));
    }
    println!("gateway smoke: all endpoints answered with documented statuses");
    Ok(())
}

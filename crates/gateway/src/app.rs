//! The application layer: routing, sessions, authorization, and the
//! cache-aware query endpoint.
//!
//! [`App::handle`] is a pure function from a parsed [`Request`] to a
//! [`Response`] — the TCP server (see [`crate::server`]) feeds it, but
//! tests can drive the whole routing/auth/rate-limit surface without a
//! socket. One invariant above all: **no client input reaches a panic**.
//! Every malformed parameter is a 400, every auth failure a 401/403,
//! every capacity decision a 429/503 with `Retry-After`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use xdmod_auth::{parse_token, Role, Session};
use xdmod_core::{DrainNotice, Federation, QueryDescriptor};
use xdmod_realms::RealmKind;
use xdmod_telemetry::MetricsRegistry;

use crate::config::GatewayConfig;
use crate::etag::{format_etag, if_none_match};
use crate::http::{json_string, Request, Response};
use crate::limit::{AdmissionGate, RateDecision, RateLimiter};

/// The session cookie name.
pub const SESSION_COOKIE: &str = "xdmod_session";

/// Shared serving state: the federation plus every admission valve.
pub struct App {
    fed: Arc<RwLock<Federation>>,
    drain: DrainNotice,
    telemetry: MetricsRegistry,
    limiter: RateLimiter,
    gate: AdmissionGate,
    draining: AtomicBool,
}

impl App {
    /// Build the application layer over a shared federation. The drain
    /// notice and telemetry registry are captured from the federation so
    /// gateway metrics land next to hub metrics in one exposition.
    pub fn new(fed: Arc<RwLock<Federation>>, config: &GatewayConfig) -> Arc<Self> {
        let (drain, telemetry) = {
            let fed = fed.read().unwrap_or_else(PoisonError::into_inner);
            (fed.drain_notice(), fed.hub().telemetry().clone())
        };
        Arc::new(App {
            fed,
            drain,
            telemetry,
            limiter: RateLimiter::new(config.rate_capacity, config.rate_refill_per_sec),
            gate: AdmissionGate::new(config.max_inflight),
            draining: AtomicBool::new(false),
        })
    }

    /// The registry gateway metrics are published on.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Enter graceful drain: every subsequent request is refused with
    /// 503; requests already in flight complete normally.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Serve one request. `client` is the peer address (rate-limit key);
    /// `now_ms` is milliseconds since gateway start (rate-limit clock).
    pub fn handle(&self, req: &Request, client: &str, now_ms: u64) -> Response {
        let endpoint = endpoint_label(&req.path);
        self.telemetry
            .gauge("gateway_inflight_requests", &[])
            .set(self.gate.inflight() as f64);
        let span = self
            .telemetry
            .span("gateway_http_request_seconds", &[("endpoint", endpoint)]);
        let response = self.admit_and_route(req, client, now_ms, endpoint);
        span.finish();
        let status = response.status.to_string();
        self.telemetry
            .counter(
                "gateway_http_requests_total",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        match response.status {
            429 => self.telemetry.counter("gateway_http_429_total", &[]).inc(),
            304 => self.telemetry.counter("gateway_http_304_total", &[]).inc(),
            _ => {}
        }
        response
    }

    fn admit_and_route(
        &self,
        req: &Request,
        client: &str,
        now_ms: u64,
        endpoint: &str,
    ) -> Response {
        // Observability endpoints bypass every valve: an operator must be
        // able to see a saturated or draining gateway.
        let exempt = matches!(endpoint, "/health" | "/metrics");
        if !exempt {
            if self.is_draining() {
                return Response::error(503, "gateway is draining").with_header("Retry-After", "5");
            }
            if let RateDecision::Limited { retry_after_secs } = self.limiter.check(client, now_ms) {
                return Response::error(429, "rate limit exceeded")
                    .with_header("Retry-After", &retry_after_secs.to_string());
            }
            let Some(_permit) = self.gate.try_acquire() else {
                return Response::error(503, "gateway is saturated")
                    .with_header("Retry-After", "1");
            };
            return self.route(req);
        }
        self.route(req)
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => self.health(),
            ("GET", "/metrics") => Response::text(200, &self.telemetry.prometheus_text()),
            ("GET", "/ops") => self.ops(),
            ("GET", "/realms") => self.realms(),
            ("GET", "/query") => self.query(req),
            ("POST", "/login") => self.login(req),
            ("POST", "/logout") => self.logout(req),
            (_, "/health" | "/metrics" | "/ops" | "/realms" | "/query" | "/login" | "/logout") => {
                Response::error(405, "method not allowed")
            }
            _ => Response::error(404, "no such endpoint"),
        }
    }

    fn health(&self) -> Response {
        let stale = self.drain.stale_members();
        let body = serde_json::json!({
            "status": "ok",
            "draining": self.is_draining(),
            "stale_members": stale,
        });
        Response::json(200, body.to_string())
    }

    fn ops(&self) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        match fed.ops_report() {
            Ok(report) => {
                let body = serde_json::json!({
                    "title": report.title,
                    "rendered": report.render(),
                });
                Response::json(200, body.to_string())
            }
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    fn realms(&self) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        let members: Vec<String> = fed
            .members()
            .into_iter()
            .map(|(name, _)| name.to_owned())
            .collect();
        let realms: Vec<serde_json::Value> = RealmKind::ALL
            .into_iter()
            .map(|kind| {
                serde_json::json!({
                    "ident": kind.ident(),
                    "display_name": kind.display_name(),
                    "federated_by_default": kind.federated_by_default(),
                })
            })
            .collect();
        let body = serde_json::json!({
            "hub": fed.hub().name(),
            "members": members,
            "realms": realms,
        });
        Response::json(200, body.to_string())
    }

    /// The tentpole endpoint: authenticated, authorized, drain-aware,
    /// rate-limited upstream, and revalidation-friendly via the hub's
    /// watermark-derived version stamp.
    fn query(&self, req: &Request) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        let session = match self.authenticate(&fed, req) {
            Ok(session) => session,
            Err(resp) => return resp,
        };
        let descriptor = match descriptor_from(req) {
            Ok(d) => d,
            Err(msg) => return Response::error(400, &msg),
        };
        let realm = match descriptor.realm_kind() {
            Ok(k) => k,
            Err(msg) => return Response::error(400, &msg),
        };
        let role = fed
            .hub()
            .auth()
            .users()
            .get(&session.username)
            .map(|u| u.role)
            .unwrap_or(Role::User);
        if !realm_allowed(role, realm) {
            return Response::error(
                403,
                &format!("role {role:?} may not query the {} realm", realm.ident()),
            );
        }
        // Members paused or quiesced: the unified view is frozen at the
        // moment their links stopped. Refuse rather than serve it as live.
        if self.drain.is_draining() {
            return Response::error(
                503,
                &format!(
                    "federation is draining; stale members: {}",
                    self.drain.stale_members().join(", ")
                ),
            )
            .with_header("Retry-After", "5");
        }
        let version = fed.hub().result_version(realm);
        let etag = format_etag(version);
        if let Some(candidates) = req.header("if-none-match") {
            if if_none_match(candidates, version) {
                return Response::not_modified(&etag);
            }
        }
        match fed.hub().explore_descriptor(&descriptor) {
            Ok(dataset) => match serde_json::to_string(&dataset) {
                Ok(json) => {
                    let body = format!("{{\"etag\":{},\"dataset\":{json}}}", json_string(&etag));
                    Response::json(200, body).with_header("ETag", &etag)
                }
                Err(e) => Response::error(500, &e.to_string()),
            },
            // Catalog misses (unknown metric/dimension) are client errors.
            Err(msg) => Response::error(400, &msg),
        }
    }

    fn login(&self, req: &Request) -> Response {
        let parsed: serde_json::Value = match serde_json::from_str(&req.body) {
            Ok(v) => v,
            Err(_) => return Response::error(400, "body must be a JSON object"),
        };
        let (Some(username), Some(password)) = (
            parsed.get("username").and_then(serde_json::Value::as_str),
            parsed.get("password").and_then(serde_json::Value::as_str),
        ) else {
            return Response::error(400, "missing username or password");
        };
        let now = epoch_secs();
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        let hub = fed.hub_mut();
        // Expired sessions accrete forever on a long-lived front door
        // without this sweep.
        hub.auth_mut().purge_expired(now);
        match hub.auth_mut().login_local(username, password, now) {
            Some(session) => {
                let body = serde_json::json!({
                    "username": session.username,
                    "instance": session.instance,
                    "expires_at": session.expires_at,
                });
                Response::json(200, body.to_string()).with_header(
                    "Set-Cookie",
                    &format!(
                        "{SESSION_COOKIE}={}; HttpOnly; Path=/",
                        session.cookie_value()
                    ),
                )
            }
            None => Response::error(401, "invalid credentials"),
        }
    }

    fn logout(&self, req: &Request) -> Response {
        let Some(token) = req.cookie(SESSION_COOKIE).and_then(parse_token) else {
            return Response::error(401, "no session cookie");
        };
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        if fed.hub_mut().auth_mut().logout(token) {
            Response::json(200, "{\"logged_out\":true}".to_owned())
        } else {
            Response::error(401, "no such session")
        }
    }

    fn authenticate(&self, fed: &Federation, req: &Request) -> Result<Session, Response> {
        let Some(cookie) = req.cookie(SESSION_COOKIE) else {
            return Err(Response::error(
                401,
                "authentication required (POST /login)",
            ));
        };
        let Some(token) = parse_token(cookie) else {
            return Err(Response::error(401, "malformed session cookie"));
        };
        match fed.hub().auth().validate_session(token, epoch_secs()) {
            Some(session) => Ok(session.clone()),
            None => Err(Response::error(401, "session expired or unknown")),
        }
    }
}

/// Which realms a role may query through the gateway: ordinary users and
/// PIs see the initial release's federated realm (HPC Jobs); center
/// staff and above see everything the hub federates.
pub fn realm_allowed(role: Role, realm: RealmKind) -> bool {
    match role {
        Role::User | Role::Pi => realm == RealmKind::Jobs,
        Role::CenterStaff | Role::CenterDirector | Role::Admin => true,
    }
}

/// Collapse a path to a bounded metric label (unknown paths share one
/// label so hostile clients cannot explode series cardinality).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/health" => "/health",
        "/metrics" => "/metrics",
        "/ops" => "/ops",
        "/realms" => "/realms",
        "/query" => "/query",
        "/login" => "/login",
        "/logout" => "/logout",
        _ => "other",
    }
}

/// Build a [`QueryDescriptor`] from `/query` parameters; every failure
/// names the offending parameter.
fn descriptor_from(req: &Request) -> Result<QueryDescriptor, String> {
    let realm = req.query_param("realm").ok_or("missing realm parameter")?;
    let metric = req
        .query_param("metric")
        .ok_or("missing metric parameter")?;
    let mut descriptor = QueryDescriptor::new(realm, metric);
    descriptor.dimension = req.query_param("dimension").map(str::to_owned);
    descriptor.view = req.query_param("view").map(str::to_owned);
    descriptor.period = req.query_param("period").map(str::to_owned);
    descriptor.start = parse_num::<i64>(req, "start")?;
    descriptor.end = parse_num::<i64>(req, "end")?;
    descriptor.top_n = parse_num::<usize>(req, "top_n")?;
    for raw in req.query_params("filter") {
        let (dim, value) = raw
            .split_once('=')
            .ok_or_else(|| format!("filter {raw:?} must look like dimension=value"))?;
        descriptor.filters.push((dim.to_owned(), value.to_owned()));
    }
    Ok(descriptor)
}

fn parse_num<T: std::str::FromStr>(req: &Request, name: &str) -> Result<Option<T>, String> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{name} must be a number, got {raw:?}")),
    }
}

fn epoch_secs() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_gate_realms() {
        assert!(realm_allowed(Role::User, RealmKind::Jobs));
        assert!(!realm_allowed(Role::User, RealmKind::Storage));
        assert!(!realm_allowed(Role::Pi, RealmKind::Cloud));
        assert!(realm_allowed(Role::CenterStaff, RealmKind::Storage));
        assert!(realm_allowed(Role::Admin, RealmKind::Supremm));
    }

    #[test]
    fn unknown_paths_share_a_metric_label() {
        assert_eq!(endpoint_label("/query"), "/query");
        assert_eq!(endpoint_label("/../../etc/passwd"), "other");
        assert_eq!(endpoint_label("/query/x"), "other");
    }
}

//! The application layer: routing, sessions, authorization, and the
//! cache-aware query endpoint.
//!
//! [`App::handle`] is a pure function from a parsed [`Request`] to a
//! [`Response`] — the TCP server (see [`crate::server`]) feeds it, but
//! tests can drive the whole routing/auth/rate-limit surface without a
//! socket. One invariant above all: **no client input reaches a panic**.
//! Every malformed parameter is a 400, every auth failure a 401/403,
//! every capacity decision a 429/503 with `Retry-After`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use xdmod_alerts::AckError;
use xdmod_auth::{parse_token, Role, Session};
use xdmod_core::{DrainNotice, Federation, QueryDescriptor};
use xdmod_realms::RealmKind;
use xdmod_telemetry::MetricsRegistry;

use crate::config::GatewayConfig;
use crate::etag::{format_etag, if_none_match};
use crate::http::{json_string, Request, Response};
use crate::limit::{AdmissionGate, RateDecision, RateLimiter};

/// The session cookie name.
pub const SESSION_COOKIE: &str = "xdmod_session";

/// Shared serving state: the federation plus every admission valve.
pub struct App {
    fed: Arc<RwLock<Federation>>,
    drain: DrainNotice,
    telemetry: MetricsRegistry,
    limiter: RateLimiter,
    gate: AdmissionGate,
    draining: AtomicBool,
    purge_interval_ms: u64,
    last_purge_ms: AtomicU64,
}

impl App {
    /// Build the application layer over a shared federation. The drain
    /// notice and telemetry registry are captured from the federation so
    /// gateway metrics land next to hub metrics in one exposition.
    pub fn new(fed: Arc<RwLock<Federation>>, config: &GatewayConfig) -> Arc<Self> {
        let (drain, telemetry) = {
            let fed = fed.read().unwrap_or_else(PoisonError::into_inner);
            (fed.drain_notice(), fed.hub().telemetry().clone())
        };
        Arc::new(App {
            fed,
            drain,
            telemetry,
            limiter: RateLimiter::new(config.rate_capacity, config.rate_refill_per_sec),
            gate: AdmissionGate::new(config.max_inflight),
            draining: AtomicBool::new(false),
            purge_interval_ms: config.session_purge_interval.as_millis() as u64,
            last_purge_ms: AtomicU64::new(0),
        })
    }

    /// The registry gateway metrics are published on.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Enter graceful drain: every subsequent request is refused with
    /// 503; requests already in flight complete normally.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Serve one request. `client` is the peer address (rate-limit key);
    /// `now_ms` is milliseconds since gateway start (rate-limit clock).
    pub fn handle(&self, req: &Request, client: &str, now_ms: u64) -> Response {
        let endpoint = endpoint_label(&req.path);
        self.telemetry
            .gauge("gateway_inflight_requests", &[])
            .set(self.gate.inflight() as f64);
        let span = self
            .telemetry
            .span("gateway_http_request_seconds", &[("endpoint", endpoint)]);
        let response = self.admit_and_route(req, client, now_ms, endpoint);
        span.finish();
        let status = response.status.to_string();
        self.telemetry
            .counter(
                "gateway_http_requests_total",
                &[("endpoint", endpoint), ("status", &status)],
            )
            .inc();
        match response.status {
            429 => self.telemetry.counter("gateway_http_429_total", &[]).inc(),
            304 => self.telemetry.counter("gateway_http_304_total", &[]).inc(),
            _ => {}
        }
        response
    }

    fn admit_and_route(
        &self,
        req: &Request,
        client: &str,
        now_ms: u64,
        endpoint: &str,
    ) -> Response {
        // Observability endpoints bypass every valve: an operator must be
        // able to see a saturated or draining gateway.
        let exempt = matches!(endpoint, "/health" | "/metrics");
        if !exempt {
            if self.is_draining() {
                return Response::error(503, "gateway is draining").with_header("Retry-After", "5");
            }
            if let RateDecision::Limited { retry_after_secs } = self.limiter.check(client, now_ms) {
                return Response::error(429, "rate limit exceeded")
                    .with_header("Retry-After", &retry_after_secs.to_string());
            }
            let Some(_permit) = self.gate.try_acquire() else {
                // The event feeds the federation's alert engine: the next
                // alert pump fingerprints it into a `gateway_saturation`
                // alert instead of the refusal vanishing into a counter.
                self.telemetry.event_with(
                    "gateway.saturated",
                    "admission gate refused a request",
                    &[("inflight", self.gate.inflight() as f64)],
                );
                return Response::error(503, "gateway is saturated")
                    .with_header("Retry-After", "1");
            };
            return self.route(req);
        }
        self.route(req)
    }

    fn route(&self, req: &Request) -> Response {
        // The one parameterized path; everything else matches exactly.
        if let Some(id) = ack_alert_id(&req.path) {
            return if req.method == "POST" {
                self.ack_alert(req, id)
            } else {
                Response::error(405, "method not allowed")
            };
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => self.health(),
            ("GET", "/metrics") => Response::text(200, &self.telemetry.prometheus_text()),
            ("GET", "/ops") => self.ops(),
            ("GET", "/realms") => self.realms(),
            ("GET", "/query") => self.query(req),
            ("GET", "/alerts") => self.alerts(req),
            ("POST", "/login") => self.login(req),
            ("POST", "/logout") => self.logout(req),
            (
                _,
                "/health" | "/metrics" | "/ops" | "/realms" | "/query" | "/login" | "/logout"
                | "/alerts",
            ) => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such endpoint"),
        }
    }

    fn health(&self) -> Response {
        let stale = self.drain.stale_members();
        let body = serde_json::json!({
            "status": "ok",
            "draining": self.is_draining(),
            "stale_members": stale,
        });
        Response::json(200, body.to_string())
    }

    fn ops(&self) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        // xc-allow: fed is the gateway's top-level RwLock; the hub db lock ops_report takes is a leaf acquired strictly under it
        match fed.ops_report() {
            Ok(report) => {
                let body = serde_json::json!({
                    "title": report.title,
                    "rendered": report.render(),
                });
                Response::json(200, body.to_string())
            }
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    fn realms(&self) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        let members: Vec<String> = fed
            .members()
            .into_iter()
            .map(|(name, _)| name.to_owned())
            .collect();
        let realms: Vec<serde_json::Value> = RealmKind::ALL
            .into_iter()
            .map(|kind| {
                serde_json::json!({
                    "ident": kind.ident(),
                    "display_name": kind.display_name(),
                    "federated_by_default": kind.federated_by_default(),
                })
            })
            .collect();
        let body = serde_json::json!({
            "hub": fed.hub().name(),
            "members": members,
            "realms": realms,
        });
        Response::json(200, body.to_string())
    }

    /// The tentpole endpoint: authenticated, authorized, drain-aware,
    /// rate-limited upstream, and revalidation-friendly via the hub's
    /// watermark-derived version stamp.
    fn query(&self, req: &Request) -> Response {
        let fed = self.fed.read().unwrap_or_else(PoisonError::into_inner);
        let session = match self.authenticate(&fed, req) {
            Ok(session) => session,
            Err(resp) => return resp,
        };
        let descriptor = match descriptor_from(req) {
            Ok(d) => d,
            Err(msg) => return Response::error(400, &msg),
        };
        let realm = match descriptor.realm_kind() {
            Ok(k) => k,
            Err(msg) => return Response::error(400, &msg),
        };
        let role = fed
            .hub()
            .auth()
            .users()
            .get(&session.username)
            .map(|u| u.role)
            .unwrap_or(Role::User);
        if !realm_allowed(role, realm) {
            return Response::error(
                403,
                &format!("role {role:?} may not query the {} realm", realm.ident()),
            );
        }
        // Members paused or quiesced: the unified view is frozen at the
        // moment their links stopped. Refuse rather than serve it as live.
        if self.drain.is_draining() {
            return Response::error(
                503,
                &format!(
                    "federation is draining; stale members: {}",
                    // xc-allow: drain's stale-member mutex is a leaf — never held while taking app.fed
                    self.drain.stale_members().join(", ")
                ),
            )
            .with_header("Retry-After", "5");
        }
        // xc-allow: fed is the gateway's top-level RwLock, held read for the whole request by design; hub locks are leaves acquired strictly under it
        let version = fed.hub().result_version(realm);
        let etag = format_etag(version);
        if let Some(candidates) = req.header("if-none-match") {
            if if_none_match(candidates, version) {
                return Response::not_modified(&etag);
            }
        }
        match fed.hub().explore_descriptor(&descriptor) {
            Ok(dataset) => match serde_json::to_string(&dataset) {
                Ok(json) => {
                    let body = format!("{{\"etag\":{},\"dataset\":{json}}}", json_string(&etag));
                    Response::json(200, body).with_header("ETag", &etag)
                }
                Err(e) => Response::error(500, &e.to_string()),
            },
            // Catalog misses (unknown metric/dimension) are client errors.
            Err(msg) => Response::error(400, &msg),
        }
    }

    /// `GET /alerts`: the federation's alert set, most urgent first.
    /// Takes the write lock — listing pumps freshly mined telemetry
    /// events through the engine and applies timeout transitions, so the
    /// answer reflects *now*, not the last supervisor tick. ETag-cached
    /// over the engine's generation counter, mirroring `/query`'s
    /// watermark scheme: unchanged alert state revalidates to 304.
    fn alerts(&self, req: &Request) -> Response {
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        if let Err(resp) = self.authenticate(&fed, req) {
            return resp;
        }
        let alerts = fed.alerts();
        let etag = format_etag(fed.alerts_generation());
        if let Some(candidates) = req.header("if-none-match") {
            if if_none_match(candidates, fed.alerts_generation()) {
                return Response::not_modified(&etag);
            }
        }
        let rendered: Vec<serde_json::Value> = alerts
            .iter()
            .map(|a| {
                serde_json::json!({
                    "id": a.id,
                    "family": a.family,
                    "target": a.target,
                    "severity": a.severity.as_str(),
                    "state": a.state.as_str(),
                    "detail": a.detail,
                    "opened_at_ms": a.opened_at_ms,
                    "last_observed_ms": a.last_observed_ms,
                    "last_transition_ms": a.last_transition_ms,
                    "occurrences": a.occurrences,
                    "flaps": a.flaps,
                    "acked_by": a.acked_by,
                })
            })
            .collect();
        let body = serde_json::json!({
            "etag": etag,
            "open": alerts.iter().filter(|a| a.state.is_open()).count(),
            "alerts": rendered,
        });
        Response::json(200, body.to_string()).with_header("ETag", &etag)
    }

    /// `POST /alerts/{id}/ack`: acknowledge a firing alert. Operator
    /// role and above (center staff, center director, admin) — ordinary
    /// users and PIs can look, not touch.
    fn ack_alert(&self, req: &Request, id: &str) -> Response {
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        let session = match self.authenticate(&fed, req) {
            Ok(session) => session,
            Err(resp) => return resp,
        };
        let role = fed
            .hub()
            .auth()
            .users()
            .get(&session.username)
            .map(|u| u.role)
            .unwrap_or(Role::User);
        if matches!(role, Role::User | Role::Pi) {
            return Response::error(
                403,
                &format!("role {role:?} may not acknowledge alerts"),
            );
        }
        match fed.ack_alert(id, &session.username) {
            Ok(()) => {
                let body = serde_json::json!({
                    "acked": id,
                    "by": session.username,
                });
                Response::json(200, body.to_string())
            }
            Err(AckError::UnknownAlert(_)) => Response::error(404, "no such alert"),
            Err(e @ AckError::NotFiring { .. }) => Response::error(409, &e.to_string()),
        }
    }

    /// Sweep expired sessions when the purge interval has elapsed.
    /// Called from the acceptor's idle path, so the sweep happens even on
    /// a gateway nobody is logging into — the failure mode that let the
    /// session store grow unbounded when the sweep only ran at login.
    /// Returns how many sessions were dropped (0 when skipped).
    pub fn maybe_purge_sessions(&self, now_ms: u64) -> usize {
        let last = self.last_purge_ms.load(Ordering::Acquire);
        if last != 0 && now_ms.saturating_sub(last) < self.purge_interval_ms {
            return 0;
        }
        // One winner per interval; losers skip rather than queue on the
        // federation write lock.
        if self
            .last_purge_ms
            .compare_exchange(last, now_ms.max(1), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return 0;
        }
        let purged = {
            let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
            fed.hub_mut().auth_mut().purge_expired(epoch_secs())
        };
        if purged > 0 {
            self.telemetry
                .counter("gateway_sessions_purged_total", &[])
                .add(purged as u64);
        }
        purged
    }

    fn login(&self, req: &Request) -> Response {
        let parsed: serde_json::Value = match serde_json::from_str(&req.body) {
            Ok(v) => v,
            Err(_) => return Response::error(400, "body must be a JSON object"),
        };
        let (Some(username), Some(password)) = (
            parsed.get("username").and_then(serde_json::Value::as_str),
            parsed.get("password").and_then(serde_json::Value::as_str),
        ) else {
            return Response::error(400, "missing username or password");
        };
        let now = epoch_secs();
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        let hub = fed.hub_mut();
        // Expired sessions accrete forever on a long-lived front door
        // without this sweep.
        hub.auth_mut().purge_expired(now);
        match hub.auth_mut().login_local(username, password, now) {
            Some(session) => {
                let body = serde_json::json!({
                    "username": session.username,
                    "instance": session.instance,
                    "expires_at": session.expires_at,
                });
                Response::json(200, body.to_string()).with_header(
                    "Set-Cookie",
                    &format!(
                        "{SESSION_COOKIE}={}; HttpOnly; Path=/",
                        session.cookie_value()
                    ),
                )
            }
            None => Response::error(401, "invalid credentials"),
        }
    }

    fn logout(&self, req: &Request) -> Response {
        let Some(token) = req.cookie(SESSION_COOKIE).and_then(parse_token) else {
            return Response::error(401, "no session cookie");
        };
        let mut fed = self.fed.write().unwrap_or_else(PoisonError::into_inner);
        if fed.hub_mut().auth_mut().logout(token) {
            Response::json(200, "{\"logged_out\":true}".to_owned())
        } else {
            Response::error(401, "no such session")
        }
    }

    fn authenticate(&self, fed: &Federation, req: &Request) -> Result<Session, Response> {
        let Some(cookie) = req.cookie(SESSION_COOKIE) else {
            return Err(Response::error(
                401,
                "authentication required (POST /login)",
            ));
        };
        let Some(token) = parse_token(cookie) else {
            return Err(Response::error(401, "malformed session cookie"));
        };
        match fed.hub().auth().validate_session(token, epoch_secs()) {
            Some(session) => Ok(session.clone()),
            None => Err(Response::error(401, "session expired or unknown")),
        }
    }
}

/// Which realms a role may query through the gateway: ordinary users and
/// PIs see the initial release's federated realm (HPC Jobs); center
/// staff and above see everything the hub federates.
pub fn realm_allowed(role: Role, realm: RealmKind) -> bool {
    match role {
        Role::User | Role::Pi => realm == RealmKind::Jobs,
        Role::CenterStaff | Role::CenterDirector | Role::Admin => true,
    }
}

/// Collapse a path to a bounded metric label (unknown paths share one
/// label so hostile clients cannot explode series cardinality). All
/// `/alerts/{id}/ack` paths collapse to one label for the same reason.
fn endpoint_label(path: &str) -> &'static str {
    if ack_alert_id(path).is_some() {
        return "/alerts/ack";
    }
    match path {
        "/health" => "/health",
        "/metrics" => "/metrics",
        "/ops" => "/ops",
        "/realms" => "/realms",
        "/query" => "/query",
        "/alerts" => "/alerts",
        "/login" => "/login",
        "/logout" => "/logout",
        _ => "other",
    }
}

/// Parse `/alerts/{id}/ack` into the alert id; `None` for anything else
/// (empty ids and ids containing further slashes are not ack paths).
fn ack_alert_id(path: &str) -> Option<&str> {
    let id = path.strip_prefix("/alerts/")?.strip_suffix("/ack")?;
    (!id.is_empty() && !id.contains('/')).then_some(id)
}

/// Build a [`QueryDescriptor`] from `/query` parameters; every failure
/// names the offending parameter.
fn descriptor_from(req: &Request) -> Result<QueryDescriptor, String> {
    let realm = req.query_param("realm").ok_or("missing realm parameter")?;
    let metric = req
        .query_param("metric")
        .ok_or("missing metric parameter")?;
    let mut descriptor = QueryDescriptor::new(realm, metric);
    descriptor.dimension = req.query_param("dimension").map(str::to_owned);
    descriptor.view = req.query_param("view").map(str::to_owned);
    descriptor.period = req.query_param("period").map(str::to_owned);
    descriptor.start = parse_num::<i64>(req, "start")?;
    descriptor.end = parse_num::<i64>(req, "end")?;
    descriptor.top_n = parse_num::<usize>(req, "top_n")?;
    for raw in req.query_params("filter") {
        let (dim, value) = raw
            .split_once('=')
            .ok_or_else(|| format!("filter {raw:?} must look like dimension=value"))?;
        descriptor.filters.push((dim.to_owned(), value.to_owned()));
    }
    Ok(descriptor)
}

fn parse_num<T: std::str::FromStr>(req: &Request, name: &str) -> Result<Option<T>, String> {
    match req.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{name} must be a number, got {raw:?}")),
    }
}

fn epoch_secs() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_gate_realms() {
        assert!(realm_allowed(Role::User, RealmKind::Jobs));
        assert!(!realm_allowed(Role::User, RealmKind::Storage));
        assert!(!realm_allowed(Role::Pi, RealmKind::Cloud));
        assert!(realm_allowed(Role::CenterStaff, RealmKind::Storage));
        assert!(realm_allowed(Role::Admin, RealmKind::Supremm));
    }

    #[test]
    fn unknown_paths_share_a_metric_label() {
        assert_eq!(endpoint_label("/query"), "/query");
        assert_eq!(endpoint_label("/../../etc/passwd"), "other");
        assert_eq!(endpoint_label("/query/x"), "other");
        assert_eq!(endpoint_label("/alerts"), "/alerts");
        assert_eq!(endpoint_label("/alerts/deadbeef01234567/ack"), "/alerts/ack");
        assert_eq!(endpoint_label("/alerts/deadbeef"), "other");
    }

    #[test]
    fn ack_paths_parse_strictly() {
        assert_eq!(ack_alert_id("/alerts/abc123/ack"), Some("abc123"));
        assert_eq!(ack_alert_id("/alerts//ack"), None);
        assert_eq!(ack_alert_id("/alerts/a/b/ack"), None);
        assert_eq!(ack_alert_id("/alerts/ack"), None);
        assert_eq!(ack_alert_id("/alerts/abc123"), None);
        assert_eq!(ack_alert_id("/query"), None);
    }
}

//! The TCP front: a non-blocking accept loop feeding the worker pool.
//!
//! One thread accepts; [`crate::pool::WorkerPool`] threads parse and
//! serve. The accept queue is the pool's bounded channel — when it
//! fills, the acceptor answers 503 + `Retry-After` *inline* and moves
//! on, so saturation degrades into fast refusals instead of unbounded
//! queueing (§ the paper's hub must keep serving its own operators even
//! when a member's dashboard misbehaves).
//!
//! Chaos hooks: an [`xdmod_chaos::FaultInjector`] may be armed with
//! [`FaultPoint::Accept`] faults (connections dropped or the accept loop
//! stalled before dispatch) and [`FaultPoint::SocketRead`] faults
//! (connections reset mid-read). The soak test drives seeded schedules
//! through both and asserts zero worker deaths.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xdmod_chaos::{FaultInjector, FaultKind, FaultPoint};
use xdmod_core::Federation;

use crate::app::App;
use crate::config::GatewayConfig;
use crate::http::{read_request, HttpError, Response};
use crate::pool::WorkerPool;

/// The chaos target name the gateway reports faults under.
const CHAOS_TARGET: &str = "gateway";

/// A running gateway: bound address plus control handles.
pub struct GatewayHandle {
    addr: SocketAddr,
    app: Arc<App>,
    pool: Arc<WorkerPool>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl GatewayHandle {
    /// The address the gateway is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The application layer (telemetry access, drain control).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Begin graceful drain: requests already in flight complete, every
    /// new request is answered 503.
    pub fn drain(&self) {
        self.app.start_draining();
    }

    /// Jobs that panicked inside the worker pool (must stay 0 — every
    /// failure mode is supposed to serialize into an error response).
    pub fn worker_panics(&self) -> u64 {
        self.pool.panics()
    }

    /// Stop accepting, finish queued connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        drop(self.app);
        if let Ok(mut pool) = Arc::try_unwrap(self.pool) {
            pool.shutdown();
        }
    }
}

/// Bind `127.0.0.1:0` (an ephemeral port) and start serving the
/// federation. `chaos` arms the accept/read fault points; pass `None`
/// for production behavior.
pub fn serve(
    fed: Arc<RwLock<Federation>>,
    config: GatewayConfig,
    chaos: Option<FaultInjector>,
) -> std::io::Result<GatewayHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let app = App::new(fed, &config);
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    let stop = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let app = Arc::clone(&app);
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("gateway-acceptor".to_owned())
            .spawn(move || accept_loop(&listener, &app, &pool, &stop, &config, chaos))?
    };

    Ok(GatewayHandle {
        addr,
        app,
        pool,
        stop,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(
    listener: &TcpListener,
    app: &Arc<App>,
    pool: &WorkerPool,
    stop: &AtomicBool,
    config: &GatewayConfig,
    chaos: Option<FaultInjector>,
) {
    let start = Instant::now();
    while !stop.load(Ordering::Acquire) {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // The idle path doubles as the housekeeping tick: sweep
                // expired sessions so the store stays bounded even on a
                // gateway nobody logs into.
                app.maybe_purge_sessions(start.elapsed().as_millis() as u64);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if let Some(injector) = &chaos {
            if let Some(kind) = injector.next_fault(FaultPoint::Accept, CHAOS_TARGET) {
                app.telemetry()
                    .counter("gateway_chaos_faults_total", &[("point", "accept")])
                    .inc();
                match kind {
                    FaultKind::Stall { millis } => {
                        // The accept loop stalls, the connection still
                        // gets served afterwards.
                        std::thread::sleep(Duration::from_millis(millis.min(50)));
                    }
                    _ => {
                        // Everything else at the accept point means the
                        // connection never reaches a worker.
                        drop(stream);
                        continue;
                    }
                }
            }
        }
        app.telemetry()
            .counter("gateway_connections_total", &[])
            .inc();
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let now_ms = start.elapsed().as_millis() as u64;
        let client = peer.ip().to_string();
        let fallback = stream.try_clone().ok();
        let job_app = Arc::clone(app);
        let job_chaos = chaos.clone();
        let enqueue = pool.try_execute(move || {
            serve_connection(&job_app, stream, &client, now_ms, job_chaos.as_ref());
        });
        if let Err((_reason, job)) = enqueue {
            drop(job); // closes the job's handle on the socket
            app.telemetry()
                .counter("gateway_accept_queue_rejections_total", &[])
                .inc();
            if let Some(mut raw) = fallback {
                let _ = Response::error(503, "accept queue is full")
                    .with_header("Retry-After", "1")
                    .write_to(&mut raw);
            }
        }
    }
}

/// Parse one request off the socket and serve it. Every failure path
/// either answers with a status code or silently closes — a worker
/// thread never propagates a panic from here (and the pool would absorb
/// it if one escaped).
fn serve_connection(
    app: &App,
    stream: TcpStream,
    client: &str,
    now_ms: u64,
    chaos: Option<&FaultInjector>,
) {
    if let Some(injector) = chaos {
        if let Some(kind) = injector.next_fault(FaultPoint::SocketRead, CHAOS_TARGET) {
            app.telemetry()
                .counter("gateway_chaos_faults_total", &[("point", "socket-read")])
                .inc();
            match kind {
                FaultKind::Stall { millis } => {
                    std::thread::sleep(Duration::from_millis(millis.min(50)));
                }
                _ => return, // connection reset before the request was read
            }
        }
    }
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    let response = match read_request(&mut reader) {
        Ok(request) => app.handle(&request, client, now_ms),
        Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_)) => return,
        Err(HttpError::Malformed(what)) => {
            app.telemetry()
                .counter(
                    "gateway_http_requests_total",
                    &[("endpoint", "other"), ("status", "400")],
                )
                .inc();
            Response::error(400, &format!("malformed request: {what}"))
        }
        Err(HttpError::TooLarge(what)) => {
            app.telemetry()
                .counter(
                    "gateway_http_requests_total",
                    &[("endpoint", "other"), ("status", "413")],
                )
                .inc();
            Response::error(413, &format!("request too large: {what}"))
        }
    };
    let _ = response.write_to(&mut writer);
}

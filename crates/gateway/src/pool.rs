//! The fixed worker pool that serves accepted connections.
//!
//! A bounded [`std::sync::mpsc::sync_channel`] is the accept queue: the
//! acceptor enqueues connections without blocking, and when the queue is
//! full the connection is refused *immediately* (the server answers 503
//! inline) instead of piling latency onto everyone already queued.
//!
//! Workers are panic-proof: every job runs under
//! [`std::panic::catch_unwind`], a panic increments a counter and the
//! worker loops on. The soak test's invariant — seeded chaos faults, zero
//! worker deaths — rests on this loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::limit::lock;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool draining a bounded job queue.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

/// Why a job was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is full — the pool is saturated.
    QueueFull,
    /// The pool has shut down.
    ShutDown,
}

impl WorkerPool {
    /// Spawn `workers` threads behind a queue of depth `queue_depth`.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (sender, receiver) = sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &panics))
            })
            .filter_map(Result::ok)
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers: handles,
            panics,
        }
    }

    /// Enqueue a job without blocking. On a full queue the job comes
    /// back so the caller can refuse the connection inline.
    pub fn try_execute(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), (RejectReason, Job)> {
        let Some(sender) = &self.sender else {
            return Err((RejectReason::ShutDown, Box::new(job)));
        };
        match sender.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => Err((RejectReason::QueueFull, job)),
            Err(TrySendError::Disconnected(job)) => Err((RejectReason::ShutDown, job)),
        }
    }

    /// Jobs that panicked (the workers survived them all).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Worker threads still alive.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Drain the queue and join every worker: jobs already enqueued run
    /// to completion; nothing new is accepted.
    pub fn shutdown(&mut self) {
        self.sender = None; // disconnects the channel once workers drain it
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, panics: &AtomicU64) {
    loop {
        // Hold the lock only to dequeue, never while running the job.
        // xc-allow: shared-receiver pool — workers take turns blocking in recv under the receiver mutex; the guard drops before the job runs
        let job = match lock(receiver).recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: graceful shutdown
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    /// `try_execute` can hand the job back, which has no `Debug`; tests
    /// assert the Ok case through this helper instead of `unwrap`.
    fn enqueue(pool: &WorkerPool, job: impl FnOnce() + Send + 'static) {
        assert!(pool.try_execute(job).map_err(|(reason, _)| reason).is_ok());
    }

    #[test]
    fn jobs_run_on_worker_threads() {
        // Queue depth covers the whole batch: whether workers have begun
        // draining is timing-dependent, and `try_execute` never blocks.
        let pool = WorkerPool::new(4, 32);
        let (tx, rx) = channel();
        for i in 0..20 {
            let tx = tx.clone();
            enqueue(&pool, move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..20)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_jobs_are_counted_and_workers_survive() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = channel();
        for _ in 0..6 {
            enqueue(&pool, || panic!("injected"));
        }
        // The pool still serves after every worker has absorbed panics.
        let tx2 = tx.clone();
        enqueue(&pool, move || tx2.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        // A sibling worker may still be unwinding its last panic when the
        // sentinel lands; give the counter a moment to settle.
        for _ in 0..5000 {
            if pool.panics() == 6 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.panics(), 6);
        assert_eq!(pool.worker_count(), 2);
    }

    #[test]
    fn full_queue_returns_the_job_instead_of_blocking() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        // Occupy the lone worker...
        let (started_tx, started_rx) = channel();
        enqueue(&pool, move || {
            started_tx.send(()).unwrap();
            let _ = lock(&gate_rx).recv();
        });
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // ...fill the depth-1 queue...
        enqueue(&pool, || {});
        // ...and the next job bounces with QueueFull.
        assert!(matches!(
            pool.try_execute(|| {}),
            Err((RejectReason::QueueFull, _))
        ));
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_finishes_enqueued_work() {
        let mut pool = WorkerPool::new(2, 32);
        let (tx, rx) = channel();
        for i in 0..10 {
            let tx = tx.clone();
            enqueue(&pool, move || tx.send(i).unwrap());
        }
        pool.shutdown();
        drop(tx);
        assert_eq!(rx.iter().count(), 10);
        // After shutdown, jobs bounce.
        assert!(matches!(
            pool.try_execute(|| {}),
            Err((RejectReason::ShutDown, _))
        ));
    }
}

//! # xdmod-gateway
//!
//! The serving tier of the federated hub: a concurrent HTTP/1.1 gateway
//! exposing the federation's query, operations, and authentication
//! surface as JSON endpoints.
//!
//! The paper's hub is "a central, federated hub server" whose portal
//! users chart "any time range, across all computing resources"
//! (abstract); this crate is the reproduction's front door to that
//! portal — sized so the serving tier cannot trample the warehouse it
//! fronts:
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/health` | GET | liveness + drain state, valve-exempt |
//! | `/metrics` | GET | Prometheus exposition, valve-exempt |
//! | `/ops` | GET | the hub's self-monitoring ops report |
//! | `/realms` | GET | realm catalog + federation membership |
//! | `/query` | GET | authenticated federated queries with `ETag` revalidation |
//! | `/alerts` | GET | the alert engine's lifecycle view, `ETag`-cached over its generation counter |
//! | `/alerts/{id}/ack` | POST | acknowledge a firing alert (operator role and above) |
//! | `/login` | POST | local-credential sign-on, sets the session cookie |
//! | `/logout` | POST | revoke the presented session |
//!
//! Layers, bottom up:
//!
//! - [`http`] — bounded hand-rolled HTTP/1.1 parsing and serialization
//!   (std-only; malformed input becomes status codes, never panics);
//! - [`pool`] — the fixed worker pool with a bounded accept queue and
//!   panic-absorbing workers;
//! - [`limit`] — per-client token buckets (429 + `Retry-After`, bucket
//!   arithmetic shared with `xdmod-alerts`' notification gating) and the
//!   global in-flight admission gate (503);
//! - [`etag`] — strong `ETag`s minted from the hub's watermark-derived
//!   `result_version`, so `If-None-Match` revalidation skips the query;
//! - [`app`] — routing, session auth (via `xdmod-auth`), per-role realm
//!   authorization, drain-awareness;
//! - [`server`] — the TCP accept loop, graceful drain/shutdown, and the
//!   chaos fault points the soak test drives.
//!
//! [`preflight`] bridges to `xdmod-check`: it injects the gateway's pool
//! sizing into the federation's analyzable model so XC0012 can warn when
//! the serving tier out-sizes the aggregation pool it queues behind.

#![warn(missing_docs)]

pub mod app;
pub mod config;
pub mod etag;
pub mod http;
pub mod limit;
pub mod pool;
pub mod server;

pub use app::{realm_allowed, App, SESSION_COOKIE};
pub use config::GatewayConfig;
pub use etag::{format_etag, if_none_match};
pub use http::{Request, Response};
pub use limit::{AdmissionGate, RateDecision, RateLimiter};
pub use pool::WorkerPool;
pub use server::{serve, GatewayHandle};

/// Run the federation's static pre-flight with the gateway's pool sizing
/// injected, so [`xdmod_check`]'s XC0012 can compare serving concurrency
/// against the hub's aggregation pool. Call before [`serve`]; treat
/// Error-severity findings as fatal and warnings as sizing advice.
pub fn preflight(fed: &xdmod_core::Federation, config: &GatewayConfig) -> xdmod_check::Diagnostics {
    let mut model = fed.check_model();
    model.gateway = Some(xdmod_check::GatewayModel {
        workers: Some(config.workers as u64),
    });
    xdmod_check::analyze(&model)
}

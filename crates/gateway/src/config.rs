//! Gateway tuning knobs, with defaults sized for a small federation.

use std::time::Duration;

/// Serving-tier configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Request worker threads. [`xdmod_check`]'s XC0012 warns when this
    /// exceeds the hub's aggregation pool — the surplus workers would
    /// queue behind aggregation locks while holding sockets open.
    pub workers: usize,
    /// Bounded accept-queue depth; a full queue refuses connections with
    /// an inline 503 instead of growing latency unboundedly.
    pub queue_depth: usize,
    /// Global cap on concurrently-served requests (the admission gate).
    pub max_inflight: usize,
    /// Token-bucket burst capacity per client address.
    pub rate_capacity: u64,
    /// Token-bucket refill, tokens per second per client.
    pub rate_refill_per_sec: u64,
    /// Socket read timeout while parsing one request.
    pub read_timeout: Duration,
    /// How often the acceptor's idle path sweeps expired sessions out of
    /// the hub's session store (`Duration::ZERO` sweeps on every idle
    /// tick — useful in tests).
    pub session_purge_interval: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_depth: 64,
            max_inflight: 32,
            rate_capacity: 20,
            rate_refill_per_sec: 10,
            read_timeout: Duration::from_secs(5),
            session_purge_interval: Duration::from_secs(60),
        }
    }
}

impl GatewayConfig {
    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the accept-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the global in-flight cap.
    pub fn with_max_inflight(mut self, max: usize) -> Self {
        self.max_inflight = max;
        self
    }

    /// Set the per-client token bucket: burst capacity and refill rate.
    pub fn with_rate_limit(mut self, capacity: u64, refill_per_sec: u64) -> Self {
        self.rate_capacity = capacity;
        self.rate_refill_per_sec = refill_per_sec;
        self
    }

    /// Set the per-request socket read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Set the expired-session sweep interval.
    pub fn with_session_purge_interval(mut self, interval: Duration) -> Self {
        self.session_purge_interval = interval;
        self
    }
}

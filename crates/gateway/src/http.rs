//! A hand-rolled, bounded HTTP/1.1 subset: exactly what the gateway
//! needs to serve JSON to browsers and `curl`, and nothing more.
//!
//! Std-only on purpose. The serving tier fronts the federation for
//! operators; pulling a full HTTP stack into the trust boundary for six
//! endpoints trades auditability for features nobody uses. Everything
//! here is defensive: every line, header count, and body is bounded, and
//! any malformed input becomes a typed [`HttpError`] the server maps to
//! a 400 — never a panic in a worker thread.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived
    /// (includes the idle keep-alive close — not an error worth logging).
    ConnectionClosed,
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
    /// Syntactically invalid request — maps to 400.
    Malformed(&'static str),
    /// A declared or actual size exceeded a bound — maps to 413/431.
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, percent-decoded (`/query`).
    pub path: String,
    /// Decoded query parameters in arrival order.
    pub query: Vec<(String, String)>,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// First value of a header, case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeatable query parameter, in order.
    pub fn query_params(&self, name: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// A cookie by name, from the `Cookie` header.
    pub fn cookie(&self, name: &str) -> Option<&str> {
        self.header("cookie")?
            .split(';')
            .map(str::trim)
            .find_map(|pair| pair.strip_prefix(name)?.strip_prefix('='))
    }
}

/// Read one request off a buffered connection. Blocks until a full
/// request arrives, the reader's timeout fires, or a bound trips.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Err(HttpError::Malformed("empty request line"));
    }
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("bad method"))?
        .to_owned();
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(HttpError::Malformed("bad http version")),
    }
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens on request line"));
    }
    let (path, query) = parse_target(target)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body_bytes = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body_bytes)?;
    let body =
        String::from_utf8(body_bytes).map_err(|_| HttpError::Malformed("body is not utf-8"))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read one CRLF- (or bare-LF-) terminated line, bounded, trimmed.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match io::Read::read(reader, &mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Err(HttpError::ConnectionClosed);
                }
                return Err(HttpError::Malformed("truncated line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| HttpError::Malformed("line is not utf-8"));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge("line"));
                }
            }
        }
    }
}

/// Split a request target into decoded path + query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), HttpError> {
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("target must be absolute"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        None => (target, ""),
        Some((p, q)) => (p, q),
    };
    let path = percent_decode(raw_path).ok_or(HttpError::Malformed("bad path escape"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(HttpError::Malformed("bad query escape"))?;
        let v = percent_decode(v).ok_or(HttpError::Malformed("bad query escape"))?;
        query.push((k, v));
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+`-as-space. `None` on a bad escape or
/// non-UTF-8 result.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Type/Length and Connection are automatic).
    pub headers: Vec<(String, String)>,
    /// Body bytes (already serialized).
    pub body: String,
    /// Content type for the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.to_owned(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    /// A bodiless 304 revalidation response.
    pub fn not_modified(etag: &str) -> Self {
        let mut r = Response::json(304, String::new());
        r.headers.push(("ETag".to_owned(), etag.to_owned()));
        r
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serialize onto the wire. Connections are not reused: the gateway
    /// answers `Connection: close` and the client reads to EOF.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        if self.status != 304 {
            write!(w, "Content-Type: {}\r\n", self.content_type)?;
            write!(w, "Content-Length: {}\r\n", self.body.len())?;
        }
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// The standard reason phrase for the codes the gateway emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a string as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query_and_cookies() {
        let req = parse(
            "GET /query?realm=jobs&metric=total%20su&filter=resource%3Drush HTTP/1.1\r\n\
             Host: localhost\r\n\
             Cookie: a=1; xdmod_session=deadbeef; b=2\r\n\
             \r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_param("realm"), Some("jobs"));
        assert_eq!(req.query_param("metric"), Some("total su"));
        assert_eq!(req.query_param("filter"), Some("resource=rush"));
        assert_eq!(req.cookie("xdmod_session"), Some("deadbeef"));
        assert_eq!(req.cookie("missing"), None);
        assert_eq!(req.header("HOST"), Some("localhost"));
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /login HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /%zz HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::Malformed(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn bounds_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(parse(&long_line), Err(HttpError::TooLarge(_))));

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..MAX_HEADERS + 1)
                .map(|i| format!("h{i}: v\r\n"))
                .collect::<String>()
        );
        assert!(matches!(parse(&many_headers), Err(HttpError::TooLarge(_))));

        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&big_body), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn closed_connection_is_distinguished_from_garbage() {
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(parse("GET / HT"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_owned())
            .with_header("ETag", "\"abc\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("ETag: \"abc\"\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::not_modified("\"v1\"").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(!text.contains("Content-Length"));
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}

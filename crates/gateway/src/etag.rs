//! `ETag` plumbing for the query endpoint.
//!
//! The hub's `result_version` (see
//! `xdmod_core::FederationHub::result_version`) folds every satellite's
//! replication watermark plus the warehouse rebuild generation into one
//! `u64` — the exact vector its federated-query cache is keyed on. The
//! gateway renders that stamp as a strong `ETag`, so a dashboard's
//! `If-None-Match` revalidation costs a watermark read, not a federated
//! union: unchanged data is a 304 with an empty body.

/// Render a version stamp as a strong entity tag: `"xd-<hex>"`.
pub fn format_etag(version: u64) -> String {
    format!("\"xd-{version:016x}\"")
}

/// Does an `If-None-Match` header value match this version? Handles the
/// wildcard `*` and comma-separated candidate lists; `W/` weak tags never
/// match (the gateway only mints strong ones).
pub fn if_none_match(header: &str, version: u64) -> bool {
    let current = format_etag(version);
    header
        .split(',')
        .map(str::trim)
        .any(|candidate| candidate == "*" || candidate == current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_tags_round_trip() {
        let tag = format_etag(0xdead_beef);
        assert_eq!(tag, "\"xd-00000000deadbeef\"");
        assert!(if_none_match(&tag, 0xdead_beef));
        assert!(!if_none_match(&tag, 0xdead_bee0));
    }

    #[test]
    fn lists_wildcards_and_weak_tags() {
        let v = 7;
        let tag = format_etag(v);
        assert!(if_none_match(&format!("\"other\", {tag}"), v));
        assert!(if_none_match("*", v));
        assert!(!if_none_match(&format!("W/{tag}"), v));
        assert!(!if_none_match("", v));
    }
}

//! Failure-injection tests for the replication layer: corrupted streams,
//! crashed-and-restarted replicators, epoch changes under a live link,
//! and worker-thread error surfacing.

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;
use xdmod_replication::{LinkConfig, LiveReplicator, LooseReceiver, LooseShipper, Replicator};
use xdmod_warehouse::{
    shared, AggFn, Aggregate, AggregationSpec, CivilDate, ColumnType, Database, DimSpec,
    LogPosition, Period, SchemaBuilder, SharedDatabase, Value,
};

fn satellite(n_rows: usize) -> SharedDatabase {
    let mut db = Database::new();
    db.create_schema("xdmod_x").unwrap();
    db.create_table(
        "xdmod_x",
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 0..n_rows {
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("r".into()), Value::Float(i as f64)]],
        )
        .unwrap();
    }
    shared(db)
}

#[test]
fn replicator_restart_resumes_from_watermark() {
    let src = satellite(5);
    let dst = shared(Database::new());
    let mut rep = Replicator::new(
        Arc::clone(&src),
        Arc::clone(&dst),
        LinkConfig::renaming("xdmod_x", "hub_x"),
    );
    rep.poll().unwrap();
    let watermark = rep.position();
    drop(rep); // "crash"

    src.write()
        .insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("r".into()), Value::Float(99.0)]],
        )
        .unwrap();

    // Restart from the saved watermark: only the new row crosses.
    let mut rep2 = Replicator::new(
        Arc::clone(&src),
        Arc::clone(&dst),
        LinkConfig::renaming("xdmod_x", "hub_x"),
    );
    rep2.seek(watermark).unwrap();
    assert_eq!(rep2.poll().unwrap(), 1);
    assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 6);
}

#[test]
fn corrupted_loose_batch_leaves_receiver_consistent() {
    let src = satellite(3);
    let hub = shared(Database::new());
    let mut shipper = LooseShipper::new(Arc::clone(&src));
    let mut receiver =
        LooseReceiver::new(Arc::clone(&hub), LinkConfig::renaming("xdmod_x", "hub_x"));
    let batch = shipper.export_batch().unwrap();
    // Corrupt the middle of the batch in transit.
    let mut bytes = batch.to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    assert!(receiver.apply_batch(&Bytes::from(bytes)).is_err());
    // The intact original still applies from the receiver's watermark —
    // nothing applied from the corrupt copy may be double-applied.
    let applied = receiver.apply_batch(&batch).unwrap();
    assert!(applied > 0);
    assert_eq!(hub.read().table("hub_x", "jobfact").unwrap().len(), 3);
    assert_eq!(
        src.read()
            .table("xdmod_x", "jobfact")
            .unwrap()
            .content_checksum(),
        hub.read()
            .table("hub_x", "jobfact")
            .unwrap()
            .content_checksum()
    );
}

#[test]
fn source_epoch_rotation_is_surfaced_not_silently_reapplied() {
    // A satellite restored from backup rotates its binlog epoch; a
    // replicator holding an old-epoch watermark re-reads everything,
    // which (by design) would duplicate — Federation::restore_member
    // re-seeks for exactly this reason. Verify the raw behaviour is
    // observable.
    let src = satellite(2);
    let dst = shared(Database::new());
    let mut rep = Replicator::new(
        Arc::clone(&src),
        Arc::clone(&dst),
        LinkConfig::renaming("xdmod_x", "hub_x"),
    );
    rep.poll().unwrap();

    // Simulate restore: rotate epoch and repopulate.
    {
        let mut db = src.write();
        db.reset_for_restore().unwrap();
        db.create_schema("xdmod_x").unwrap();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "xdmod_x",
            "jobfact",
            vec![vec![Value::Str("r".into()), Value::Float(0.0)]],
        )
        .unwrap();
    }
    // Without a re-seek, the whole new generation replays.
    let applied = rep.poll().unwrap();
    assert!(applied >= 3); // schema + table + insert
    assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 3); // 2 old + 1 replayed

    // With a proper re-seek (what Federation::restore_member does), a
    // fresh link skips the restored history.
    let dst2 = shared(Database::new());
    let mut rep2 = Replicator::new(
        Arc::clone(&src),
        Arc::clone(&dst2),
        LinkConfig::renaming("xdmod_x", "hub_x"),
    );
    rep2.seek(src.read().binlog_position()).unwrap();
    assert_eq!(rep2.poll().unwrap(), 0);
}

#[test]
fn live_replicator_surfaces_worker_errors() {
    // Target a database where the schema already exists with a
    // conflicting definition: the apply side must error, and the worker
    // must surface it rather than spin.
    let src = satellite(1);
    let dst = shared({
        let mut db = Database::new();
        db.create_schema("hub_x").unwrap();
        db.create_table(
            "hub_x",
            SchemaBuilder::new("jobfact")
                .required("different_layout", ColumnType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    });
    let rep = Replicator::new(src, dst, LinkConfig::renaming("xdmod_x", "hub_x"));
    let live = LiveReplicator::start(rep, Duration::from_millis(1));
    // Give the worker a moment to hit the conflict.
    for _ in 0..100 {
        if live.last_error().is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let err = live.last_error().expect("worker error surfaced");
    assert!(
        err.to_string().contains("different definition"),
        "actual: {err}"
    );
    let _ = live.stop();
}

#[test]
fn resync_takes_the_rebuild_guard_against_parallel_aggregation() {
    // The race this guards: the hub's parallel rebuild plans aggregate
    // outputs under a read lock, and a resync rewrites the same schema's
    // fact tables before the outputs are applied. `resync_target` bumps
    // the target's rebuild generation inside its write lock, so the
    // apply phase sees a stale RebuildTicket and recomputes from the
    // resynced facts instead of installing the pre-resync view.
    let jan = |day: i64| CivilDate::new(2017, 1, 1).to_epoch() + (day - 1) * 86_400;
    let src = shared({
        let mut db = Database::new();
        db.create_schema("xdmod_x").unwrap();
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .required("end_time", ColumnType::Time)
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..4i64 {
            db.insert(
                "xdmod_x",
                "jobfact",
                vec![vec![
                    Value::Str("r".into()),
                    Value::Float(i as f64),
                    Value::Time(jan(i + 1)),
                ]],
            )
            .unwrap();
        }
        db
    });
    let hub = shared(Database::new());
    let mut rep = Replicator::new(
        Arc::clone(&src),
        Arc::clone(&hub),
        LinkConfig::renaming("xdmod_x", "hub_x"),
    );
    rep.poll().unwrap();

    let spec = AggregationSpec {
        fact_table: "jobfact".into(),
        time_column: "end_time".into(),
        dims: vec![DimSpec::Column("resource".into())],
        measures: vec![
            Aggregate::count("jobs"),
            Aggregate::of(AggFn::Sum, "cpu_hours", "total"),
        ],
        periods: vec![Period::Month],
        table_prefix: None,
    };

    // Phase 1 of the hub's parallel rebuild: compute under a read lock.
    let outputs = {
        let db = hub.read();
        spec.plan_parallel(&db, "hub_x").unwrap()
    };

    // The source gains a row and the link resyncs before phase 2 runs.
    src.write()
        .insert(
            "xdmod_x",
            "jobfact",
            vec![vec![
                Value::Str("r".into()),
                Value::Float(99.0),
                Value::Time(jan(20)),
            ]],
        )
        .unwrap();
    rep.resync_target().unwrap();

    // Phase 2: the guard fires and the aggregates are rebuilt from the
    // resynced facts — installing `outputs` verbatim would freeze the
    // totals at the pre-resync view.
    {
        let mut db = hub.write();
        spec.apply_outputs(&mut db, "hub_x", outputs).unwrap();
    }
    let db = hub.read();
    let agg = db.table("hub_x", "jobfact_by_month").unwrap();
    let idx = agg.schema().column_index("total").unwrap();
    let total: f64 = agg
        .rows()
        .unwrap()
        .iter()
        .map(|r| r[idx].as_f64().unwrap())
        .sum();
    assert_eq!(total, 0.0 + 1.0 + 2.0 + 3.0 + 99.0);

    // With no further ingest, the next rebuild is answered by the cache.
    let again = spec.plan_parallel(&db, "hub_x").unwrap();
    assert!(again.is_cached());
}

#[test]
fn future_epoch_watermark_is_rejected() {
    let src = satellite(1);
    let dst = shared(Database::new());
    let mut rep = Replicator::new(src, dst, LinkConfig::renaming("xdmod_x", "hub_x"));
    // A watermark beyond the source tail is rejected at seek time with a
    // typed error, before a poll can silently read an empty tail.
    let err = rep
        .seek(LogPosition {
            epoch: 42,
            seqno: 7,
        })
        .expect_err("beyond-tail seek must be rejected");
    match err {
        xdmod_replication::ReplicationError::SeekBeyondTail { requested, .. } => {
            assert_eq!(
                requested,
                LogPosition {
                    epoch: 42,
                    seqno: 7
                }
            );
        }
        other => panic!("expected SeekBeyondTail, got {other}"),
    }
    assert!(rep.poll().is_ok(), "the link itself stays usable");
}

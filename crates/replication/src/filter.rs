//! Selective-replication filters.
//!
//! Tungsten supports "selective replication of data from satellite
//! instances" (§II-C1), and the paper's routing strategy (§II-C4) lets
//! "data from certain resources managed by a member instance ... be
//! selectively excluded from a federation", e.g. so "potentially
//! sensitive data does not ever get replicated to the federation hub".
//!
//! A [`ReplicationFilter`] implements both axes:
//!
//! - **table selection** — only listed tables cross the link (the initial
//!   federation release replicates only the HPC Jobs realm);
//! - **resource routing** — rows whose resource column matches an
//!   excluded resource are dropped before the event leaves the satellite.

use std::collections::{BTreeMap, BTreeSet};
use xdmod_warehouse::{EventPayload, Value};

/// Decides which events (and which rows inside them) replicate.
#[derive(Debug, Clone, Default)]
pub struct ReplicationFilter {
    /// When non-empty, only these tables replicate. DDL and DML for other
    /// tables is dropped.
    tables: BTreeSet<String>,
    /// Resources excluded from replication.
    excluded_resources: BTreeSet<String>,
    /// Table name → name of its resource column (used by resource
    /// routing; tables absent from this map are not resource-filtered).
    resource_columns: BTreeMap<String, String>,
    /// Tables a downstream consumer (registered aggregate or hub
    /// group-by) is known to read. A filter that drops one of these
    /// would yield silently-empty hub reports, so the replicator counts
    /// and logs every such drop instead of discarding it unrecorded.
    required_tables: BTreeSet<String>,
}

impl ReplicationFilter {
    /// A filter that passes everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict replication to the listed tables.
    pub fn with_tables<I: IntoIterator<Item = S>, S: Into<String>>(mut self, tables: I) -> Self {
        self.tables = tables.into_iter().map(Into::into).collect();
        self
    }

    /// Declare which column holds the resource name for a table, enabling
    /// resource routing for it.
    pub fn with_resource_column(mut self, table: &str, column: &str) -> Self {
        self.resource_columns
            .insert(table.to_owned(), column.to_owned());
        self
    }

    /// Exclude a resource from replication.
    pub fn exclude_resource(mut self, resource: &str) -> Self {
        self.excluded_resources.insert(resource.to_owned());
        self
    }

    /// Declare tables that downstream aggregates / hub group-bys read.
    /// Dropping one of these is legal but almost always a config bug;
    /// the replicator surfaces it via the
    /// `replication_filtered_required_tables_total` counter.
    pub fn with_required_tables<I: IntoIterator<Item = S>, S: Into<String>>(
        mut self,
        tables: I,
    ) -> Self {
        self.required_tables = tables.into_iter().map(Into::into).collect();
        self
    }

    /// Whether a table passes the table-selection axis.
    pub fn table_passes(&self, table: &str) -> bool {
        self.tables.is_empty() || self.tables.contains(table)
    }

    /// Whether dropping this table starves a known downstream consumer.
    pub fn is_required(&self, table: &str) -> bool {
        self.required_tables.contains(table)
    }

    /// The explicit table selection (empty = everything passes).
    pub fn selected_tables(&self) -> impl Iterator<Item = &str> {
        self.tables.iter().map(String::as_str)
    }

    /// Resources excluded by the routing axis.
    pub fn excluded_resources(&self) -> impl Iterator<Item = &str> {
        self.excluded_resources.iter().map(String::as_str)
    }

    /// Declared downstream-required tables.
    pub fn required_tables(&self) -> impl Iterator<Item = &str> {
        self.required_tables.iter().map(String::as_str)
    }

    /// Required tables the table-selection axis drops — the static form
    /// of the mistake the runtime counter records per-event.
    pub fn dropped_required_tables(&self) -> Vec<String> {
        self.required_tables
            .iter()
            .filter(|t| !self.table_passes(t))
            .cloned()
            .collect()
    }

    /// Apply the filter to an event. Returns `None` when the whole event
    /// is dropped; `InsertBatch` events may pass with a reduced row set.
    pub fn apply(&self, payload: &EventPayload) -> Option<EventPayload> {
        match payload {
            EventPayload::CreateSchema { .. } => Some(payload.clone()),
            EventPayload::CreateTable { def, .. } => {
                self.table_passes(&def.name).then(|| payload.clone())
            }
            EventPayload::Truncate { table, .. } => {
                self.table_passes(table).then(|| payload.clone())
            }
            // Without a schema resolver, resource routing cannot inspect
            // rows; use `apply_resolved` for full filtering.
            EventPayload::InsertBatch { table, .. } => {
                self.table_passes(table).then(|| payload.clone())
            }
        }
    }

    /// Apply the filter to an event, with access to a column resolver
    /// (table → resource-column index) so resource routing can inspect
    /// rows. This is the form the replicator uses.
    pub fn apply_resolved(
        &self,
        payload: &EventPayload,
        column_index: impl Fn(&str, &str) -> Option<usize>,
    ) -> Option<EventPayload> {
        match payload {
            EventPayload::InsertBatch {
                schema,
                table,
                rows,
            } => {
                if !self.table_passes(table) {
                    return None;
                }
                let idx = self
                    .resource_columns
                    .get(table)
                    .and_then(|col| column_index(table, col));
                let rows: Vec<_> = match idx {
                    Some(i) if !self.excluded_resources.is_empty() => rows
                        .iter()
                        .filter(|row| {
                            !matches!(
                                &row[i],
                                Value::Str(s) if self.excluded_resources.contains(s)
                            )
                        })
                        .cloned()
                        .collect(),
                    _ => rows.clone(),
                };
                if rows.is_empty() {
                    return None;
                }
                Some(EventPayload::InsertBatch {
                    schema: schema.clone(),
                    table: table.clone(),
                    rows,
                })
            }
            other => self.apply(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{ColumnType, SchemaBuilder};

    fn insert(table: &str, resources: &[&str]) -> EventPayload {
        EventPayload::InsertBatch {
            schema: "xdmod_x".into(),
            table: table.into(),
            rows: resources
                .iter()
                .map(|r| vec![Value::Str((*r).to_owned()), Value::Float(1.0)])
                .collect(),
        }
    }

    fn resolver(_table: &str, column: &str) -> Option<usize> {
        (column == "resource").then_some(0)
    }

    #[test]
    fn default_filter_passes_everything() {
        let f = ReplicationFilter::all();
        let ev = insert("jobfact", &["a", "b"]);
        assert_eq!(f.apply_resolved(&ev, resolver), Some(ev));
    }

    #[test]
    fn table_selection_drops_other_tables() {
        let f = ReplicationFilter::all().with_tables(["jobfact"]);
        assert!(f.apply_resolved(&insert("jobfact", &["a"]), resolver).is_some());
        assert!(f
            .apply_resolved(&insert("supremm_timeseries", &["a"]), resolver)
            .is_none());
        // DDL follows the same rule.
        let ddl = EventPayload::CreateTable {
            schema: "s".into(),
            def: SchemaBuilder::new("supremm_timeseries")
                .required("job_id", ColumnType::Int)
                .build()
                .unwrap(),
        };
        assert!(f.apply(&ddl).is_none());
    }

    #[test]
    fn create_schema_always_passes() {
        let f = ReplicationFilter::all().with_tables(["jobfact"]);
        let ev = EventPayload::CreateSchema {
            schema: "s".into(),
        };
        assert!(f.apply(&ev).is_some());
    }

    #[test]
    fn resource_routing_drops_excluded_rows() {
        let f = ReplicationFilter::all()
            .with_resource_column("jobfact", "resource")
            .exclude_resource("secret-cluster");
        let ev = insert("jobfact", &["open-cluster", "secret-cluster", "open-cluster"]);
        let out = f.apply_resolved(&ev, resolver).unwrap();
        match out {
            EventPayload::InsertBatch { rows, .. } => {
                assert_eq!(rows.len(), 2);
                for row in rows {
                    assert_ne!(row[0], Value::Str("secret-cluster".into()));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fully_excluded_batch_is_dropped() {
        let f = ReplicationFilter::all()
            .with_resource_column("jobfact", "resource")
            .exclude_resource("secret-cluster");
        let ev = insert("jobfact", &["secret-cluster"]);
        assert!(f.apply_resolved(&ev, resolver).is_none());
    }

    #[test]
    fn tables_without_resource_column_are_not_routed() {
        let f = ReplicationFilter::all().exclude_resource("secret-cluster");
        // No resource column registered for this table: rows pass.
        let ev = insert("jobfact", &["secret-cluster"]);
        assert!(f.apply_resolved(&ev, resolver).is_some());
    }

    #[test]
    fn required_tables_report_static_drops() {
        let f = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_required_tables(["jobfact", "storagefact"]);
        assert!(f.is_required("storagefact"));
        assert!(!f.is_required("cloudfact"));
        assert_eq!(f.dropped_required_tables(), vec!["storagefact".to_owned()]);
        // An unrestricted selection drops nothing.
        let open = ReplicationFilter::all().with_required_tables(["jobfact"]);
        assert!(open.dropped_required_tables().is_empty());
    }

    #[test]
    fn accessors_expose_filter_shape() {
        let f = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .exclude_resource("secret-cluster");
        assert_eq!(f.selected_tables().collect::<Vec<_>>(), vec!["jobfact"]);
        assert_eq!(
            f.excluded_resources().collect::<Vec<_>>(),
            vec!["secret-cluster"]
        );
        assert_eq!(f.required_tables().count(), 0);
    }

    #[test]
    fn unresolvable_column_passes_rows_through() {
        let f = ReplicationFilter::all()
            .with_resource_column("jobfact", "not_a_column")
            .exclude_resource("x");
        let ev = insert("jobfact", &["x"]);
        // Resolver fails; routing degrades to pass-through rather than
        // silently dropping data.
        assert!(f.apply_resolved(&ev, resolver).is_some());
    }
}

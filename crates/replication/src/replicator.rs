//! The Tungsten-style binlog replicator ("tight" federation).
//!
//! "Tungsten reads binary logs on the XDMoD instance databases, copying
//! their tables into new, uniquely named schemas (one schema per XDMoD
//! instance) on the XDMoD federation hub's database. Tungsten supports
//! renaming the data schema during transfer, and selective replication of
//! data from satellite instances, both of which we have opted to do for
//! federation." (§II-C1)
//!
//! A [`Replicator`] tails one source database's binlog from a saved
//! watermark, applies the [`ReplicationFilter`], renames the schema, and
//! applies the surviving events to the target. [`LiveReplicator`] runs the
//! same loop on a background thread — the paper's "live replication".

use crate::error::{panic_detail, ReplicationError};
use crate::filter::ReplicationFilter;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xdmod_telemetry::MetricsRegistry;
use xdmod_warehouse::{LogPosition, Result, SharedDatabase, WarehouseError};

/// Configuration of one replication link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Only events touching this source schema replicate (a satellite's
    /// instance schema). `None` replicates all schemas.
    pub source_schema: Option<String>,
    /// Schema name on the target ("one schema per XDMoD instance" on the
    /// hub). `None` keeps the source name.
    pub rename_to: Option<String>,
    /// Table/resource selection.
    pub filter: ReplicationFilter,
}

impl LinkConfig {
    /// Replicate everything verbatim.
    pub fn passthrough() -> Self {
        LinkConfig {
            source_schema: None,
            rename_to: None,
            filter: ReplicationFilter::all(),
        }
    }

    /// Replicate `source_schema`, renamed on the hub to `rename_to`.
    pub fn renaming(source_schema: &str, rename_to: &str) -> Self {
        LinkConfig {
            source_schema: Some(source_schema.to_owned()),
            rename_to: Some(rename_to.to_owned()),
            filter: ReplicationFilter::all(),
        }
    }

    /// Attach a filter.
    pub fn with_filter(mut self, filter: ReplicationFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// Statistics of a replication link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Binlog events read from the source.
    pub events_read: u64,
    /// Events applied to the target (after filtering).
    pub events_applied: u64,
    /// Events dropped by the filter.
    pub events_filtered: u64,
}

/// A poll-driven replication link between two databases.
pub struct Replicator {
    source: SharedDatabase,
    target: SharedDatabase,
    config: LinkConfig,
    position: LogPosition,
    stats: LinkStats,
    telemetry: MetricsRegistry,
    link_name: String,
}

impl Replicator {
    /// Create a link starting at the beginning of the source's binlog.
    pub fn new(source: SharedDatabase, target: SharedDatabase, config: LinkConfig) -> Self {
        // Default link label: the hub-side schema, else the source schema,
        // else "all" for a passthrough link.
        let link_name = config
            .rename_to
            .clone()
            .or_else(|| config.source_schema.clone())
            .unwrap_or_else(|| "all".to_owned());
        Replicator {
            source,
            target,
            config,
            position: LogPosition::START,
            stats: LinkStats::default(),
            telemetry: MetricsRegistry::disabled(),
            link_name,
        }
    }

    /// Attach a metrics registry, labelling this link's metrics
    /// (`replication_events_*_total{link=..}`, `replication_lag_events`)
    /// with `link`.
    pub fn with_telemetry(mut self, telemetry: MetricsRegistry, link: &str) -> Self {
        self.telemetry = telemetry;
        self.link_name = link.to_owned();
        self
    }

    /// The registry this link reports into.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Label used on this link's metrics.
    pub fn link_name(&self) -> &str {
        &self.link_name
    }

    /// Current watermark (position of the last replicated source event).
    pub fn position(&self) -> LogPosition {
        self.position
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Replication lag in *events*: how far the source binlog's head is
    /// ahead of this link's watermark. After an epoch rotation on the
    /// source (restore), the whole new generation counts as backlog.
    pub fn lag_events(&self) -> u64 {
        let head = self.source.read().binlog_position();
        if head.epoch == self.position.epoch {
            head.seqno.saturating_sub(self.position.seqno)
        } else {
            head.seqno
        }
    }

    /// Read, filter, rename, and apply everything new. Returns how many
    /// events were applied. Idempotent when the source is quiescent.
    ///
    /// With telemetry attached, each poll updates the per-link
    /// `replication_events_{read,applied,filtered}_total` counters and the
    /// `replication_lag_events` gauge (even on error, so a stuck link is
    /// visible as a growing gauge).
    pub fn poll(&mut self) -> Result<usize> {
        let before = self.stats;
        let result = self.poll_inner();
        if self.telemetry.is_enabled() {
            let link: &[(&str, &str)] = &[("link", &self.link_name)];
            let d = self.stats;
            self.telemetry
                .counter("replication_events_read_total", link)
                .add(d.events_read - before.events_read);
            self.telemetry
                .counter("replication_events_applied_total", link)
                .add(d.events_applied - before.events_applied);
            self.telemetry
                .counter("replication_events_filtered_total", link)
                .add(d.events_filtered - before.events_filtered);
            self.telemetry
                .gauge("replication_lag_events", link)
                .set(self.lag_events() as f64);
        }
        result
    }

    fn poll_inner(&mut self) -> Result<usize> {
        // Snapshot the new events (and the schemas needed for resource
        // routing) under a read lock, then release it before taking the
        // target's write lock — the two databases may be the same object
        // in a loopback topology, and lock ordering must not deadlock.
        let events = {
            let src = self.source.read();
            src.binlog_after(self.position)?
        };
        if events.is_empty() {
            return Ok(0);
        }
        let mut applied = 0usize;
        for ev in events {
            self.stats.events_read += 1;
            if let Some(want) = &self.config.source_schema {
                if ev.payload.schema() != want {
                    self.stats.events_filtered += 1;
                    self.position = ev.position;
                    continue;
                }
            }
            let source = &self.source;
            let resolved = self.config.filter.apply_resolved(&ev.payload, |table, column| {
                let src = source.read();
                let schema_name = ev.payload.schema();
                src.table(schema_name, table)
                    .ok()
                    .and_then(|t| t.schema().column_index(column).ok())
            });
            let Some(filtered) = resolved else {
                self.stats.events_filtered += 1;
                // A drop the config declared *required* downstream is the
                // classic silently-empty-hub-report bug: legal, but almost
                // certainly a mistake. Count and log it instead of letting
                // it vanish into the generic filtered total.
                if let Some(table) = ev.payload.table() {
                    if self.config.filter.is_required(table) && self.telemetry.is_enabled() {
                        self.telemetry
                            .counter(
                                "replication_filtered_required_tables_total",
                                &[("link", &self.link_name), ("table", table)],
                            )
                            .inc();
                        self.telemetry.event(
                            "replication.filtered_required_table",
                            &format!(
                                "{}: filter dropped table {table:?} that a registered \
                                 aggregate or hub group-by reads",
                                self.link_name
                            ),
                        );
                    }
                }
                self.position = ev.position;
                continue;
            };
            let outgoing = match &self.config.rename_to {
                Some(new_schema) => filtered.with_schema(new_schema),
                None => filtered,
            };
            // Apply first, then advance the watermark: a failed event
            // must be retried (or surfaced) on the next poll, never
            // silently skipped.
            self.target.write().apply_event(&outgoing)?;
            self.position = ev.position;
            self.stats.events_applied += 1;
            applied += 1;
        }
        Ok(applied)
    }

    /// Re-seed the watermark (e.g. after restoring the target from a
    /// backup). Replays are safe: DDL application is idempotent, but
    /// replayed inserts will duplicate rows, so callers should only
    /// rewind to positions consistent with the target's contents.
    pub fn seek(&mut self, position: LogPosition) {
        self.position = position;
    }
}

/// A replicator running on a background thread, polling at an interval —
/// "live replication to the central federation hub database".
///
/// Each iteration polls (unless paused), then samples replication lag in
/// both units into the link's registry: `replication_lag_events` (binlog
/// positions behind) and `replication_lag_seconds` (wall-clock time since
/// the link first fell behind). Apply errors are surfaced — counted,
/// recorded as `replication.error` events, and kept in
/// [`LiveReplicator::last_error`] — and the loop keeps polling: the
/// watermark only advances past applied events, so a transient failure
/// retries on the next iteration instead of killing the link.
pub struct LiveReplicator {
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    handle: Option<JoinHandle<Replicator>>,
    /// Link label, kept on this side of the thread boundary so a panicked
    /// worker can still be named in the resulting [`ReplicationError`].
    link_name: String,
    /// Last error observed by the worker, if any.
    last_error: Arc<Mutex<Option<WarehouseError>>>,
}

/// Per-iteration lag sampling state, local to the worker thread.
struct LagSampler {
    /// When the link first fell behind (None while caught up).
    behind_since: Option<Instant>,
    /// Last lag value recorded as an event, for dedup while idle at 0.
    last_recorded: Option<u64>,
}

impl LagSampler {
    fn new() -> Self {
        LagSampler {
            behind_since: None,
            last_recorded: None,
        }
    }

    fn sample(&mut self, rep: &Replicator) {
        let lag = rep.lag_events();
        let lag_secs = if lag == 0 {
            self.behind_since = None;
            0.0
        } else {
            self.behind_since
                .get_or_insert_with(Instant::now)
                .elapsed()
                .as_secs_f64()
        };
        let telemetry = rep.telemetry();
        if telemetry.is_enabled() {
            let link: &[(&str, &str)] = &[("link", rep.link_name())];
            telemetry
                .gauge("replication_lag_events", link)
                .set(lag as f64);
            telemetry
                .gauge("replication_lag_seconds", link)
                .set(lag_secs);
            // Record a lag-series event on every sample while behind, plus
            // the one sample where the link returns to 0 — but not on every
            // idle iteration, which would churn the event ring for nothing.
            if lag > 0 || self.last_recorded.is_some_and(|l| l != lag) {
                telemetry.event_with(
                    "replication.lag",
                    rep.link_name(),
                    &[("lag_events", lag as f64), ("lag_seconds", lag_secs)],
                );
            }
        }
        self.last_recorded = Some(lag);
    }
}

impl LiveReplicator {
    /// Spawn the polling loop.
    pub fn start(mut replicator: Replicator, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let link_name = replicator.link_name().to_owned();
        let last_error: Arc<Mutex<Option<WarehouseError>>> = Arc::new(Mutex::new(None));
        let stop2 = Arc::clone(&stop);
        let paused2 = Arc::clone(&paused);
        let err2 = Arc::clone(&last_error);
        let handle = std::thread::spawn(move || {
            let mut lag = LagSampler::new();
            let record_err = |rep: &Replicator, e: &WarehouseError| {
                let telemetry = rep.telemetry();
                if telemetry.is_enabled() {
                    telemetry
                        .counter(
                            "replication_apply_errors_total",
                            &[("link", rep.link_name())],
                        )
                        .inc();
                    telemetry.event(
                        "replication.error",
                        &format!("{}: {e}", rep.link_name()),
                    );
                }
            };
            while !stop2.load(Ordering::Acquire) {
                if !paused2.load(Ordering::Acquire) {
                    if let Err(e) = replicator.poll() {
                        record_err(&replicator, &e);
                        *err2.lock() = Some(e);
                    }
                }
                lag.sample(&replicator);
                std::thread::park_timeout(interval);
            }
            // Final drain so a stop() immediately after a write loses
            // nothing (even if the link was paused when stopped).
            if let Err(e) = replicator.poll() {
                record_err(&replicator, &e);
                *err2.lock() = Some(e);
            }
            lag.sample(&replicator);
            replicator
        });
        LiveReplicator {
            stop,
            paused,
            handle: Some(handle),
            link_name,
            last_error,
        }
    }

    /// Suspend polling without tearing the link down. Lag keeps being
    /// sampled, so a paused link under writes shows a growing
    /// `replication_lag_events` gauge — the scenario an operator dashboard
    /// must make visible.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Release);
    }

    /// Resume polling after [`LiveReplicator::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Release);
        if let Some(handle) = &self.handle {
            handle.thread().unpark();
        }
    }

    /// True while polling is suspended.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    /// Any error the worker hit.
    pub fn last_error(&self) -> Option<WarehouseError> {
        self.last_error.lock().clone()
    }

    /// Stop the loop, drain outstanding events, and return the link (with
    /// its watermark and stats) for inspection or restart.
    ///
    /// A panicked worker surfaces as
    /// [`ReplicationError::LinkPanicked`] instead of propagating the
    /// panic into the caller: the hub must be able to note one dead link
    /// and keep operating the rest of the federation.
    pub fn stop(mut self) -> std::result::Result<Replicator, ReplicationError> {
        self.stop.store(true, Ordering::Release);
        let Some(handle) = self.handle.take() else {
            // Unreachable by construction (`stop` consumes `self` and the
            // handle is only vacated here or in Drop), but kept typed
            // rather than panicking per the workspace invariant.
            return Err(ReplicationError::LinkPanicked {
                link: self.link_name.clone(),
                detail: "link already stopped".to_owned(),
            });
        };
        handle.thread().unpark();
        handle.join().map_err(|payload| ReplicationError::LinkPanicked {
            link: self.link_name.clone(),
            detail: panic_detail(payload.as_ref()),
        })
    }
}

impl Drop for LiveReplicator {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{shared, ColumnType, Database, SchemaBuilder, Value};

    fn satellite(schema: &str, resources: &[&str]) -> SharedDatabase {
        let mut db = Database::new();
        db.create_schema(schema).unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("supremm_jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_user", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = resources
            .iter()
            .map(|r| vec![Value::Str((*r).to_owned()), Value::Float(1.0)])
            .collect();
        db.insert(schema, "jobfact", rows.clone()).unwrap();
        db.insert(schema, "supremm_jobfact", rows).unwrap();
        shared(db)
    }

    #[test]
    fn poll_replicates_with_rename() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let applied = rep.poll().unwrap();
        assert!(applied >= 4); // schema + 2 tables + 2 inserts (>=)
        let dst = dst.read();
        assert!(dst.has_schema("hub_x"));
        assert_eq!(dst.table("hub_x", "jobfact").unwrap().len(), 1);
        // Raw data unaltered.
        assert_eq!(
            src.read().table("xdmod_x", "jobfact").unwrap().content_checksum(),
            dst.table("hub_x", "jobfact").unwrap().content_checksum()
        );
    }

    #[test]
    fn poll_is_incremental_and_idempotent_when_quiet() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        assert_eq!(rep.poll().unwrap(), 0); // nothing new
        // New write replicates exactly once.
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(2.0)]],
            )
            .unwrap();
        assert_eq!(rep.poll().unwrap(), 1);
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn jobs_realm_only_filter_drops_supremm() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all().with_tables(["jobfact"]);
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let dst = dst.read();
        assert!(dst.table("hub_x", "jobfact").is_ok());
        assert!(dst.table("hub_x", "supremm_jobfact").is_err());
        assert!(rep.stats().events_filtered > 0);
    }

    #[test]
    fn resource_routing_excludes_sensitive_rows() {
        let src = satellite("xdmod_x", &["open", "secret", "open"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_resource_column("jobfact", "resource")
            .exclude_resource("secret");
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let dst = dst.read();
        let t = dst.table("hub_x", "jobfact").unwrap();
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            assert_ne!(row[0], Value::Str("secret".into()));
        }
    }

    #[test]
    fn source_schema_selection() {
        let src = satellite("xdmod_x", &["comet"]);
        src.write().create_schema("private").unwrap();
        src.write()
            .create_table(
                "private",
                SchemaBuilder::new("users")
                    .required("name", ColumnType::Str)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        // "user profile information [is] presently excluded": the private
        // schema never crossed.
        assert!(!dst.read().has_schema("private"));
        assert!(!dst.read().has_schema("hub_x_private"));
    }

    #[test]
    fn fan_in_two_satellites_one_hub() {
        let x = satellite("xdmod_x", &["resource-l"]);
        let y = satellite("xdmod_y", &["resource-m", "resource-n"]);
        let hub = shared(Database::new());
        let mut rx = Replicator::new(x, Arc::clone(&hub), LinkConfig::renaming("xdmod_x", "hub_x"));
        let mut ry = Replicator::new(y, Arc::clone(&hub), LinkConfig::renaming("xdmod_y", "hub_y"));
        rx.poll().unwrap();
        ry.poll().unwrap();
        let hub = hub.read();
        assert_eq!(hub.schema_names(), vec!["hub_x", "hub_y"]);
        assert_eq!(hub.table("hub_x", "jobfact").unwrap().len(), 1);
        assert_eq!(hub.table("hub_y", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn multi_hub_same_source() {
        // §II-C4: "data from all resources could be replicated to multiple
        // federation hubs, to provide a live backup or load-balancing
        // strategy".
        let src = satellite("xdmod_x", &["comet"]);
        let hub_a = shared(Database::new());
        let hub_b = shared(Database::new());
        let mut ra = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&hub_a),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let mut rb = Replicator::new(
            src,
            Arc::clone(&hub_b),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        ra.poll().unwrap();
        rb.poll().unwrap();
        assert_eq!(
            hub_a.read().table("hub_x", "jobfact").unwrap().content_checksum(),
            hub_b.read().table("hub_x", "jobfact").unwrap().content_checksum()
        );
    }

    #[test]
    fn live_replicator_streams_concurrent_writes() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        for i in 0..50 {
            src.write()
                .insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str("comet".into()), Value::Float(f64::from(i))]],
                )
                .unwrap();
        }
        let rep = live.stop().unwrap();
        assert!(rep.stats().events_applied >= 52); // 50 inserts + DDL
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 51);
        assert_eq!(
            src.read().table("xdmod_x", "jobfact").unwrap().content_checksum(),
            dst.read().table("hub_x", "jobfact").unwrap().content_checksum()
        );
    }

    /// Wait (bounded) until `cond` holds, re-checking every millisecond.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..5000 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn poll_reports_per_link_counters_and_lag_gauge() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let mut rep = Replicator::new(
            Arc::clone(&src),
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        rep.poll().unwrap();
        let snap = reg.snapshot();
        let link = &[("link", "site-x")];
        assert_eq!(
            snap.counter("replication_events_read_total", link),
            Some(rep.stats().events_read)
        );
        assert_eq!(
            snap.counter("replication_events_applied_total", link),
            Some(rep.stats().events_applied)
        );
        // Caught up: the lag gauge reads zero.
        assert_eq!(snap.gauge("replication_lag_events", link), Some(0.0));
        assert_eq!(rep.lag_events(), 0);
    }

    #[test]
    fn paused_live_link_shows_growing_lag_then_recovers() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        let link = &[("link", "site-x")];

        // Let the link catch up, then pause it.
        assert!(eventually(|| reg
            .snapshot()
            .gauge("replication_lag_events", link)
            == Some(0.0)));
        live.pause();
        assert!(live.is_paused());

        // Writes while paused pile up as backlog...
        for i in 0..5 {
            src.write()
                .insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str("comet".into()), Value::Float(f64::from(i))]],
                )
                .unwrap();
        }
        // ...and the sampler reports them: 5 events behind, nonzero
        // wall-clock lag, and a replication.lag event series.
        assert!(eventually(|| reg
            .snapshot()
            .gauge("replication_lag_events", link)
            == Some(5.0)));
        assert!(eventually(
            || reg.snapshot().gauge("replication_lag_seconds", link) > Some(0.0)
        ));
        let lag_events = reg.events_of_kind("replication.lag");
        assert!(!lag_events.is_empty());
        assert!(lag_events
            .iter()
            .any(|e| e.message == "site-x" && e.field("lag_events") == Some(5.0)));

        // Resuming drains the backlog and both gauges return to zero.
        live.resume();
        assert!(eventually(|| {
            let snap = reg.snapshot();
            snap.gauge("replication_lag_events", link) == Some(0.0)
                && snap.gauge("replication_lag_seconds", link) == Some(0.0)
        }));
        let rep = live.stop().unwrap();
        assert!(rep.stats().events_applied >= 5);
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 6);
    }

    #[test]
    fn apply_errors_are_surfaced_and_do_not_kill_the_loop() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        // Poison the target: hub_x.jobfact exists with a different layout,
        // so every apply of the source's CreateTable event fails.
        let mut poisoned = Database::new();
        poisoned.create_schema("hub_x").unwrap();
        poisoned
            .create_table(
                "hub_x",
                SchemaBuilder::new("jobfact")
                    .required("something_else", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let dst = shared(poisoned);
        let reg = MetricsRegistry::new();
        let rep = Replicator::new(
            src,
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        // The loop keeps retrying (counter grows past 1) instead of dying
        // on the first failure, and the error is inspectable live.
        assert!(eventually(|| reg
            .snapshot()
            .counter("replication_apply_errors_total", &[("link", "site-x")])
            .unwrap_or(0)
            > 1));
        assert!(live.last_error().is_some());
        assert!(!reg.events_of_kind("replication.error").is_empty());
        let rep = live.stop().unwrap();
        // The watermark never advanced past the failing event.
        assert_eq!(rep.stats().events_applied, 0);
    }

    #[test]
    fn filtered_required_table_is_counted_and_logged() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        // supremm_jobfact is declared required downstream but the table
        // selection drops it — the silently-empty-report misconfiguration.
        let filter = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_required_tables(["jobfact", "supremm_jobfact"]);
        let reg = MetricsRegistry::new();
        let mut rep = Replicator::new(
            src,
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        )
        .with_telemetry(reg.clone(), "site-x");
        rep.poll().unwrap();
        let dropped = reg
            .snapshot()
            .counter(
                "replication_filtered_required_tables_total",
                &[("link", "site-x"), ("table", "supremm_jobfact")],
            )
            .unwrap_or(0);
        // CreateTable + InsertBatch for supremm_jobfact both count.
        assert_eq!(dropped, 2);
        let events = reg.events_of_kind("replication.filtered_required_table");
        assert!(!events.is_empty());
        assert!(events[0].message.contains("supremm_jobfact"));
        // Tables that were never declared required stay out of the counter.
        assert_eq!(
            reg.snapshot().counter(
                "replication_filtered_required_tables_total",
                &[("link", "site-x"), ("table", "jobfact")],
            ),
            None
        );
    }

    #[test]
    fn stop_surfaces_worker_panic_as_typed_error() {
        // A replicator whose source handle is poisoned mid-flight is hard
        // to arrange; instead drive the public surface: a healthy link
        // stops cleanly (Ok), and the error type carries the link label
        // for the panicked case (unit-tested in `error.rs`).
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let rep = Replicator::new(src, dst, LinkConfig::renaming("xdmod_x", "hub_x"));
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        let stopped = live.stop();
        assert!(stopped.is_ok());
        assert_eq!(stopped.unwrap().link_name(), "hub_x");
    }

    #[test]
    fn stats_account_for_every_event() {
        let src = satellite("xdmod_x", &["a", "b"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all().with_tables(["jobfact"]);
        let mut rep = Replicator::new(
            src,
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let s = rep.stats();
        assert_eq!(s.events_read, s.events_applied + s.events_filtered);
    }
}

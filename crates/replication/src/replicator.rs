//! The Tungsten-style binlog replicator ("tight" federation).
//!
//! "Tungsten reads binary logs on the XDMoD instance databases, copying
//! their tables into new, uniquely named schemas (one schema per XDMoD
//! instance) on the XDMoD federation hub's database. Tungsten supports
//! renaming the data schema during transfer, and selective replication of
//! data from satellite instances, both of which we have opted to do for
//! federation." (§II-C1)
//!
//! A [`Replicator`] tails one source database's binlog from a saved
//! watermark, applies the [`ReplicationFilter`], renames the schema, and
//! applies the surviving events to the target. [`LiveReplicator`] runs the
//! same loop on a background thread — the paper's "live replication".

use crate::error::{panic_detail, ReplicationError};
use crate::filter::ReplicationFilter;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xdmod_chaos::{DeterministicRng, FaultInjector, FaultKind, FaultPoint};
use xdmod_telemetry::MetricsRegistry;
use xdmod_warehouse::{LogPosition, Result, SharedDatabase, WarehouseError};

/// Configuration of one replication link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Only events touching this source schema replicate (a satellite's
    /// instance schema). `None` replicates all schemas.
    pub source_schema: Option<String>,
    /// Schema name on the target ("one schema per XDMoD instance" on the
    /// hub). `None` keeps the source name.
    pub rename_to: Option<String>,
    /// Table/resource selection.
    pub filter: ReplicationFilter,
}

impl LinkConfig {
    /// Replicate everything verbatim.
    pub fn passthrough() -> Self {
        LinkConfig {
            source_schema: None,
            rename_to: None,
            filter: ReplicationFilter::all(),
        }
    }

    /// Replicate `source_schema`, renamed on the hub to `rename_to`.
    pub fn renaming(source_schema: &str, rename_to: &str) -> Self {
        LinkConfig {
            source_schema: Some(source_schema.to_owned()),
            rename_to: Some(rename_to.to_owned()),
            filter: ReplicationFilter::all(),
        }
    }

    /// Attach a filter.
    pub fn with_filter(mut self, filter: ReplicationFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// Statistics of a replication link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Binlog events read from the source.
    pub events_read: u64,
    /// Events applied to the target (after filtering).
    pub events_applied: u64,
    /// Events dropped by the filter.
    pub events_filtered: u64,
    /// Times the link repaired the *source* binlog's damaged tail (crash
    /// recovery) before resuming its read. A nonzero delta between polls
    /// tells the supervisor the source lost records and the hub may need
    /// a checksum resync.
    pub source_repairs: u64,
}

/// A poll-driven replication link between two databases.
pub struct Replicator {
    source: SharedDatabase,
    target: SharedDatabase,
    config: LinkConfig,
    position: LogPosition,
    stats: LinkStats,
    telemetry: MetricsRegistry,
    link_name: String,
    /// Fault injector consulted at the transport point of every poll.
    chaos: Option<FaultInjector>,
}

impl Replicator {
    /// Create a link starting at the beginning of the source's binlog.
    pub fn new(source: SharedDatabase, target: SharedDatabase, config: LinkConfig) -> Self {
        // Default link label: the hub-side schema, else the source schema,
        // else "all" for a passthrough link.
        let link_name = config
            .rename_to
            .clone()
            .or_else(|| config.source_schema.clone())
            .unwrap_or_else(|| "all".to_owned());
        Replicator {
            source,
            target,
            config,
            position: LogPosition::START,
            stats: LinkStats::default(),
            telemetry: MetricsRegistry::disabled(),
            link_name,
            chaos: None,
        }
    }

    /// In-place form of [`Replicator::with_chaos`], for links already
    /// wired into a federation.
    pub fn set_chaos(&mut self, injector: FaultInjector) {
        self.chaos = Some(injector);
    }

    /// Attach a fault injector. The injector is consulted once per poll
    /// at the [`FaultPoint::Transport`] point (target = the link label):
    /// transient and link-down faults surface as [`WarehouseError::Io`]
    /// from the poll, stalls sleep in place, and physical binlog damage
    /// ([`FaultKind::CorruptTailByte`], [`FaultKind::TruncateTail`]) is
    /// executed against the *source* database — the transport is the one
    /// place in the stack that holds write access to the source handle.
    pub fn with_chaos(mut self, injector: FaultInjector) -> Self {
        self.chaos = Some(injector);
        self
    }

    /// Attach a metrics registry, labelling this link's metrics
    /// (`replication_events_*_total{link=..}`, `replication_lag_events`)
    /// with `link`.
    pub fn with_telemetry(mut self, telemetry: MetricsRegistry, link: &str) -> Self {
        self.telemetry = telemetry;
        self.link_name = link.to_owned();
        self
    }

    /// The registry this link reports into.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// Label used on this link's metrics.
    pub fn link_name(&self) -> &str {
        &self.link_name
    }

    /// Current watermark (position of the last replicated source event).
    pub fn position(&self) -> LogPosition {
        self.position
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Replication lag in *events*: how far the source binlog's head is
    /// ahead of this link's watermark. After an epoch rotation on the
    /// source (restore), the whole new generation counts as backlog.
    pub fn lag_events(&self) -> u64 {
        let head = self.source.read().binlog_position();
        if head.epoch == self.position.epoch {
            head.seqno.saturating_sub(self.position.seqno)
        } else {
            head.seqno
        }
    }

    /// Read, filter, rename, and apply everything new. Returns how many
    /// events were applied. Idempotent when the source is quiescent.
    ///
    /// With telemetry attached, each poll updates the per-link
    /// `replication_events_{read,applied,filtered}_total` counters and the
    /// `replication_lag_events` gauge (even on error, so a stuck link is
    /// visible as a growing gauge).
    pub fn poll(&mut self) -> Result<usize> {
        let before = self.stats;
        let result = self.poll_inner();
        if self.telemetry.is_enabled() {
            let link: &[(&str, &str)] = &[("link", &self.link_name)];
            let d = self.stats;
            self.telemetry
                .counter("replication_events_read_total", link)
                .add(d.events_read - before.events_read);
            self.telemetry
                .counter("replication_events_applied_total", link)
                .add(d.events_applied - before.events_applied);
            self.telemetry
                .counter("replication_events_filtered_total", link)
                .add(d.events_filtered - before.events_filtered);
            self.telemetry
                .gauge("replication_lag_events", link)
                .set(self.lag_events() as f64);
        }
        result
    }

    /// Consult the fault injector at the transport point. Transient and
    /// link-down faults surface as errors; stalls sleep in place; binlog
    /// damage kinds mutate the source log and let the poll proceed into
    /// the damage (exercising the repair path).
    fn transport_fault(&mut self) -> Result<()> {
        let Some(injector) = &self.chaos else {
            return Ok(());
        };
        match injector.next_fault(FaultPoint::Transport, &self.link_name) {
            None => Ok(()),
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                Ok(())
            }
            Some(FaultKind::CorruptTailByte) => {
                self.source.write().corrupt_binlog_tail_byte();
                Ok(())
            }
            Some(FaultKind::TruncateTail { bytes }) => {
                self.source.write().truncate_binlog_tail(bytes as usize);
                Ok(())
            }
            Some(kind @ (FaultKind::Transient | FaultKind::LinkDown)) => Err(WarehouseError::Io(
                format!("injected {kind} on link {}", self.link_name),
            )),
        }
    }

    /// Read everything after the watermark, repairing the source binlog's
    /// tail and retrying the read once if the first attempt found
    /// corruption. Dropped records are crash casualties: the repair keeps
    /// every intact frame before the damage, and the retried read resumes
    /// from the surviving prefix.
    fn read_source_events(&mut self) -> Result<Vec<xdmod_warehouse::BinlogEvent>> {
        let first = {
            let src = self.source.read();
            src.binlog_after(self.position)
        };
        let detail = match first {
            Ok(events) => return Ok(events),
            Err(WarehouseError::CorruptBinlog(detail)) => detail,
            Err(e @ WarehouseError::CompactedAway { .. }) => {
                // Snapshot-triggered compaction deleted the records this
                // watermark still needs. No repair or retry can bring them
                // back — the link must be rebuilt from the source's present
                // state (snapshot + surviving tail), which is exactly what
                // [`Replicator::resync_target`] does. Make the condition
                // loudly visible and surface the typed error so the
                // supervisor resyncs instead of hot-looping the poll.
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter(
                            "replication_compacted_reads_total",
                            &[("link", &self.link_name)],
                        )
                        .inc();
                    self.telemetry.event(
                        "replication.compacted_away",
                        &format!(
                            "{}: watermark {} fell below the source's compaction \
                             horizon — resync required",
                            self.link_name, self.position
                        ),
                    );
                }
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        let repair = self.source.write().repair_binlog();
        if repair.is_clean() {
            // Nothing on the source side to fix (e.g. the corruption the
            // read reported is a future-epoch watermark, not tail damage)
            // — propagate so the supervisor can resync instead.
            return Err(WarehouseError::CorruptBinlog(detail));
        }
        self.stats.source_repairs += 1;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter(
                    "replication_source_repairs_total",
                    &[("link", &self.link_name)],
                )
                .inc();
            self.telemetry.event_with(
                "replication.source_repaired",
                &format!("{}: source binlog tail repaired ({repair})", self.link_name),
                &[
                    ("dropped_records", repair.dropped_records as f64),
                    ("dropped_bytes", repair.dropped_bytes as f64),
                ],
            );
        }
        let src = self.source.read();
        src.binlog_after(self.position)
    }

    fn poll_inner(&mut self) -> Result<usize> {
        self.transport_fault()?;
        // Snapshot the new events (and the schemas needed for resource
        // routing) under a read lock, then release it before taking the
        // target's write lock — the two databases may be the same object
        // in a loopback topology, and lock ordering must not deadlock.
        let events = self.read_source_events()?;
        if events.is_empty() {
            return Ok(0);
        }
        let mut applied = 0usize;
        for ev in events {
            self.stats.events_read += 1;
            if let Some(want) = &self.config.source_schema {
                if ev.payload.schema() != want {
                    self.stats.events_filtered += 1;
                    self.position = ev.position;
                    continue;
                }
            }
            let source = &self.source;
            let resolved = self
                .config
                .filter
                .apply_resolved(&ev.payload, |table, column| {
                    let src = source.read();
                    let schema_name = ev.payload.schema();
                    src.table(schema_name, table)
                        .ok()
                        .and_then(|t| t.schema().column_index(column).ok())
                });
            let Some(filtered) = resolved else {
                self.stats.events_filtered += 1;
                // A drop the config declared *required* downstream is the
                // classic silently-empty-hub-report bug: legal, but almost
                // certainly a mistake. Count and log it instead of letting
                // it vanish into the generic filtered total.
                if let Some(table) = ev.payload.table() {
                    if self.config.filter.is_required(table) && self.telemetry.is_enabled() {
                        self.telemetry
                            .counter(
                                "replication_filtered_required_tables_total",
                                &[("link", &self.link_name), ("table", table)],
                            )
                            .inc();
                        self.telemetry.event(
                            "replication.filtered_required_table",
                            &format!(
                                "{}: filter dropped table {table:?} that a registered \
                                 aggregate or hub group-by reads",
                                self.link_name
                            ),
                        );
                    }
                }
                self.position = ev.position;
                continue;
            };
            let outgoing = match &self.config.rename_to {
                Some(new_schema) => filtered.with_schema(new_schema),
                None => filtered,
            };
            // Apply first, then advance the watermark: a failed event
            // must be retried (or surfaced) on the next poll, never
            // silently skipped.
            self.target.write().apply_event(&outgoing)?;
            self.position = ev.position;
            self.stats.events_applied += 1;
            applied += 1;
        }
        Ok(applied)
    }

    /// Re-seed the watermark (e.g. after restoring the target from a
    /// backup). Replays are safe: DDL application is idempotent, but
    /// replayed inserts will duplicate rows, so callers should only
    /// rewind to positions consistent with the target's contents.
    ///
    /// A position *beyond* the source binlog's current tail is rejected
    /// with [`ReplicationError::SeekBeyondTail`] instead of being
    /// accepted (the old behaviour): a beyond-tail watermark can never
    /// match a record, so the link would silently stall forever — the
    /// caller must resync instead. Rewinds (including to an older epoch,
    /// the restore case) remain accepted.
    pub fn seek(&mut self, position: LogPosition) -> std::result::Result<(), ReplicationError> {
        let tail = self.source.read().binlog_position();
        if position.epoch > tail.epoch
            || (position.epoch == tail.epoch && position.seqno > tail.seqno)
        {
            return Err(ReplicationError::SeekBeyondTail {
                link: self.link_name.clone(),
                requested: position,
                tail,
            });
        }
        self.position = position;
        Ok(())
    }

    /// True when the watermark points beyond the source binlog's current
    /// tail. A diverged link can never make progress by polling — the
    /// source either lost its tail to a crash repair or was rebuilt —
    /// and `binlog_after` returns an empty batch for a same-epoch
    /// beyond-tail watermark, so without this check the stall is
    /// *silent*. The supervisor uses it to decide on a resync.
    pub fn is_diverged(&self) -> bool {
        let tail = self.source.read().binlog_position();
        self.position.epoch > tail.epoch
            || (self.position.epoch == tail.epoch && self.position.seqno > tail.seqno)
    }

    /// True when the watermark points *below* the source's binlog
    /// compaction horizon (or into an older epoch while the source has
    /// compacted): the records this link still needs were deleted by
    /// snapshot-triggered compaction, so polling returns
    /// [`WarehouseError::CompactedAway`] forever. Like
    /// [`Replicator::is_diverged`], the cure is
    /// [`Replicator::resync_target`], which rebuilds the target from the
    /// source's live tables — the source's snapshot-plus-tail state.
    pub fn is_compacted_away(&self) -> bool {
        let src = self.source.read();
        let horizon = src.compaction_horizon();
        if horizon == 0 {
            return false;
        }
        let head = src.binlog_position();
        self.position.epoch < head.epoch
            || (self.position.epoch == head.epoch && self.position.seqno < horizon)
    }

    /// Checksum-grade resync: rebuild the target schema from the source's
    /// *current table contents*, then fast-forward the watermark to the
    /// source binlog head.
    ///
    /// Binlog replay cannot repair a diverged link: after a tail repair
    /// the source log permanently lacks the dropped records' events while
    /// the source *tables* still hold (or legitimately lost) those rows,
    /// so no replay position reproduces the source state. Copying the
    /// live tables — through the same [`ReplicationFilter`] path ordinary
    /// replication uses, so resource routing and table selection still
    /// hold — is the only operation that restores the invariant the
    /// consistency checker verifies.
    pub fn resync_target(&mut self) -> Result<ResyncReport> {
        let Some(source_schema) = self.config.source_schema.clone() else {
            return Err(WarehouseError::InvalidQuery(
                "resync requires a link with a declared source schema".into(),
            ));
        };
        let target_schema = self
            .config
            .rename_to
            .clone()
            .unwrap_or_else(|| source_schema.clone());
        // Snapshot table layouts, filtered rows, and the binlog head under
        // one source read lock, then release it before writing the target
        // (same lock-ordering rule as poll_inner).
        let (copies, head) = {
            let src = self.source.read();
            let mut copies: Vec<(
                String,
                xdmod_warehouse::TableSchema,
                Vec<xdmod_warehouse::Row>,
            )> = Vec::new();
            for def in src.describe_schema(&source_schema)? {
                if !self.config.filter.table_passes(&def.name) {
                    continue;
                }
                let table = src.table(&source_schema, &def.name)?;
                // Route rows through the normal filter path by packaging
                // them as an insert batch; a fully-routed-away batch comes
                // back None, which here means "copy no rows".
                let payload = xdmod_warehouse::EventPayload::InsertBatch {
                    schema: source_schema.clone(),
                    table: def.name.clone(),
                    rows: table.rows()?.into_vec(),
                };
                let rows = match self.config.filter.apply_resolved(&payload, |t, column| {
                    src.table(&source_schema, t)
                        .ok()
                        .and_then(|t| t.schema().column_index(column).ok())
                }) {
                    Some(xdmod_warehouse::EventPayload::InsertBatch { rows, .. }) => rows,
                    _ => Vec::new(),
                };
                copies.push((def.name, table.schema().clone(), rows));
            }
            (copies, src.binlog_position())
        };
        let mut report = ResyncReport::default();
        {
            let mut dst = self.target.write();
            if !dst.has_schema(&target_schema) {
                dst.create_schema(&target_schema)?;
            }
            // xc-allow: truncate's page-slot mutexes are leaves under the target write lock held here
            for (name, schema, rows) in copies {
                if dst.table(&target_schema, &name).is_ok() {
                    dst.truncate(&target_schema, &name)?;
                } else {
                    dst.create_table(&target_schema, schema)?;
                }
                report.rows += rows.len();
                if !rows.is_empty() {
                    dst.insert(&target_schema, &name, rows)?;
                }
                report.tables += 1;
            }
            // Take the rebuild guard: a parallel aggregation that planned
            // its outputs before this resync must not apply them over the
            // rewritten facts. Bumping the generation voids every
            // outstanding RebuildTicket and cached aggregate, forcing the
            // apply phase to recompute under its write lock.
            dst.note_external_rebuild();
        }
        // The target now mirrors the source's present state; polling
        // resumes from the head so nothing just copied is replayed.
        self.position = head;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("replication_resyncs_total", &[("link", &self.link_name)])
                .inc();
            self.telemetry.event_with(
                "replication.resync",
                &format!(
                    "{}: target rebuilt from source tables ({} table(s), {} row(s))",
                    self.link_name, report.tables, report.rows
                ),
                &[
                    ("tables", report.tables as f64),
                    ("rows", report.rows as f64),
                ],
            );
        }
        Ok(report)
    }
}

/// What a [`Replicator::resync_target`] pass rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResyncReport {
    /// Tables rebuilt on the target (after table selection).
    pub tables: usize,
    /// Rows copied (after resource routing).
    pub rows: usize,
}

/// Retry behaviour of a [`LiveReplicator`] when a poll fails.
///
/// On failure the worker enters a *retry burst*: it re-polls after an
/// exponentially growing backoff with decorrelated jitter
/// (`sleep = min(max_backoff, rand(base_backoff ..= prev * 3))`, the
/// AWS-architecture-blog variant) instead of waiting the full poll
/// interval. The burst ends on the first success — which also clears
/// [`LiveReplicator::last_error`] — or once `max_attempts` retries (or
/// the `deadline`, if set) are spent, after which the link falls back to
/// ordinary interval polling with the error left visible for the
/// supervisor. The link is never torn down by a failed poll.
///
/// Jitter is drawn from a [`DeterministicRng`] seeded from the link
/// name, so a chaos run's retry schedule is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Fast retries per burst before falling back to interval polling.
    pub max_attempts: u32,
    /// First (and minimum) backoff of a burst.
    pub base_backoff: Duration,
    /// Upper bound any single backoff is clamped to.
    pub max_backoff: Duration,
    /// Optional wall-clock cap on one burst, ending it even if attempts
    /// remain.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never fast-retries (every failure waits out the
    /// full poll interval). Useful in tests and as the explicit "retries
    /// disabled" configuration `xdmod-check` warns about (XC0010).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Per-burst retry bookkeeping, local to the worker thread.
struct RetryState {
    policy: RetryPolicy,
    rng: DeterministicRng,
    attempts: u32,
    prev_backoff: Duration,
    burst_start: Option<Instant>,
}

impl RetryState {
    fn new(policy: RetryPolicy, link_name: &str) -> Self {
        // Seed the jitter source from the link name (FNV-1a) so two runs
        // of the same topology draw identical backoff schedules.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in link_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RetryState {
            policy,
            rng: DeterministicRng::new(seed),
            attempts: 0,
            prev_backoff: Duration::ZERO,
            burst_start: None,
        }
    }

    /// A poll succeeded: the burst (if any) is over.
    fn reset(&mut self) {
        self.attempts = 0;
        self.prev_backoff = Duration::ZERO;
        self.burst_start = None;
    }

    /// A poll failed: the next backoff to sleep, or `None` once the
    /// burst's attempts or deadline are exhausted.
    fn next_backoff(&mut self) -> Option<Duration> {
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        let start = *self.burst_start.get_or_insert_with(Instant::now);
        if let Some(deadline) = self.policy.deadline {
            if start.elapsed() >= deadline {
                return None;
            }
        }
        self.attempts += 1;
        let base = self.policy.base_backoff.as_millis() as u64;
        let prev = self.prev_backoff.as_millis() as u64;
        // Decorrelated jitter: rand in [base, max(prev * 3, base + 1)).
        let hi = (prev.saturating_mul(3)).max(base + 1);
        let millis = self.rng.gen_range(base, hi);
        let backoff = Duration::from_millis(millis).min(self.policy.max_backoff);
        self.prev_backoff = backoff;
        Some(backoff)
    }
}

/// A replicator running on a background thread, polling at an interval —
/// "live replication to the central federation hub database".
///
/// Each iteration polls (unless paused), then samples replication lag in
/// both units into the link's registry: `replication_lag_events` (binlog
/// positions behind) and `replication_lag_seconds` (wall-clock time since
/// the link first fell behind). Apply errors are surfaced — counted,
/// recorded as `replication.error` events, and kept in
/// [`LiveReplicator::last_error`] — and the loop keeps polling: the
/// watermark only advances past applied events, so a transient failure
/// retries on the next iteration instead of killing the link.
pub struct LiveReplicator {
    stop: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    handle: Option<JoinHandle<Replicator>>,
    /// Link label, kept on this side of the thread boundary so a panicked
    /// worker can still be named in the resulting [`ReplicationError`].
    link_name: String,
    /// Last error observed by the worker, if any.
    last_error: Arc<Mutex<Option<WarehouseError>>>,
}

/// Per-iteration lag sampling state, local to the worker thread.
struct LagSampler {
    /// When the link first fell behind (None while caught up).
    behind_since: Option<Instant>,
    /// Last lag value recorded as an event, for dedup while idle at 0.
    last_recorded: Option<u64>,
}

impl LagSampler {
    fn new() -> Self {
        LagSampler {
            behind_since: None,
            last_recorded: None,
        }
    }

    fn sample(&mut self, rep: &Replicator) {
        let lag = rep.lag_events();
        let lag_secs = if lag == 0 {
            self.behind_since = None;
            0.0
        } else {
            self.behind_since
                .get_or_insert_with(Instant::now)
                .elapsed()
                .as_secs_f64()
        };
        let telemetry = rep.telemetry();
        if telemetry.is_enabled() {
            let link: &[(&str, &str)] = &[("link", rep.link_name())];
            telemetry
                .gauge("replication_lag_events", link)
                .set(lag as f64);
            telemetry
                .gauge("replication_lag_seconds", link)
                .set(lag_secs);
            // Record a lag-series event on every sample while behind, plus
            // the one sample where the link returns to 0 — but not on every
            // idle iteration, which would churn the event ring for nothing.
            if lag > 0 || self.last_recorded.is_some_and(|l| l != lag) {
                telemetry.event_with(
                    "replication.lag",
                    rep.link_name(),
                    &[("lag_events", lag as f64), ("lag_seconds", lag_secs)],
                );
            }
        }
        self.last_recorded = Some(lag);
    }
}

impl LiveReplicator {
    /// Spawn the polling loop with the default [`RetryPolicy`].
    pub fn start(replicator: Replicator, interval: Duration) -> Self {
        LiveReplicator::start_with_policy(replicator, interval, RetryPolicy::default())
    }

    /// Spawn the polling loop with an explicit retry policy.
    ///
    /// A failed poll starts a retry burst per `policy` (see
    /// [`RetryPolicy`]): the worker sleeps the backoff and re-polls
    /// immediately instead of waiting out `interval`. Each retry bumps
    /// `replication_retries_total{link}`, sets the
    /// `replication_backoff_ms{link}` gauge to the sleep it chose, and
    /// records a `replication.retry` event. A successful poll clears
    /// [`LiveReplicator::last_error`] — an error is a *current*
    /// condition, not a historical one — and resets the burst.
    pub fn start_with_policy(
        mut replicator: Replicator,
        interval: Duration,
        policy: RetryPolicy,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let link_name = replicator.link_name().to_owned();
        let last_error: Arc<Mutex<Option<WarehouseError>>> = Arc::new(Mutex::new(None));
        let stop2 = Arc::clone(&stop);
        let paused2 = Arc::clone(&paused);
        let err2 = Arc::clone(&last_error);
        let handle = std::thread::spawn(move || {
            let mut lag = LagSampler::new();
            let mut retry = RetryState::new(policy, replicator.link_name());
            let record_err = |rep: &Replicator, e: &WarehouseError| {
                let telemetry = rep.telemetry();
                if telemetry.is_enabled() {
                    telemetry
                        .counter(
                            "replication_apply_errors_total",
                            &[("link", rep.link_name())],
                        )
                        .inc();
                    telemetry.event("replication.error", &format!("{}: {e}", rep.link_name()));
                }
            };
            let record_retry = |rep: &Replicator, attempt: u32, backoff: Duration| {
                let telemetry = rep.telemetry();
                if telemetry.is_enabled() {
                    let link: &[(&str, &str)] = &[("link", rep.link_name())];
                    telemetry.counter("replication_retries_total", link).inc();
                    telemetry
                        .gauge("replication_backoff_ms", link)
                        .set(backoff.as_millis() as f64);
                    telemetry.event_with(
                        "replication.retry",
                        &format!(
                            "{}: retry {attempt} after {}ms backoff",
                            rep.link_name(),
                            backoff.as_millis()
                        ),
                        &[
                            ("attempt", f64::from(attempt)),
                            ("backoff_ms", backoff.as_millis() as f64),
                        ],
                    );
                }
            };
            while !stop2.load(Ordering::Acquire) {
                if !paused2.load(Ordering::Acquire) {
                    match replicator.poll() {
                        Ok(_) => {
                            // The sticky-error fix: a link that has
                            // recovered must read as healthy.
                            *err2.lock() = None;
                            retry.reset();
                        }
                        Err(e) => {
                            record_err(&replicator, &e);
                            *err2.lock() = Some(e);
                            if let Some(backoff) = retry.next_backoff() {
                                record_retry(&replicator, retry.attempts, backoff);
                                lag.sample(&replicator);
                                std::thread::park_timeout(backoff);
                                continue; // fast retry, skip the interval
                            }
                        }
                    }
                }
                lag.sample(&replicator);
                std::thread::park_timeout(interval);
            }
            // Final drain so a stop() immediately after a write loses
            // nothing (even if the link was paused when stopped).
            match replicator.poll() {
                Ok(_) => *err2.lock() = None,
                Err(e) => {
                    record_err(&replicator, &e);
                    *err2.lock() = Some(e);
                }
            }
            lag.sample(&replicator);
            replicator
        });
        LiveReplicator {
            stop,
            paused,
            handle: Some(handle),
            link_name,
            last_error,
        }
    }

    /// Suspend polling without tearing the link down. Lag keeps being
    /// sampled, so a paused link under writes shows a growing
    /// `replication_lag_events` gauge — the scenario an operator dashboard
    /// must make visible.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Release);
    }

    /// Resume polling after [`LiveReplicator::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Release);
        if let Some(handle) = &self.handle {
            handle.thread().unpark();
        }
    }

    /// True while polling is suspended.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    /// Any error the worker hit.
    pub fn last_error(&self) -> Option<WarehouseError> {
        self.last_error.lock().clone()
    }

    /// True when the worker thread has exited while the link is still
    /// nominally running. The loop only returns cleanly after `stop()`
    /// raises the flag, so a finished thread here means the worker
    /// *panicked* — the supervisor's cue to rebuild the link.
    pub fn is_dead(&self) -> bool {
        self.handle.as_ref().is_some_and(JoinHandle::is_finished)
    }

    /// Stop the loop, drain outstanding events, and return the link (with
    /// its watermark and stats) for inspection or restart.
    ///
    /// A panicked worker surfaces as
    /// [`ReplicationError::LinkPanicked`] instead of propagating the
    /// panic into the caller: the hub must be able to note one dead link
    /// and keep operating the rest of the federation.
    pub fn stop(mut self) -> std::result::Result<Replicator, ReplicationError> {
        self.stop.store(true, Ordering::Release);
        let Some(handle) = self.handle.take() else {
            // Unreachable by construction (`stop` consumes `self` and the
            // handle is only vacated here or in Drop), but kept typed
            // rather than panicking per the workspace invariant.
            return Err(ReplicationError::LinkPanicked {
                link: self.link_name.clone(),
                detail: "link already stopped".to_owned(),
            });
        };
        handle.thread().unpark();
        handle
            .join()
            .map_err(|payload| ReplicationError::LinkPanicked {
                link: self.link_name.clone(),
                detail: panic_detail(payload.as_ref()),
            })
    }
}

impl Drop for LiveReplicator {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{shared, ColumnType, Database, SchemaBuilder, Value};

    fn satellite(schema: &str, resources: &[&str]) -> SharedDatabase {
        let mut db = Database::new();
        db.create_schema(schema).unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("supremm_jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_user", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = resources
            .iter()
            .map(|r| vec![Value::Str((*r).to_owned()), Value::Float(1.0)])
            .collect();
        db.insert(schema, "jobfact", rows.clone()).unwrap();
        db.insert(schema, "supremm_jobfact", rows).unwrap();
        shared(db)
    }

    #[test]
    fn poll_replicates_with_rename() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let applied = rep.poll().unwrap();
        assert!(applied >= 4); // schema + 2 tables + 2 inserts (>=)
        let dst = dst.read();
        assert!(dst.has_schema("hub_x"));
        assert_eq!(dst.table("hub_x", "jobfact").unwrap().len(), 1);
        // Raw data unaltered.
        assert_eq!(
            src.read()
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum(),
            dst.table("hub_x", "jobfact").unwrap().content_checksum()
        );
    }

    #[test]
    fn poll_is_incremental_and_idempotent_when_quiet() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        assert_eq!(rep.poll().unwrap(), 0); // nothing new
                                            // New write replicates exactly once.
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(2.0)]],
            )
            .unwrap();
        assert_eq!(rep.poll().unwrap(), 1);
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn jobs_realm_only_filter_drops_supremm() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all().with_tables(["jobfact"]);
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let dst = dst.read();
        assert!(dst.table("hub_x", "jobfact").is_ok());
        assert!(dst.table("hub_x", "supremm_jobfact").is_err());
        assert!(rep.stats().events_filtered > 0);
    }

    #[test]
    fn resource_routing_excludes_sensitive_rows() {
        let src = satellite("xdmod_x", &["open", "secret", "open"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_resource_column("jobfact", "resource")
            .exclude_resource("secret");
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let dst = dst.read();
        let t = dst.table("hub_x", "jobfact").unwrap();
        assert_eq!(t.len(), 2);
        for row in t.rows().unwrap().iter() {
            assert_ne!(row[0], Value::Str("secret".into()));
        }
    }

    #[test]
    fn source_schema_selection() {
        let src = satellite("xdmod_x", &["comet"]);
        src.write().create_schema("private").unwrap();
        src.write()
            .create_table(
                "private",
                SchemaBuilder::new("users")
                    .required("name", ColumnType::Str)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        // "user profile information [is] presently excluded": the private
        // schema never crossed.
        assert!(!dst.read().has_schema("private"));
        assert!(!dst.read().has_schema("hub_x_private"));
    }

    #[test]
    fn fan_in_two_satellites_one_hub() {
        let x = satellite("xdmod_x", &["resource-l"]);
        let y = satellite("xdmod_y", &["resource-m", "resource-n"]);
        let hub = shared(Database::new());
        let mut rx = Replicator::new(
            x,
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let mut ry = Replicator::new(
            y,
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_y", "hub_y"),
        );
        rx.poll().unwrap();
        ry.poll().unwrap();
        let hub = hub.read();
        assert_eq!(hub.schema_names(), vec!["hub_x", "hub_y"]);
        assert_eq!(hub.table("hub_x", "jobfact").unwrap().len(), 1);
        assert_eq!(hub.table("hub_y", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn multi_hub_same_source() {
        // §II-C4: "data from all resources could be replicated to multiple
        // federation hubs, to provide a live backup or load-balancing
        // strategy".
        let src = satellite("xdmod_x", &["comet"]);
        let hub_a = shared(Database::new());
        let hub_b = shared(Database::new());
        let mut ra = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&hub_a),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let mut rb = Replicator::new(
            src,
            Arc::clone(&hub_b),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        ra.poll().unwrap();
        rb.poll().unwrap();
        assert_eq!(
            hub_a
                .read()
                .table("hub_x", "jobfact")
                .unwrap()
                .content_checksum(),
            hub_b
                .read()
                .table("hub_x", "jobfact")
                .unwrap()
                .content_checksum()
        );
    }

    #[test]
    fn live_replicator_streams_concurrent_writes() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        for i in 0..50 {
            src.write()
                .insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str("comet".into()), Value::Float(f64::from(i))]],
                )
                .unwrap();
        }
        let rep = live.stop().unwrap();
        assert!(rep.stats().events_applied >= 52); // 50 inserts + DDL
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 51);
        assert_eq!(
            src.read()
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum(),
            dst.read()
                .table("hub_x", "jobfact")
                .unwrap()
                .content_checksum()
        );
    }

    /// Wait (bounded) until `cond` holds, re-checking every millisecond.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..5000 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn poll_reports_per_link_counters_and_lag_gauge() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let mut rep = Replicator::new(
            Arc::clone(&src),
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        rep.poll().unwrap();
        let snap = reg.snapshot();
        let link = &[("link", "site-x")];
        assert_eq!(
            snap.counter("replication_events_read_total", link),
            Some(rep.stats().events_read)
        );
        assert_eq!(
            snap.counter("replication_events_applied_total", link),
            Some(rep.stats().events_applied)
        );
        // Caught up: the lag gauge reads zero.
        assert_eq!(snap.gauge("replication_lag_events", link), Some(0.0));
        assert_eq!(rep.lag_events(), 0);
    }

    #[test]
    fn paused_live_link_shows_growing_lag_then_recovers() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        let link = &[("link", "site-x")];

        // Let the link catch up, then pause it.
        assert!(eventually(|| reg
            .snapshot()
            .gauge("replication_lag_events", link)
            == Some(0.0)));
        live.pause();
        assert!(live.is_paused());

        // Writes while paused pile up as backlog...
        for i in 0..5 {
            src.write()
                .insert(
                    "xdmod_x",
                    "jobfact",
                    vec![vec![Value::Str("comet".into()), Value::Float(f64::from(i))]],
                )
                .unwrap();
        }
        // ...and the sampler reports them: 5 events behind, nonzero
        // wall-clock lag, and a replication.lag event series.
        assert!(eventually(|| reg
            .snapshot()
            .gauge("replication_lag_events", link)
            == Some(5.0)));
        assert!(eventually(|| reg
            .snapshot()
            .gauge("replication_lag_seconds", link)
            > Some(0.0)));
        let lag_events = reg.events_of_kind("replication.lag");
        assert!(!lag_events.is_empty());
        assert!(lag_events
            .iter()
            .any(|e| e.message == "site-x" && e.field("lag_events") == Some(5.0)));

        // Resuming drains the backlog and both gauges return to zero.
        live.resume();
        assert!(eventually(|| {
            let snap = reg.snapshot();
            snap.gauge("replication_lag_events", link) == Some(0.0)
                && snap.gauge("replication_lag_seconds", link) == Some(0.0)
        }));
        let rep = live.stop().unwrap();
        assert!(rep.stats().events_applied >= 5);
        assert_eq!(dst.read().table("hub_x", "jobfact").unwrap().len(), 6);
    }

    #[test]
    fn apply_errors_are_surfaced_and_do_not_kill_the_loop() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        // Poison the target: hub_x.jobfact exists with a different layout,
        // so every apply of the source's CreateTable event fails.
        let mut poisoned = Database::new();
        poisoned.create_schema("hub_x").unwrap();
        poisoned
            .create_table(
                "hub_x",
                SchemaBuilder::new("jobfact")
                    .required("something_else", ColumnType::Int)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let dst = shared(poisoned);
        let reg = MetricsRegistry::new();
        let rep = Replicator::new(src, dst, LinkConfig::renaming("xdmod_x", "hub_x"))
            .with_telemetry(reg.clone(), "site-x");
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        // The loop keeps retrying (counter grows past 1) instead of dying
        // on the first failure, and the error is inspectable live.
        assert!(eventually(|| reg
            .snapshot()
            .counter("replication_apply_errors_total", &[("link", "site-x")])
            .unwrap_or(0)
            > 1));
        assert!(live.last_error().is_some());
        assert!(!reg.events_of_kind("replication.error").is_empty());
        let rep = live.stop().unwrap();
        // The watermark never advanced past the failing event.
        assert_eq!(rep.stats().events_applied, 0);
    }

    #[test]
    fn filtered_required_table_is_counted_and_logged() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        // supremm_jobfact is declared required downstream but the table
        // selection drops it — the silently-empty-report misconfiguration.
        let filter = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_required_tables(["jobfact", "supremm_jobfact"]);
        let reg = MetricsRegistry::new();
        let mut rep = Replicator::new(
            src,
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        )
        .with_telemetry(reg.clone(), "site-x");
        rep.poll().unwrap();
        let dropped = reg
            .snapshot()
            .counter(
                "replication_filtered_required_tables_total",
                &[("link", "site-x"), ("table", "supremm_jobfact")],
            )
            .unwrap_or(0);
        // CreateTable + InsertBatch for supremm_jobfact both count.
        assert_eq!(dropped, 2);
        let events = reg.events_of_kind("replication.filtered_required_table");
        assert!(!events.is_empty());
        assert!(events[0].message.contains("supremm_jobfact"));
        // Tables that were never declared required stay out of the counter.
        assert_eq!(
            reg.snapshot().counter(
                "replication_filtered_required_tables_total",
                &[("link", "site-x"), ("table", "jobfact")],
            ),
            None
        );
    }

    #[test]
    fn stop_surfaces_worker_panic_as_typed_error() {
        // A replicator whose source handle is poisoned mid-flight is hard
        // to arrange; instead drive the public surface: a healthy link
        // stops cleanly (Ok), and the error type carries the link label
        // for the panicked case (unit-tested in `error.rs`).
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let rep = Replicator::new(src, dst, LinkConfig::renaming("xdmod_x", "hub_x"));
        let live = LiveReplicator::start(rep, Duration::from_millis(1));
        let stopped = live.stop();
        assert!(stopped.is_ok());
        assert_eq!(stopped.unwrap().link_name(), "hub_x");
    }

    #[test]
    fn seek_beyond_tail_is_rejected_with_typed_error() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        let tail = src.read().binlog_position();
        // The tail itself and any rewind are fine.
        assert!(rep.seek(tail).is_ok());
        assert!(rep.seek(LogPosition::START).is_ok());
        // One past the tail is not.
        let beyond = LogPosition {
            epoch: tail.epoch,
            seqno: tail.seqno + 1,
        };
        match rep.seek(beyond) {
            Err(ReplicationError::SeekBeyondTail {
                link,
                requested,
                tail: t,
            }) => {
                assert_eq!(link, "hub_x");
                assert_eq!(requested, beyond);
                assert_eq!(t, tail);
            }
            other => panic!("expected SeekBeyondTail, got {other:?}"),
        }
        // A future epoch is beyond the tail by definition.
        assert!(rep
            .seek(LogPosition {
                epoch: tail.epoch + 1,
                seqno: 0,
            })
            .is_err());
        // The rejected seeks left the watermark where the last accepted
        // one put it.
        assert_eq!(rep.position(), LogPosition::START);
    }

    #[test]
    fn chaos_transient_fault_surfaces_then_recovers() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::Transient,
            &[1],
        ));
        let mut rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_chaos(plan.injector(7));
        // First poll hits the injected transient error; nothing applied.
        assert!(matches!(rep.poll(), Err(WarehouseError::Io(_))));
        assert_eq!(rep.stats().events_applied, 0);
        // The retry sails through and replicates everything.
        assert!(rep.poll().unwrap() >= 4);
        assert!(dst.read().has_schema("hub_x"));
    }

    #[test]
    fn chaos_corrupt_tail_is_repaired_and_replication_resumes() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::CorruptTailByte,
            &[1],
        ));
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x")
        .with_chaos(plan.injector(7));
        // The first poll corrupts the source tail in flight, detects it,
        // repairs the source log, and applies the surviving prefix.
        let applied = rep.poll().unwrap();
        assert!(applied >= 4); // 5 events recorded, tail one dropped
        assert_eq!(rep.stats().source_repairs, 1);
        assert_eq!(
            reg.snapshot()
                .counter("replication_source_repairs_total", &[("link", "site-x")]),
            Some(1)
        );
        assert!(!reg.events_of_kind("replication.source_repaired").is_empty());
        // The link is healthy again: new writes replicate normally.
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(9.0)]],
            )
            .unwrap();
        assert_eq!(rep.poll().unwrap(), 1);
        assert_eq!(rep.stats().source_repairs, 1); // no further repairs
    }

    #[test]
    fn diverged_link_is_detected_and_resynced_from_tables() {
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        assert!(!rep.is_diverged());
        // Lose the source binlog's tail record to a crash repair: the
        // watermark now points past the surviving log.
        {
            let mut s = src.write();
            s.truncate_binlog_tail(5);
            assert!(!s.repair_binlog().is_clean());
        }
        assert!(rep.is_diverged());
        // Polling cannot help a diverged link (a same-epoch beyond-tail
        // read is a silent empty batch); a table-copy resync can.
        let report = rep.resync_target().unwrap();
        assert_eq!(report.tables, 2);
        assert!(!rep.is_diverged());
        let src = src.read();
        let dst = dst.read();
        for table in ["jobfact", "supremm_jobfact"] {
            assert_eq!(
                src.table("xdmod_x", table).unwrap().content_checksum(),
                dst.table("hub_x", table).unwrap().content_checksum(),
                "{table} must match after resync"
            );
        }
    }

    #[test]
    fn resync_resets_delta_fold_cursors_never_serving_stale_partials() {
        use xdmod_warehouse::{AggFn, Aggregate, CacheKey, DeltaOutcome, Query};
        let src = satellite("xdmod_x", &["comet", "gordon", "comet"]);
        let dst = shared(Database::new());
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();

        // An aggregation pass leaves a retained delta-fold partial with a
        // cursor into the target's binlog.
        let q = Query::new()
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        dst.read()
            .run_delta_fold("hub_x", "jobfact", &q, "agg")
            .unwrap();
        let key = CacheKey {
            schema: "hub_x".into(),
            table: "jobfact".into(),
            fingerprint: q.fingerprint(),
        };
        assert!(dst.read().delta_cache().cursor_of(&key).is_some());

        // Source moves on; a full resync rewrites the target's tables
        // outside normal DML accounting.
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("trestles".into()), Value::Float(4.0)]],
            )
            .unwrap();
        rep.resync_target().unwrap();

        // The regression under test: resync must reset the delta cursor
        // along with the rebuild generation. A surviving cursor would let
        // the next fold start from pre-resync partials and double-count
        // every row the resync re-copied.
        assert_eq!(dst.read().delta_cache().cursor_of(&key), None);
        assert!(dst.read().delta_cache().is_empty());

        let d = dst.read();
        let (rs, report) = d.run_delta_fold("hub_x", "jobfact", &q, "agg").unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Cold);
        assert_eq!(rs, d.query_sharded("hub_x", "jobfact", &q).unwrap());
        // 3 original rows at 1.0 cpu-hour each + the resynced 4.0 row;
        // a stale partial would have reported 10.0 (the originals twice).
        assert_eq!(rs.scalar_f64("total"), Some(7.0));
        assert_eq!(rs.scalar_f64("jobs"), Some(4.0));
    }

    #[test]
    fn resync_preserves_table_selection_and_resource_routing() {
        let src = satellite("xdmod_x", &["open", "secret"]);
        let dst = shared(Database::new());
        let telemetry = MetricsRegistry::new();
        let filter = ReplicationFilter::all()
            .with_tables(["jobfact"])
            .with_resource_column("jobfact", "resource")
            .exclude_resource("secret");
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        )
        .with_telemetry(telemetry.clone(), "hub_x");
        let report = rep.resync_target().unwrap();
        assert_eq!(report.tables, 1);
        assert_eq!(report.rows, 1);
        {
            let dst = dst.read();
            assert_eq!(dst.table("hub_x", "jobfact").unwrap().len(), 1);
            assert!(dst.table("hub_x", "supremm_jobfact").is_err());
        }
        // Nothing just copied replays on the next poll...
        assert_eq!(rep.poll().unwrap(), 0);
        // ...and the resync left its telemetry trail.
        assert_eq!(
            telemetry
                .snapshot()
                .counter("replication_resyncs_total", &[("link", "hub_x")]),
            Some(1)
        );
        assert!(!telemetry.events_of_kind("replication.resync").is_empty());
    }

    #[test]
    fn resync_invalidates_spilled_pages_of_rewritten_tables() {
        use xdmod_warehouse::{AggFn, Aggregate, PagingConfig, Query};
        let dir = std::env::temp_dir().join(format!(
            "xdmod-repl-spill-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let src = satellite("xdmod_x", &["comet", "gordon"]);
        let mut target = Database::new();
        // Pathological budget: every page evicts as soon as it is unpinned,
        // so the replicated facts live on disk, not in memory.
        target
            .enable_paging(PagingConfig::new(&dir).budget_bytes(1).pages_per_table(2))
            .unwrap();
        let dst = shared(target);
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        rep.poll().unwrap();
        let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
        assert_eq!(
            dst.read()
                .query_sharded("hub_x", "jobfact", &q)
                .unwrap()
                .scalar_f64("total"),
            Some(2.0)
        );
        let stats = dst.read().residency_stats().unwrap();
        assert!(
            stats.spilled_pages > 0,
            "a one-byte budget must leave pages spilled: {stats:?}"
        );
        let spill_dir = dst.read().paging_config().unwrap().spill_path();
        let spilled_before: Vec<String> = std::fs::read_dir(&spill_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(!spilled_before.is_empty());

        // The source rewrites its facts with entirely different values.
        {
            let mut s = src.write();
            s.truncate("xdmod_x", "jobfact").unwrap();
            s.insert(
                "xdmod_x",
                "jobfact",
                vec![
                    vec![Value::Str("expanse".into()), Value::Float(40.0)],
                    vec![Value::Str("bridges".into()), Value::Float(2.0)],
                ],
            )
            .unwrap();
        }
        rep.resync_target().unwrap();

        // The regression under test: resync truncates each rewritten table,
        // which must drop its spilled shard files. A stale spill surviving
        // the rewrite would fault old rows back in on the next query.
        let d = dst.read();
        assert_eq!(
            d.query_sharded("hub_x", "jobfact", &q)
                .unwrap()
                .scalar_f64("total"),
            Some(42.0)
        );
        assert_eq!(
            d.table("hub_x", "jobfact").unwrap().content_checksum(),
            src.read()
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum(),
            "resync'd paged table must match the source byte-for-byte"
        );
        assert!(!d.has_lost_pages());
        // Every pre-resync spill file is gone; whatever spilled since
        // carries a newer generation and therefore a different name.
        let now: std::collections::BTreeSet<String> = std::fs::read_dir(&spill_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        for stale in &spilled_before {
            assert!(
                !now.contains(stale),
                "pre-resync spill file {stale} survived the rewrite"
            );
        }
        drop(d);
        drop(dst);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_link_retries_transient_faults_and_clears_last_error() {
        use xdmod_chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        // Two transient faults, then clear air.
        let plan = FaultPlan::new().with(FaultSpec::at_ops(
            FaultPoint::Transport,
            FaultKind::Transient,
            &[1, 2],
        ));
        let rep = Replicator::new(
            src,
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x")
        .with_chaos(plan.injector(7));
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: None,
        };
        let live = LiveReplicator::start_with_policy(rep, Duration::from_millis(1), policy);
        // The faults were retried through, the data arrived, and — the
        // sticky-error fix — the recovered link reads as healthy again.
        assert!(eventually(|| dst.read().has_schema("hub_x")));
        assert!(eventually(|| live.last_error().is_none()));
        let rep = live.stop().unwrap();
        assert!(rep.stats().events_applied >= 4);
        let snap = reg.snapshot();
        let retries = snap
            .counter("replication_retries_total", &[("link", "site-x")])
            .unwrap_or(0);
        assert!(
            retries >= 1,
            "expected at least one fast retry, got {retries}"
        );
        assert!(!reg.events_of_kind("replication.retry").is_empty());
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let mut a = RetryState::new(policy, "site-x");
        let mut b = RetryState::new(policy, "site-x");
        let seq_a: Vec<_> = std::iter::from_fn(|| a.next_backoff()).collect();
        let seq_b: Vec<_> = std::iter::from_fn(|| b.next_backoff()).collect();
        assert_eq!(seq_a, seq_b, "same link name must draw the same schedule");
        assert_eq!(seq_a.len() as u32, policy.max_attempts);
        for d in &seq_a {
            assert!(*d >= policy.base_backoff && *d <= policy.max_backoff);
        }
        // Exhausted burst stays exhausted until reset.
        assert_eq!(a.next_backoff(), None);
        a.reset();
        assert!(a.next_backoff().is_some());
        // A different link name draws a different schedule (with enough
        // attempts the sequences can't collide entirely).
        let mut c = RetryState::new(policy, "site-y");
        let seq_c: Vec<_> = std::iter::from_fn(|| c.next_backoff()).collect();
        assert_ne!(seq_a, seq_c);
        // Zero-retry policy never fast-retries.
        let mut z = RetryState::new(RetryPolicy::no_retries(), "site-x");
        assert_eq!(z.next_backoff(), None);
    }

    #[test]
    fn compacted_source_fails_stale_poll_and_resync_recovers() {
        use xdmod_telemetry::MetricsRegistry;
        let src = satellite("xdmod_x", &["comet"]);
        // Compact the source: snapshot twice so the trailing horizon
        // passes the DDL/insert prefix a fresh link would need.
        {
            let mut s = src.write();
            s.snapshot_now().unwrap();
            s.insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(5.0)]],
            )
            .unwrap();
            s.snapshot_now().unwrap();
            assert!(s.compaction_horizon() > 0);
        }
        let dst = shared(Database::new());
        let reg = MetricsRegistry::new();
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&dst),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        )
        .with_telemetry(reg.clone(), "site-x");
        // A fresh link's watermark (START) is below the horizon.
        assert!(rep.is_compacted_away());
        let err = rep.poll().unwrap_err();
        assert!(
            matches!(err, WarehouseError::CompactedAway { .. }),
            "got {err}"
        );
        assert_eq!(
            reg.snapshot()
                .counter("replication_compacted_reads_total", &[("link", "site-x")]),
            Some(1)
        );
        assert!(!reg.events_of_kind("replication.compacted_away").is_empty());
        // Resync rebuilds the target from the source's snapshot+tail
        // state (its live tables) and the link is healthy again.
        rep.resync_target().unwrap();
        assert!(!rep.is_compacted_away());
        assert_eq!(rep.poll().unwrap(), 0);
        assert_eq!(
            src.read()
                .table("xdmod_x", "jobfact")
                .unwrap()
                .content_checksum(),
            dst.read()
                .table("hub_x", "jobfact")
                .unwrap()
                .content_checksum()
        );
    }

    #[test]
    fn resync_after_compaction_matches_full_replication() {
        // The acceptance invariant: a replica resumed from snapshot+tail
        // (resync after the source compacted) is content-identical to a
        // replica that replayed the full, never-compacted log.
        let src = satellite("xdmod_x", &["comet", "gordon"]);
        let full = shared(Database::new());
        let mut full_rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&full),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        full_rep.poll().unwrap(); // replicates the complete log up front
        {
            let mut s = src.write();
            s.snapshot_now().unwrap();
            s.insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("late".into()), Value::Float(7.0)]],
            )
            .unwrap();
            s.snapshot_now().unwrap(); // horizon passes the prefix
            assert!(s.compaction_horizon() > 0);
        }
        full_rep.poll().unwrap(); // full replica stays caught up
                                  // The late replica can't replay the compacted prefix; it resyncs.
        let late = shared(Database::new());
        let mut late_rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&late),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        assert!(late_rep.poll().is_err());
        late_rep.resync_target().unwrap();
        assert_eq!(late_rep.poll().unwrap(), 0);
        let full = full.read();
        let late = late.read();
        for table in ["jobfact", "supremm_jobfact"] {
            assert_eq!(
                full.table("hub_x", table).unwrap().content_checksum(),
                late.table("hub_x", table).unwrap().content_checksum(),
                "{table}: snapshot+tail resync must equal full replication"
            );
        }
    }

    #[test]
    fn stats_account_for_every_event() {
        let src = satellite("xdmod_x", &["a", "b"]);
        let dst = shared(Database::new());
        let filter = ReplicationFilter::all().with_tables(["jobfact"]);
        let mut rep = Replicator::new(
            src,
            dst,
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();
        let s = rep.stats();
        assert_eq!(s.events_read, s.events_applied + s.events_filtered);
    }
}

//! Consistency verification between satellites and the federation hub.
//!
//! "The federated hub does not alter the raw, replicated data from the
//! individual instances" (§II-B) and "all raw instance data are fully
//! replicated to the master ... so no data are lost or changed" (§II-C3).
//! This module checks that claim with order-independent table checksums,
//! and doubles as the verification step of the backup use case (§II-E4:
//! the hub "could be used to regenerate the databases for the member
//! instances").

use xdmod_warehouse::{Database, Result};

/// Outcome of one table comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCheck {
    /// Table name.
    pub table: String,
    /// Row count on the satellite.
    pub source_rows: usize,
    /// Row count on the hub.
    pub target_rows: usize,
    /// Whether content checksums matched.
    pub matches: bool,
}

/// Compare every table of `source_schema` in `source` against
/// `target_schema` in `target`.
///
/// Tables present on the source but absent on the hub are reported as
/// mismatches with `target_rows = 0` (they may have been excluded by a
/// replication filter — the caller decides whether that's expected).
pub fn verify_schemas(
    source: &Database,
    source_schema: &str,
    target: &Database,
    target_schema: &str,
) -> Result<Vec<TableCheck>> {
    let mut out = Vec::new();
    for table in source.table_names(source_schema)? {
        let src = source.table(source_schema, table)?;
        match target.table(target_schema, table) {
            Ok(dst) => out.push(TableCheck {
                table: table.to_owned(),
                source_rows: src.len(),
                target_rows: dst.len(),
                matches: src.content_checksum() == dst.content_checksum(),
            }),
            Err(_) => out.push(TableCheck {
                table: table.to_owned(),
                source_rows: src.len(),
                target_rows: 0,
                matches: src.is_empty(),
            }),
        }
    }
    // Count verifications on the hub-side registry (falling back to the
    // satellite's), so ops can see how much checksum work each audit does.
    let telemetry = if target.telemetry().is_enabled() {
        target.telemetry()
    } else {
        source.telemetry()
    };
    if telemetry.is_enabled() {
        telemetry
            .counter("replication_checksum_checks_total", &[])
            .add(out.len() as u64);
        telemetry
            .counter("replication_checksum_mismatches_total", &[])
            .add(out.iter().filter(|c| !c.matches).count() as u64);
    }
    Ok(out)
}

/// True when every table replicated verbatim.
pub fn schemas_match(
    source: &Database,
    source_schema: &str,
    target: &Database,
    target_schema: &str,
) -> Result<bool> {
    Ok(verify_schemas(source, source_schema, target, target_schema)?
        .iter()
        .all(|c| c.matches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_warehouse::{ColumnType, SchemaBuilder, Value};

    fn db_with(schema: &str, rows: &[f64]) -> Database {
        let mut db = Database::new();
        db.create_schema(schema).unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("jobfact")
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            schema,
            "jobfact",
            rows.iter().map(|v| vec![Value::Float(*v)]).collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn identical_content_matches_across_schema_names() {
        let src = db_with("xdmod_x", &[1.0, 2.0]);
        let hub = db_with("hub_x", &[2.0, 1.0]); // order differs: still equal
        assert!(schemas_match(&src, "xdmod_x", &hub, "hub_x").unwrap());
    }

    #[test]
    fn altered_content_is_detected() {
        let src = db_with("xdmod_x", &[1.0, 2.0]);
        let hub = db_with("hub_x", &[1.0, 2.5]);
        let checks = verify_schemas(&src, "xdmod_x", &hub, "hub_x").unwrap();
        assert_eq!(checks.len(), 1);
        assert!(!checks[0].matches);
        assert_eq!(checks[0].source_rows, 2);
        assert_eq!(checks[0].target_rows, 2);
    }

    #[test]
    fn missing_target_table_reported() {
        let src = db_with("xdmod_x", &[1.0]);
        let mut hub = Database::new();
        hub.create_schema("hub_x").unwrap();
        let checks = verify_schemas(&src, "xdmod_x", &hub, "hub_x").unwrap();
        assert!(!checks[0].matches);
        assert_eq!(checks[0].target_rows, 0);
    }

    #[test]
    fn empty_source_table_vacuously_matches_missing_target() {
        let src = db_with("xdmod_x", &[]);
        let mut hub = Database::new();
        hub.create_schema("hub_x").unwrap();
        assert!(schemas_match(&src, "xdmod_x", &hub, "hub_x").unwrap());
    }

    #[test]
    fn filter_excluded_table_reports_zero_target_rows() {
        use crate::{LinkConfig, ReplicationFilter, Replicator};
        use std::sync::Arc;
        use xdmod_warehouse::shared;

        // A satellite with two realms, only one of which replicates.
        let mut db = db_with("xdmod_x", &[1.0, 2.0]);
        db.create_table(
            "xdmod_x",
            SchemaBuilder::new("supremm_jobfact")
                .required("cpu_user", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("xdmod_x", "supremm_jobfact", vec![vec![Value::Float(0.9)]])
            .unwrap();
        let src = shared(db);
        let hub = shared(Database::new());
        let filter = ReplicationFilter::all().with_tables(["jobfact"]);
        let mut rep = Replicator::new(
            Arc::clone(&src),
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
        );
        rep.poll().unwrap();

        let src = src.read();
        let hub = hub.read();
        let checks = verify_schemas(&src, "xdmod_x", &hub, "hub_x").unwrap();
        let by_name = |n: &str| checks.iter().find(|c| c.table == n).unwrap();
        // The replicated realm matches verbatim.
        let job = by_name("jobfact");
        assert!(job.matches);
        assert_eq!((job.source_rows, job.target_rows), (2, 2));
        // The excluded realm takes the missing-target path: reported as a
        // mismatch with target_rows = 0, letting the caller decide whether
        // the exclusion was intended.
        let supremm = by_name("supremm_jobfact");
        assert!(!supremm.matches);
        assert_eq!((supremm.source_rows, supremm.target_rows), (1, 0));
    }

    #[test]
    fn checksum_checks_are_counted_on_the_hub_registry() {
        use xdmod_telemetry::MetricsRegistry;
        let src = db_with("xdmod_x", &[1.0, 2.0]);
        let mut hub = db_with("hub_x", &[1.0, 2.5]); // mismatching content
        let reg = MetricsRegistry::new();
        hub.set_telemetry(reg.clone());
        verify_schemas(&src, "xdmod_x", &hub, "hub_x").unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("replication_checksum_checks_total", &[]),
            Some(1)
        );
        assert_eq!(
            snap.counter("replication_checksum_mismatches_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn unknown_schema_errors() {
        let src = db_with("xdmod_x", &[1.0]);
        let hub = Database::new();
        assert!(verify_schemas(&src, "nope", &hub, "hub_x").is_err());
    }
}

//! "Loose" federation: periodic batch shipping instead of live
//! replication.
//!
//! "Instead, log files or database dumps could be periodically shipped to
//! the federation hub, and batch processed there to make their data
//! available to the federation. This latter method would be considered
//! 'loose' federation. A heterogeneous model could also be employed, in
//! which a federation hub is provided with data using loose federation
//! from some member instances and tight federation from others."
//! (§II-C2)
//!
//! Two mechanisms are provided, matching the paper's two options:
//!
//! - [`LooseShipper`] — exports the satellite's framed **binlog bytes**
//!   since the last shipment (the "log files" option); the hub side
//!   decodes, filters, renames, and batch-applies them.
//! - [`ship_dump`] / [`receive_dump`] — full **database dumps** of the
//!   satellite schema, applied with replace semantics on the hub.

use crate::filter::ReplicationFilter;
use crate::replicator::LinkConfig;
use bytes::Bytes;
use xdmod_warehouse::binlog::decode_stream;
use xdmod_warehouse::{
    Database, LogPosition, Result, SharedDatabase, Snapshot, WarehouseError,
};

/// Satellite-side exporter of binlog batches.
pub struct LooseShipper {
    source: SharedDatabase,
    position: LogPosition,
}

impl LooseShipper {
    /// Start shipping from the beginning of the source's log.
    pub fn new(source: SharedDatabase) -> Self {
        LooseShipper {
            source,
            position: LogPosition::START,
        }
    }

    /// Watermark of the last exported record.
    pub fn position(&self) -> LogPosition {
        self.position
    }

    /// Export everything since the last shipment as a framed byte batch
    /// (the "file" that would be scp'd to the hub). Empty when quiescent.
    pub fn export_batch(&mut self) -> Result<Bytes> {
        let src = self.source.read();
        let bytes = src.binlog_export(self.position)?;
        self.position = src.binlog_position();
        Ok(bytes)
    }
}

/// Hub-side batch processor for shipped binlog files.
pub struct LooseReceiver {
    target: SharedDatabase,
    config: LinkConfig,
    /// Position of the last applied record, for replay detection.
    applied_to: LogPosition,
}

impl LooseReceiver {
    /// Create a receiver applying into `target` under `config`.
    pub fn new(target: SharedDatabase, config: LinkConfig) -> Self {
        LooseReceiver {
            target,
            config,
            applied_to: LogPosition::START,
        }
    }

    /// Decode and apply one shipped batch. Records at or before the
    /// last-applied position are skipped (duplicate shipment tolerance);
    /// gaps are an error, since a skipped file means lost data.
    pub fn apply_batch(&mut self, batch: &Bytes) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        let events = decode_stream(batch.clone())?;
        let mut applied = 0usize;
        for ev in events {
            if ev.position <= self.applied_to {
                continue; // duplicate shipment
            }
            let expected = LogPosition {
                epoch: self.applied_to.epoch,
                seqno: self.applied_to.seqno + 1,
            };
            if ev.position.epoch == self.applied_to.epoch && ev.position != expected {
                return Err(WarehouseError::CorruptBinlog(format!(
                    "shipment gap: expected {expected}, got {}",
                    ev.position
                )));
            }
            if let Some(want) = &self.config.source_schema {
                if ev.payload.schema() != want {
                    self.applied_to = ev.position;
                    continue;
                }
            }
            // Loose batches carry no live schema access; resource routing
            // resolves against the *target* schema (identical layout by
            // construction).
            let target = &self.target;
            let renamed_schema = self
                .config
                .rename_to
                .clone()
                .unwrap_or_else(|| ev.payload.schema().to_owned());
            let resolved = self.config.filter.apply_resolved(&ev.payload, |table, column| {
                let t = target.read();
                t.table(&renamed_schema, table)
                    .ok()
                    .and_then(|t| t.schema().column_index(column).ok())
            });
            if let Some(filtered) = resolved {
                let outgoing = match &self.config.rename_to {
                    Some(new_schema) => filtered.with_schema(new_schema),
                    None => filtered,
                };
                self.target.write().apply_event(&outgoing)?;
                applied += 1;
            }
            self.applied_to = ev.position;
        }
        Ok(applied)
    }
}

/// Export a full database dump of `schema` from a satellite, renamed for
/// the hub — the paper's "database dumps ... periodically shipped" mode.
pub fn ship_dump(source: &Database, schema: &str, rename_to: &str) -> Result<Vec<u8>> {
    Snapshot::capture_schemas(source, &[schema.to_owned()])?
        .into_renamed(rename_to)?
        .to_bytes()
}

/// Apply a shipped dump on the hub with replace semantics: the schema's
/// previous contents are dropped and rebuilt, so repeated shipments don't
/// duplicate rows.
pub fn receive_dump(target: &mut Database, dump: &[u8]) -> Result<usize> {
    let snapshot = Snapshot::from_bytes(dump)?;
    // Drop-and-recreate each schema carried by the dump.
    for (schema, tables) in &snapshot.schemas {
        if target.has_schema(schema) {
            for table in tables.keys() {
                if target.table(schema, table).is_ok() {
                    target.truncate(schema, table)?;
                }
            }
        }
    }
    snapshot.apply(target)?;
    Ok(snapshot.total_rows())
}

/// Re-export of the filter type for loose links.
pub type LooseFilter = ReplicationFilter;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xdmod_warehouse::{shared, ColumnType, SchemaBuilder, Value};

    fn satellite(schema: &str, n_rows: usize) -> SharedDatabase {
        let mut db = Database::new();
        db.create_schema(schema).unwrap();
        db.create_table(
            schema,
            SchemaBuilder::new("jobfact")
                .required("resource", ColumnType::Str)
                .required("cpu_hours", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n_rows)
            .map(|i| vec![Value::Str("comet".into()), Value::Float(i as f64)])
            .collect();
        db.insert(schema, "jobfact", rows).unwrap();
        shared(db)
    }

    #[test]
    fn binlog_shipping_round_trip() {
        let src = satellite("xdmod_x", 3);
        let hub = shared(Database::new());
        let mut shipper = LooseShipper::new(Arc::clone(&src));
        let mut receiver = LooseReceiver::new(
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        let batch = shipper.export_batch().unwrap();
        assert!(!batch.is_empty());
        receiver.apply_batch(&batch).unwrap();
        assert_eq!(hub.read().table("hub_x", "jobfact").unwrap().len(), 3);
        // Quiescent second shipment is empty and harmless.
        let batch2 = shipper.export_batch().unwrap();
        assert!(batch2.is_empty());
        assert_eq!(receiver.apply_batch(&batch2).unwrap(), 0);
    }

    #[test]
    fn incremental_batches_carry_only_new_data() {
        let src = satellite("xdmod_x", 1);
        let hub = shared(Database::new());
        let mut shipper = LooseShipper::new(Arc::clone(&src));
        let mut receiver = LooseReceiver::new(
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        receiver.apply_batch(&shipper.export_batch().unwrap()).unwrap();
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(9.0)]],
            )
            .unwrap();
        let applied = receiver.apply_batch(&shipper.export_batch().unwrap()).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(hub.read().table("hub_x", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_shipment_is_skipped() {
        let src = satellite("xdmod_x", 2);
        let hub = shared(Database::new());
        let mut shipper = LooseShipper::new(Arc::clone(&src));
        let batch = shipper.export_batch().unwrap();
        let mut receiver = LooseReceiver::new(
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        receiver.apply_batch(&batch).unwrap();
        let applied_again = receiver.apply_batch(&batch).unwrap();
        assert_eq!(applied_again, 0);
        assert_eq!(hub.read().table("hub_x", "jobfact").unwrap().len(), 2);
    }

    #[test]
    fn shipment_gap_is_detected() {
        let src = satellite("xdmod_x", 1);
        let mut shipper = LooseShipper::new(Arc::clone(&src));
        let _skipped = shipper.export_batch().unwrap(); // batch 1 lost in transit
        src.write()
            .insert(
                "xdmod_x",
                "jobfact",
                vec![vec![Value::Str("comet".into()), Value::Float(9.0)]],
            )
            .unwrap();
        let batch2 = shipper.export_batch().unwrap();
        let hub = shared(Database::new());
        let mut receiver = LooseReceiver::new(hub, LinkConfig::renaming("xdmod_x", "hub_x"));
        let err = receiver.apply_batch(&batch2).unwrap_err();
        assert!(err.to_string().contains("gap"));
    }

    #[test]
    fn corrupted_shipment_rejected() {
        let src = satellite("xdmod_x", 1);
        let mut shipper = LooseShipper::new(src);
        let mut bytes = shipper.export_batch().unwrap().to_vec();
        let n = bytes.len();
        bytes[n / 2] ^= 0x40;
        let hub = shared(Database::new());
        let mut receiver = LooseReceiver::new(hub, LinkConfig::passthrough());
        assert!(receiver.apply_batch(&Bytes::from(bytes)).is_err());
    }

    #[test]
    fn dump_shipping_replaces_not_duplicates() {
        let src = satellite("xdmod_x", 4);
        let mut hub = Database::new();
        let dump = ship_dump(&src.read(), "xdmod_x", "hub_x").unwrap();
        assert_eq!(receive_dump(&mut hub, &dump).unwrap(), 4);
        assert_eq!(hub.table("hub_x", "jobfact").unwrap().len(), 4);
        // Second periodic shipment (same data) replaces rather than
        // appending.
        let dump2 = ship_dump(&src.read(), "xdmod_x", "hub_x").unwrap();
        receive_dump(&mut hub, &dump2).unwrap();
        assert_eq!(hub.table("hub_x", "jobfact").unwrap().len(), 4);
    }

    #[test]
    fn heterogeneous_federation_tight_plus_loose() {
        // Satellite X federates tight, satellite Y loose, same hub.
        use crate::replicator::Replicator;
        let x = satellite("xdmod_x", 2);
        let y = satellite("xdmod_y", 3);
        let hub = shared(Database::new());

        let mut tight = Replicator::new(
            x,
            Arc::clone(&hub),
            LinkConfig::renaming("xdmod_x", "hub_x"),
        );
        tight.poll().unwrap();

        let dump = ship_dump(&y.read(), "xdmod_y", "hub_y").unwrap();
        receive_dump(&mut hub.write(), &dump).unwrap();

        let hub = hub.read();
        assert_eq!(hub.table("hub_x", "jobfact").unwrap().len(), 2);
        assert_eq!(hub.table("hub_y", "jobfact").unwrap().len(), 3);
    }
}

//! Typed replication failures.
//!
//! The live link runs on a background thread; before this type existed a
//! panicked worker took the *caller* down too (`join().expect(..)` in
//! `stop()`). A federation hub must instead observe "this link died" as
//! data — mark the member degraded, keep serving the other satellites —
//! which is only possible if teardown returns an error value.

use std::fmt;
use xdmod_warehouse::{LogPosition, WarehouseError};

/// Why a replication link failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// The background polling thread panicked; `detail` carries the
    /// panic payload when it was a string.
    LinkPanicked {
        /// Label of the link whose worker died.
        link: String,
        /// Panic message, or a placeholder for non-string payloads.
        detail: String,
    },
    /// A seek asked for a watermark beyond the source binlog's current
    /// tail. Before this variant existed the position was accepted
    /// silently, and the link then stalled forever waiting for records
    /// that will never exist — a divergence (e.g. a restored source, or
    /// a tail lost to corruption) must be surfaced so the supervisor can
    /// resync instead.
    SeekBeyondTail {
        /// Label of the link whose seek was rejected.
        link: String,
        /// Position the caller asked for.
        requested: LogPosition,
        /// The source binlog's actual tail at the time of the seek.
        tail: LogPosition,
    },
    /// A warehouse operation on the link failed.
    Warehouse(WarehouseError),
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::LinkPanicked { link, detail } => {
                write!(f, "replication link {link:?} panicked: {detail}")
            }
            ReplicationError::SeekBeyondTail {
                link,
                requested,
                tail,
            } => write!(
                f,
                "replication link {link:?}: seek to {}/{} is beyond the \
                 source binlog tail {}/{}",
                requested.epoch, requested.seqno, tail.epoch, tail.seqno
            ),
            ReplicationError::Warehouse(e) => write!(f, "warehouse error on link: {e}"),
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<WarehouseError> for ReplicationError {
    fn from(e: WarehouseError) -> Self {
        ReplicationError::Warehouse(e)
    }
}

/// Render a `std::thread::JoinHandle` panic payload.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_link() {
        let e = ReplicationError::LinkPanicked {
            link: "site-x".into(),
            detail: "boom".into(),
        };
        assert_eq!(e.to_string(), "replication link \"site-x\" panicked: boom");
    }

    #[test]
    fn seek_beyond_tail_names_both_positions() {
        let e = ReplicationError::SeekBeyondTail {
            link: "site-x".into(),
            requested: LogPosition { epoch: 0, seqno: 9 },
            tail: LogPosition { epoch: 0, seqno: 4 },
        };
        let s = e.to_string();
        assert!(s.contains("site-x"));
        assert!(s.contains("0/9"));
        assert!(s.contains("0/4"));
    }

    #[test]
    fn warehouse_errors_convert() {
        let w = WarehouseError::UnknownSchema("inst_x".into());
        let e: ReplicationError = w.clone().into();
        assert_eq!(e, ReplicationError::Warehouse(w));
    }

    #[test]
    fn panic_detail_handles_both_string_kinds() {
        let a: Box<dyn std::any::Any + Send> = Box::new("static");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        let c: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_detail(a.as_ref()), "static");
        assert_eq!(panic_detail(b.as_ref()), "owned");
        assert_eq!(panic_detail(c.as_ref()), "non-string panic payload");
    }
}

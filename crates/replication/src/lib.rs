//! # xdmod-replication
//!
//! The Tungsten-Replicator stand-in that XDMoD federation is built on
//! (§II-C1). Provides the exact feature set the paper relies on:
//!
//! - **binlog tailing** with resumable `(epoch, seqno)` watermarks
//!   ([`replicator::Replicator`]), plus a threaded live mode
//!   ([`replicator::LiveReplicator`]) — "tight" federation;
//! - **schema renaming during transfer**, so the hub holds "one schema
//!   per XDMoD instance";
//! - **selective replication** ([`filter::ReplicationFilter`]): realm
//!   /table selection and per-resource routing (§II-C4);
//! - **loose federation** ([`loose`]): periodically shipped binlog
//!   batches or database dumps, batch-processed at the hub (§II-C2);
//! - **consistency verification** ([`consistency`]): checksum proof that
//!   "no data are lost or changed" in transit.

#![warn(missing_docs)]

pub mod consistency;
pub mod error;
pub mod filter;
pub mod loose;
pub mod replicator;

pub use consistency::{schemas_match, verify_schemas, TableCheck};
pub use error::ReplicationError;
pub use filter::ReplicationFilter;
pub use loose::{receive_dump, ship_dump, LooseReceiver, LooseShipper};
pub use replicator::{
    LinkConfig, LinkStats, LiveReplicator, Replicator, ResyncReport, RetryPolicy,
};

//! Criterion benches: end-to-end regeneration cost of every table and
//! figure in the paper. Each bench runs the full pipeline (simulate →
//! ingest → [federate] → aggregate → query) at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xdmod_bench::experiments as exp;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_top_resources", |b| {
        b.iter(|| black_box(exp::fig1(exp::SEED, 0.2).ranking))
    });
    g.bench_function("table1_aggregation_levels", |b| {
        b.iter(|| black_box(exp::table1(exp::SEED, 0.2).raw_total_jobs))
    });
    g.bench_function("fig2_fanin_topology", |b| {
        b.iter(|| black_box(exp::fig2(exp::SEED, 0.2).events_applied))
    });
    g.bench_function("fig3_dataflow_routing", |b| {
        b.iter(|| black_box(exp::fig3(exp::SEED, 0.2).hub_view.len()))
    });
    g.bench_function("fig4_auth_paths", |b| {
        b.iter(|| black_box(exp::fig4(10).sessions.len()))
    });
    g.bench_function("fig5_federated_auth", |b| {
        b.iter(|| black_box(exp::fig5().sessions.len()))
    });
    g.bench_function("fig6_storage_realm", |b| {
        b.iter(|| black_box(exp::fig6(exp::SEED, 0.2).dataset.width()))
    });
    g.bench_function("fig7_cloud_realm", |b| {
        b.iter(|| black_box(exp::fig7(exp::SEED, 0.5).bins.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

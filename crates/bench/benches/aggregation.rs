//! Criterion benches: why XDMoD pre-bins.
//!
//! "Data aggregation is a key data processing step in which XDMoD
//! pre-bins raw dimension data, enabling the application to respond
//! quickly to complex user queries" (§II-C3). These benches measure that
//! claim in our reproduction: querying materialized aggregation tables vs
//! running the same grouping over raw facts, the cost of the daily
//! materialization itself, and the cost of a full hub re-aggregation
//! after a level change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xdmod_core::XdmodInstance;
use xdmod_realms::levels::{hub_walltime, AggregationLevelsConfig, DIM_WALL_TIME};
use xdmod_realms::{jobs, RealmKind};
use xdmod_sim::{ClusterSim, ResourceProfile};
use xdmod_warehouse::{
    run_sharded, AggFn, Aggregate, Bins, CivilDate, GroupKey, Period, PoolConfig, Query, Row, Value,
};

fn instance_with_jobs(months: u8) -> XdmodInstance {
    let mut inst = XdmodInstance::new("bench");
    let mut profile = ResourceProfile::generic("rush", 256, 48.0, 1.0);
    profile.base_jobs_per_month = 800;
    let sim = ClusterSim::new(profile, 77);
    inst.ingest_sacct("rush", &sim.sacct_log(2017, 1..=months))
        .unwrap();
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, hub_walltime());
    inst.set_levels(levels);
    inst
}

fn wall_bins() -> Bins {
    let mut cfg = AggregationLevelsConfig::new();
    cfg.set(DIM_WALL_TIME, hub_walltime());
    cfg.bins_for(DIM_WALL_TIME).unwrap()
}

fn bench_query_raw_vs_materialized(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation_query_path");
    g.sample_size(30);
    let inst = instance_with_jobs(6);
    inst.aggregate().unwrap();
    let db = inst.database();
    let schema = inst.schema_name();

    // Query-time binning over raw facts (what a non-pre-binned system
    // would do per chart request).
    g.bench_function("raw_facts_bin_at_query_time", |b| {
        let query = Query::new()
            .group_by_period("end_time", Period::Month)
            .group(GroupKey::Binned("wall_hours".into(), wall_bins()))
            .aggregate(Aggregate::count("jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"));
        b.iter(|| {
            let db = db.read();
            let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
            black_box(query.run(t).unwrap().len())
        })
    });

    // Scanning the pre-binned monthly aggregate instead (XDMoD's path).
    g.bench_function("materialized_aggregate_scan", |b| {
        let query = Query::new()
            .group_by_column("period_id")
            .group_by_column("wall_hours_bin")
            .aggregate(Aggregate::of(AggFn::Sum, "job_count", "jobs"))
            .aggregate(Aggregate::of(AggFn::Sum, "total_cpu_hours", "cpu"));
        b.iter(|| {
            let db = db.read();
            let t = db.table(&schema, "jobfact_by_month").unwrap();
            black_box(query.run(t).unwrap().len())
        })
    });
    g.finish();
}

fn bench_materialization_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation_materialize");
    g.sample_size(10);
    for &months in &[3u8, 6, 12] {
        let inst = instance_with_jobs(months);
        g.bench_with_input(
            BenchmarkId::new("daily_aggregation_run", months),
            &months,
            |b, _| b.iter(|| inst.aggregate().unwrap()),
        );
    }
    g.finish();
}

fn bench_reaggregation_after_level_change(c: &mut Criterion) {
    // The administrative "re-aggregate all raw federation data" action:
    // rebinning the same facts under different levels.
    let mut g = c.benchmark_group("aggregation_rebin");
    g.sample_size(20);
    let inst = instance_with_jobs(6);
    let db = inst.database();
    let schema = inst.schema_name();
    for (name, bins) in [
        ("3_levels", {
            let mut cfg = AggregationLevelsConfig::new();
            cfg.set(DIM_WALL_TIME, xdmod_realms::levels::instance_b_walltime());
            cfg.bins_for(DIM_WALL_TIME).unwrap()
        }),
        ("5_levels", wall_bins()),
    ] {
        g.bench_function(name, |b| {
            let query = Query::new()
                .group(GroupKey::Binned("wall_hours".into(), bins.clone()))
                .aggregate(Aggregate::count("jobs"));
            b.iter(|| {
                let db = db.read();
                let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
                black_box(query.run(t).unwrap().len())
            })
        });
    }
    g.finish();
}

fn bench_group_by_cardinality(c: &mut Criterion) {
    // Group-key cardinality is the main cost driver of the parallel
    // fold/reduce; sweep it.
    let mut g = c.benchmark_group("aggregation_group_cardinality");
    g.sample_size(30);
    let inst = instance_with_jobs(6);
    let db = inst.database();
    let schema = inst.schema_name();
    for (name, key) in [
        ("by_resource_1", "resource"),
        ("by_queue_3", "queue"),
        ("by_user_many", "user"),
    ] {
        g.bench_function(name, |b| {
            let query = Query::new().group_by_column(key).aggregate(Aggregate::of(
                AggFn::Sum,
                "cpu_hours",
                "cpu",
            ));
            b.iter(|| {
                let db = db.read();
                let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
                black_box(query.run(t).unwrap().len())
            })
        });
    }
    g.finish();
}

fn bench_parallel_vs_serial_engine(c: &mut Criterion) {
    // The partitioned parallel engine vs the single-threaded fold over
    // the same 12-month fact table (hundreds of day-bucket shards folded
    // into 8 partitions). Same query, same result bytes; only the
    // execution strategy differs.
    let mut g = c.benchmark_group("aggregation_parallel_engine");
    g.sample_size(20);
    let inst = instance_with_jobs(12);
    let db = inst.database();
    let schema = inst.schema_name();
    let query = Query::new()
        .group_by_period("end_time", Period::Day)
        .group_by_column("resource")
        .group_by_column("queue")
        .aggregate(Aggregate::count("jobs"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"))
        .aggregate(Aggregate::of(AggFn::Avg, "wall_hours", "wall"));
    for (name, pool) in [
        ("serial", PoolConfig::serial()),
        ("workers_2", PoolConfig::new(2).with_shards(8)),
        ("workers_4", PoolConfig::new(4).with_shards(8)),
        ("workers_8", PoolConfig::new(8).with_shards(8)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let db = db.read();
                let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
                black_box(
                    run_sharded(&query, t, pool, db.telemetry(), "bench")
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_materialize_cache(c: &mut Criterion) {
    // The invalidation-aware aggregate cache: a cold rebuild recomputes
    // every period table; a repeat with an unchanged binlog watermark is
    // a cache hit and must be orders of magnitude cheaper.
    let mut g = c.benchmark_group("aggregation_materialize_cache");
    g.sample_size(10);
    let inst = instance_with_jobs(6);
    let db = inst.database();
    let schema = inst.schema_name();
    let spec = jobs::aggregation_spec(inst.levels());
    {
        let mut db = db.write();
        db.set_parallelism(PoolConfig::new(4).with_shards(8));
    }
    g.bench_function("cold_parallel_rebuild", |b| {
        b.iter(|| {
            let mut db = db.write();
            // Force a recompute: pretend an external rebuild happened.
            db.note_external_rebuild();
            spec.materialize_parallel(&mut db, &schema).unwrap()
        })
    });
    g.bench_function("warm_cached_repeat", |b| {
        {
            let mut db = db.write();
            spec.materialize_parallel(&mut db, &schema).unwrap();
        }
        b.iter(|| {
            let mut db = db.write();
            spec.materialize_parallel(&mut db, &schema).unwrap()
        })
    });
    g.finish();
}

fn bench_aggregation_incremental(c: &mut Criterion) {
    // Incremental view maintenance riding the binlog: a cold delta fold
    // rebuilds every shard from the full fact table; once the
    // per-(table, query) cursor is retained, folding a freshly ingested
    // day touches only that day's dirty shards; a quiet repeat with no
    // new binlog records folds zero rows. Cost should track the delta,
    // not the table.
    let mut g = c.benchmark_group("aggregation_incremental");
    g.sample_size(10);
    let inst = instance_with_jobs(12);
    let db = inst.database();
    let schema = inst.schema_name();
    {
        let mut db = db.write();
        db.set_parallelism(PoolConfig::new(4).with_shards(8));
    }
    let query = Query::new()
        .group_by_period("end_time", Period::Day)
        .group_by_column("resource")
        .aggregate(Aggregate::count("jobs"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"));
    // One synthetic day of jobs in the jobfact row shape. Days cycle
    // through a bounded window so group cardinality stays flat across
    // iterations instead of drifting the measurement.
    let day_batch = |day: i64| -> Vec<Row> {
        let base = CivilDate::new(2018, 1, 1).to_epoch() + day * 86_400;
        (0..48i64)
            .map(|i| {
                let t = base + i * 1_200;
                vec![
                    Value::Int(1_000_000 + day * 100 + i),
                    Value::Str(format!("res-{}", i % 3)),
                    Value::Str("u".into()),
                    Value::Str("pi".into()),
                    Value::Str("q1".into()),
                    Value::Int(2),
                    Value::Int(8),
                    Value::Time(t),
                    Value::Time(t),
                    Value::Time(t + 1_800),
                    Value::Float(i as f64 / 64.0),
                    Value::Float(0.0),
                    Value::Float(i as f64 / 32.0),
                    Value::Float(i as f64 / 16.0),
                    Value::Str("0".into()),
                    Value::Null,
                ]
            })
            .collect()
    };

    g.bench_function("cold_full_rebuild", |b| {
        b.iter(|| {
            let db = db.read();
            // Dropping the retained entry forces the cold path every time.
            db.delta_cache().clear();
            black_box(
                db.run_delta_fold(&schema, jobs::FACT_TABLE, &query, "bench")
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    g.bench_function("incremental_fold_one_day", |b| {
        {
            // Prime the cursor so every timed iteration is a true delta fold.
            let db = db.read();
            db.run_delta_fold(&schema, jobs::FACT_TABLE, &query, "bench")
                .unwrap();
        }
        let mut day = 0i64;
        b.iter(|| {
            let mut db = db.write();
            db.insert(&schema, jobs::FACT_TABLE, day_batch(day))
                .unwrap();
            day = (day + 1) % 30;
            let (rs, report) = db
                .run_delta_fold(&schema, jobs::FACT_TABLE, &query, "bench")
                .unwrap();
            assert!(report.is_incremental());
            black_box(rs.len())
        })
    });
    g.bench_function("quiet_fold_no_new_records", |b| {
        {
            let db = db.read();
            db.run_delta_fold(&schema, jobs::FACT_TABLE, &query, "bench")
                .unwrap();
        }
        b.iter(|| {
            let db = db.read();
            black_box(
                db.run_delta_fold(&schema, jobs::FACT_TABLE, &query, "bench")
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_aggregation_paged(c: &mut Criterion) {
    // The cold-shard paging engine vs the fully-resident store, same
    // 12-month fact table and the same sharded query. The paged variants
    // run under working-set budgets far below the table's footprint, so
    // every scan pays spill fault-ins; the gap is the price of running a
    // warehouse larger than RAM.
    let mut g = c.benchmark_group("aggregation_paged");
    g.sample_size(10);
    let inst = instance_with_jobs(12);
    let db = inst.database();
    let schema = inst.schema_name();
    let query = Query::new()
        .group_by_period("end_time", Period::Day)
        .group_by_column("resource")
        .aggregate(Aggregate::count("jobs"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"));
    let (table_def, rows, resident_result) = {
        let db = db.read();
        let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
        (
            t.schema().clone(),
            t.rows().unwrap().into_vec(),
            query.run(t).unwrap(),
        )
    };

    g.bench_function("resident_baseline", |b| {
        b.iter(|| {
            let db = db.read();
            let t = db.table(&schema, jobs::FACT_TABLE).unwrap();
            black_box(query.run(t).unwrap().len())
        })
    });

    for (name, budget) in [
        ("paged_64k_budget", 64 * 1024u64),
        ("paged_4k_budget", 4 * 1024),
    ] {
        let dir =
            std::env::temp_dir().join(format!("xdmod-bench-paged-{}-{name}", std::process::id()));
        let mut paged = xdmod_warehouse::Database::new();
        paged.set_parallelism(PoolConfig::new(4).with_shards(8));
        paged
            .enable_paging(
                xdmod_warehouse::PagingConfig::new(&dir)
                    .budget_bytes(budget)
                    .pages_per_table(16),
            )
            .unwrap();
        paged.create_schema(&schema).unwrap();
        paged.create_table(&schema, table_def.clone()).unwrap();
        paged
            .insert(&schema, jobs::FACT_TABLE, rows.clone())
            .unwrap();
        // Paged and resident engines must agree byte-for-byte before the
        // timing means anything.
        assert_eq!(
            paged
                .query_sharded(&schema, jobs::FACT_TABLE, &query)
                .unwrap(),
            resident_result
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    paged
                        .query_sharded(&schema, jobs::FACT_TABLE, &query)
                        .unwrap()
                        .len(),
                )
            })
        });
        drop(paged);
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_su_conversion(c: &mut Criterion) {
    // Ingest-time SU conversion overhead: parse+shred with and without a
    // configured conversion factor (the factor path multiplies per row).
    let mut g = c.benchmark_group("ingest_su_conversion");
    g.sample_size(20);
    let sim = ClusterSim::new(ResourceProfile::generic("rush", 256, 48.0, 1.7), 5);
    let log = sim.sacct_log(2017, 1..=2);
    let mut with = xdmod_realms::SuConverter::new();
    with.set_factor("rush", 1.7);
    let without = xdmod_realms::SuConverter::new();
    g.bench_function("with_factor", |b| {
        b.iter(|| {
            black_box(
                xdmod_ingest::slurm::shred(&log, "rush", &with)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    g.bench_function("unbenchmarked_fallback", |b| {
        b.iter(|| {
            black_box(
                xdmod_ingest::slurm::shred(&log, "rush", &without)
                    .unwrap()
                    .0
                    .len(),
            )
        })
    });
    g.finish();
    let _ = RealmKind::Jobs;
}

criterion_group!(
    benches,
    bench_query_raw_vs_materialized,
    bench_materialization_cost,
    bench_reaggregation_after_level_change,
    bench_group_by_cardinality,
    bench_parallel_vs_serial_engine,
    bench_materialize_cache,
    bench_aggregation_incremental,
    bench_aggregation_paged,
    bench_su_conversion
);
criterion_main!(benches);

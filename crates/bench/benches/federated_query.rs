//! Criterion benches: federated query scaling.
//!
//! Federation's value proposition is "reporting on the collection"
//! without visiting each instance (§II-A). These benches measure the
//! hub's unified query against (a) the number of satellites federated
//! and (b) the alternative of querying every satellite separately and
//! merging by hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xdmod_core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod_realms::RealmKind;
use xdmod_sim::{ClusterSim, ResourceProfile};
use xdmod_warehouse::{AggFn, Aggregate, Period, Query};

fn build_federation(n_satellites: usize) -> (Vec<XdmodInstance>, Federation) {
    let mut instances = Vec::new();
    for i in 0..n_satellites {
        let name = format!("sat-{i}");
        let resource = format!("res-{i}");
        let mut inst = XdmodInstance::new(&name);
        let mut profile = ResourceProfile::generic(&resource, 128, 24.0, 1.0);
        profile.base_jobs_per_month = 400;
        let sim = ClusterSim::new(profile, 1000 + i as u64);
        inst.ingest_sacct(&resource, &sim.sacct_log(2017, 1..=3))
            .unwrap();
        instances.push(inst);
    }
    let mut fed = Federation::new(FederationHub::new("hub"));
    for inst in &instances {
        fed.join_tight(inst, FederationConfig::default()).unwrap();
    }
    fed.sync().unwrap();
    (instances, fed)
}

fn monthly_su_query() -> Query {
    Query::new()
        .group_by_period("end_time", Period::Month)
        .group_by_column("resource")
        .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su"))
        .aggregate(Aggregate::count("jobs"))
}

fn bench_hub_query_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("federated_query_scaling");
    g.sample_size(20);
    for &n in &[1usize, 2, 4, 8] {
        let (_instances, fed) = build_federation(n);
        g.bench_with_input(BenchmarkId::new("hub_unified", n), &n, |b, _| {
            let q = monthly_su_query();
            b.iter(|| {
                black_box(
                    fed.hub()
                        .federated_query(RealmKind::Jobs, &q)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_hub_vs_per_satellite(c: &mut Criterion) {
    let mut g = c.benchmark_group("federated_vs_per_satellite");
    g.sample_size(20);
    let (instances, fed) = build_federation(4);
    let q = monthly_su_query();
    g.bench_function("hub_single_query", |b| {
        b.iter(|| {
            black_box(
                fed.hub()
                    .federated_query(RealmKind::Jobs, &q)
                    .unwrap()
                    .len(),
            )
        })
    });
    g.bench_function("visit_each_satellite_and_merge", |b| {
        b.iter(|| {
            // What an operator without federation does: query every
            // instance, then merge result sets by key.
            let mut merged = std::collections::BTreeMap::new();
            for inst in &instances {
                let rs = inst.query(RealmKind::Jobs, &q).unwrap();
                let su = rs.column_index("total_su").unwrap();
                for row in &rs.rows {
                    let key = (row[0].clone(), row[1].clone());
                    *merged.entry(key).or_insert(0.0) += row[su].as_f64().unwrap_or(0.0);
                }
            }
            black_box(merged.len())
        })
    });
    g.finish();
}

fn bench_sync_cycle(c: &mut Criterion) {
    // The steady-state federation cycle: new ingest on each satellite,
    // one sync, hub re-aggregation.
    let mut g = c.benchmark_group("federation_sync_cycle");
    g.sample_size(10);
    for &n in &[2usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let (mut instances, fed) = build_federation(n);
                    // Stage fresh data on every satellite.
                    for (i, inst) in instances.iter_mut().enumerate() {
                        let resource = format!("res-{i}");
                        let mut profile =
                            ResourceProfile::generic(&resource, 128, 24.0, 1.0);
                        profile.base_jobs_per_month = 200;
                        let sim = ClusterSim::new(profile, 2000 + i as u64);
                        inst.ingest_sacct(&resource, &sim.sacct_log(2017, 4..=4))
                            .unwrap();
                    }
                    fed
                },
                |mut fed| black_box(fed.sync_and_aggregate().unwrap()),
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hub_query_scaling,
    bench_hub_vs_per_satellite,
    bench_sync_cycle
);
criterion_main!(benches);

//! Criterion benches: replication-path ablations.
//!
//! The paper chose Tungsten-style live binlog replication ("tight") over
//! periodic dump shipping ("loose") (§II-C1/C2). These benches quantify
//! that design space in our reproduction: per-event binlog streaming vs
//! batched binlog files vs full snapshot dumps, plus the cost of
//! resource-routing filters and multi-hub fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use xdmod_replication::{
    receive_dump, ship_dump, LinkConfig, LooseReceiver, LooseShipper, ReplicationFilter,
    Replicator,
};
use xdmod_warehouse::{shared, ColumnType, Database, SchemaBuilder, SharedDatabase, Value};

/// Build a satellite with `n` jobfact rows split into `batches` inserts.
fn satellite(n: usize, batches: usize) -> SharedDatabase {
    let mut db = Database::new();
    db.create_schema("xdmod_x").unwrap();
    db.create_table(
        "xdmod_x",
        SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("cpu_hours", ColumnType::Float)
            .required("end_time", ColumnType::Time)
            .build()
            .unwrap(),
    )
    .unwrap();
    let per = (n / batches).max(1);
    let mut written = 0;
    while written < n {
        let take = per.min(n - written);
        let rows: Vec<Vec<Value>> = (0..take)
            .map(|i| {
                vec![
                    Value::Str(if (written + i) % 7 == 0 { "secret" } else { "open" }.into()),
                    Value::Float((written + i) as f64),
                    Value::Time(1_483_228_800 + (written + i) as i64 * 60),
                ]
            })
            .collect();
        db.insert("xdmod_x", "jobfact", rows).unwrap();
        written += take;
    }
    shared(db)
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_modes");
    g.sample_size(20);
    for &rows in &[1_000usize, 10_000] {
        let src = satellite(rows, 50);
        g.bench_with_input(BenchmarkId::new("tight_binlog", rows), &rows, |b, _| {
            b.iter(|| {
                let dst = shared(Database::new());
                let mut rep = Replicator::new(
                    Arc::clone(&src),
                    dst,
                    LinkConfig::renaming("xdmod_x", "hub_x"),
                );
                black_box(rep.poll().unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("loose_binlog_batch", rows), &rows, |b, _| {
            b.iter(|| {
                let dst = shared(Database::new());
                let mut shipper = LooseShipper::new(Arc::clone(&src));
                let mut receiver =
                    LooseReceiver::new(dst, LinkConfig::renaming("xdmod_x", "hub_x"));
                let batch = shipper.export_batch().unwrap();
                black_box(receiver.apply_batch(&batch).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("loose_full_dump", rows), &rows, |b, _| {
            b.iter(|| {
                let mut dst = Database::new();
                let dump = ship_dump(&src.read(), "xdmod_x", "hub_x").unwrap();
                black_box(receive_dump(&mut dst, &dump).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_filters");
    g.sample_size(20);
    let src = satellite(10_000, 50);
    g.bench_function("no_filter", |b| {
        b.iter(|| {
            let dst = shared(Database::new());
            let mut rep = Replicator::new(
                Arc::clone(&src),
                dst,
                LinkConfig::renaming("xdmod_x", "hub_x"),
            );
            black_box(rep.poll().unwrap())
        })
    });
    g.bench_function("resource_routing_filter", |b| {
        b.iter(|| {
            let dst = shared(Database::new());
            let filter = ReplicationFilter::all()
                .with_resource_column("jobfact", "resource")
                .exclude_resource("secret");
            let mut rep = Replicator::new(
                Arc::clone(&src),
                dst,
                LinkConfig::renaming("xdmod_x", "hub_x").with_filter(filter),
            );
            black_box(rep.poll().unwrap())
        })
    });
    g.finish();
}

fn bench_multi_hub(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_multi_hub");
    g.sample_size(20);
    let src = satellite(5_000, 25);
    for &hubs in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(hubs), &hubs, |b, &hubs| {
            b.iter(|| {
                let mut applied = 0;
                for _ in 0..hubs {
                    let dst = shared(Database::new());
                    let mut rep = Replicator::new(
                        Arc::clone(&src),
                        dst,
                        LinkConfig::renaming("xdmod_x", "hub_x"),
                    );
                    applied += rep.poll().unwrap();
                }
                black_box(applied)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes, bench_filters, bench_multi_hub);
criterion_main!(benches);

//! One function per table/figure of the paper: each builds the full
//! pipeline (simulate → ingest → optionally federate → query → dataset) and
//! returns structured results. The `fig*`/`table1` binaries print them;
//! the Criterion benches time them; EXPERIMENTS.md records their output.

use std::collections::BTreeMap;
use xdmod_chart::Dataset;
use xdmod_core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod_realms::cloud::avg_core_hours_per_vm;
use xdmod_realms::levels::{
    fig7_vm_memory_levels, hub_walltime, instance_a_walltime, instance_b_walltime,
    AggregationLevelsConfig, DIM_VM_MEMORY, DIM_WALL_TIME,
};
use xdmod_realms::RealmKind;
use xdmod_sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};
use xdmod_warehouse::{AggFn, Aggregate, CivilDate, GroupKey, OrderBy, Period, Predicate, Query};

/// Default deterministic seed for every experiment.
pub const SEED: u64 = 20180923; // CLUSTER'18 week

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Result of the Fig. 1 experiment.
pub struct Fig1 {
    /// Monthly XD SUs per resource, calendar 2017.
    pub dataset: Dataset,
    /// Resources ranked by total XD SUs (descending).
    pub ranking: Vec<(String, f64)>,
}

/// Regenerate **Fig. 1**: the top XSEDE-like resources of 2017 by total
/// XD SUs charged, as a monthly timeseries. `scale` multiplies job
/// volumes (1.0 reproduces the documented run).
pub fn fig1(seed: u64, scale: f64) -> Fig1 {
    let mut inst = XdmodInstance::new("xsede");
    for (mut profile, salt) in [
        (ResourceProfile::comet(), 1),
        (ResourceProfile::stampede(), 2),
        (ResourceProfile::stampede2(), 3),
    ] {
        profile.base_jobs_per_month =
            ((f64::from(profile.base_jobs_per_month) * scale).round() as u32).max(1);
        inst.set_su_factor(&profile.name, profile.hpl_gflops_per_core);
        let name = profile.name.clone();
        let sim = ClusterSim::new(profile, seed + salt);
        inst.ingest_sacct(&name, &sim.sacct_log(2017, 1..=12))
            .expect("simulated log parses");
    }
    let y2017 = CivilDate::new(2017, 1, 1).to_epoch();
    let y2018 = CivilDate::new(2018, 1, 1).to_epoch();
    let in_2017 = Predicate::TimeRange {
        column: "end_time".into(),
        start: y2017,
        end: y2018,
    };

    let monthly = inst
        .query(
            RealmKind::Jobs,
            &Query::new()
                .filter(in_2017.clone())
                .group_by_period("end_time", Period::Month)
                .group_by_column("resource")
                .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su")),
        )
        .expect("query");
    let dataset = Dataset::timeseries(
        "Fig 1: Top XSEDE resources 2017, by total XD SUs charged",
        "XD SU",
        &monthly,
        Period::Month,
        "end_time_month",
        Some("resource"),
        "total_su",
    )
    .expect("dataset");

    let totals = inst
        .query(
            RealmKind::Jobs,
            &Query::new()
                .filter(in_2017)
                .group_by_column("resource")
                .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su"))
                .order(OrderBy::ColumnDesc("total_su".into()))
                .limit(3),
        )
        .expect("query");
    let ranking = totals
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_f64().unwrap_or(0.0)))
        .collect();
    Fig1 { dataset, ranking }
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Result of the Table I experiment: job counts per wall-time bin, as
/// seen on Instance A, Instance B, and the federation hub.
pub struct Table1 {
    /// Bin label → job count, per view.
    pub views: BTreeMap<String, BTreeMap<String, i64>>,
    /// Raw job totals (for the losslessness check).
    pub raw_total_jobs: i64,
}

/// Regenerate **Table I**: two satellites with different wall-time
/// aggregation levels federate to a hub with its own spanning levels.
pub fn table1(seed: u64, scale: f64) -> Table1 {
    let jobs_per_month = ((200.0 * scale).round() as u32).max(1);
    let mk = |name: &str, resource: &str, wall_limit: f64, salt: u64| -> XdmodInstance {
        let mut inst = XdmodInstance::new(name);
        let mut profile = ResourceProfile::generic(resource, 128, wall_limit, 1.0);
        profile.base_jobs_per_month = jobs_per_month;
        let sim = ClusterSim::new(profile, seed + salt);
        inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
            .expect("log parses");
        inst
    };
    let mut a = mk("instance-a", "short-queue", 5.0, 10);
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, instance_a_walltime());
    a.set_levels(levels);
    a.aggregate().expect("aggregate A");

    let mut b = mk("instance-b", "long-queue", 50.0, 20);
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, instance_b_walltime());
    b.set_levels(levels);
    b.aggregate().expect("aggregate B");

    let mut hub = FederationHub::new("hub");
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, hub_walltime());
    hub.set_levels(levels);
    let mut fed = Federation::new(hub);
    fed.join_tight(&a, FederationConfig::default())
        .expect("join a");
    fed.join_tight(&b, FederationConfig::default())
        .expect("join b");
    fed.sync_and_aggregate().expect("sync");

    let mut views = BTreeMap::new();
    let count_bins = |db: &xdmod_warehouse::Database, schema: &str| -> BTreeMap<String, i64> {
        let t = db
            .table(schema, "jobfact_by_year")
            .expect("aggregate exists");
        let bin_idx = t.schema().column_index("wall_hours_bin").expect("bin col");
        let cnt_idx = t.schema().column_index("job_count").expect("count col");
        let mut out: BTreeMap<String, i64> = BTreeMap::new();
        for row in t.rows().expect("paged rows readable").iter() {
            let label = row[bin_idx].as_str().unwrap_or("NULL").to_owned();
            *out.entry(label).or_default() += row[cnt_idx].as_i64().unwrap_or(0);
        }
        out
    };
    {
        let db = a.database();
        views.insert(
            "Instance A".to_owned(),
            count_bins(&db.read(), &a.schema_name()),
        );
        let db = b.database();
        views.insert(
            "Instance B".to_owned(),
            count_bins(&db.read(), &b.schema_name()),
        );
        let db = fed.hub().database();
        let db = db.read();
        let mut hub_view: BTreeMap<String, i64> = BTreeMap::new();
        for sat in ["instance-a", "instance-b"] {
            for (label, n) in count_bins(&db, &FederationHub::schema_for(sat)) {
                *hub_view.entry(label).or_default() += n;
            }
        }
        views.insert("Federation Hub".to_owned(), hub_view);
    }
    let raw_total_jobs = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::count("jobs")),
        )
        .expect("query")
        .scalar_f64("jobs")
        .unwrap_or(0.0) as i64;
    Table1 {
        views,
        raw_total_jobs,
    }
}

// ---------------------------------------------------------------------
// Figures 2 & 3 (architecture: fan-in and routing)
// ---------------------------------------------------------------------

/// Result of the Fig. 2/Fig. 3 experiments.
pub struct Topology {
    /// Events applied at the hub during the sync.
    pub events_applied: usize,
    /// Job counts per resource, as the hub sees them.
    pub hub_view: BTreeMap<String, i64>,
    /// Resources that exist on satellites but were excluded from the hub.
    pub excluded: Vec<String>,
    /// Checksum verification outcome per member.
    pub members_verified: BTreeMap<String, bool>,
}

/// Regenerate **Fig. 2**: satellites X, Y, Z (resources L, M, N) fan in
/// to one hub over tight links.
pub fn fig2(seed: u64, scale: f64) -> Topology {
    fan_in(seed, scale, &[])
}

/// Regenerate **Fig. 3**: heterogeneous ingestion with resource routing —
/// instance Y monitors two resources (C, D) of which D is excluded from
/// federation, and instance X monitors A, B with B excluded.
pub fn fig3(seed: u64, scale: f64) -> Topology {
    fan_in_fig3(seed, scale)
}

fn fan_in(seed: u64, scale: f64, excluded: &[&str]) -> Topology {
    let jobs = ((150.0 * scale).round() as u32).max(1);
    let mut instances = Vec::new();
    for (i, (inst_name, resource)) in [
        ("instance-x", "resource-l"),
        ("instance-y", "resource-m"),
        ("instance-z", "resource-n"),
    ]
    .iter()
    .enumerate()
    {
        let mut inst = XdmodInstance::new(inst_name);
        let mut profile = ResourceProfile::generic(resource, 128, 24.0, 1.0);
        profile.base_jobs_per_month = jobs;
        let sim = ClusterSim::new(profile, seed + i as u64);
        inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=1))
            .expect("log parses");
        instances.push(inst);
    }
    run_topology(instances, excluded)
}

fn fan_in_fig3(seed: u64, scale: f64) -> Topology {
    let jobs = ((150.0 * scale).round() as u32).max(1);
    let mut x = XdmodInstance::new("instance-x");
    let mut y = XdmodInstance::new("instance-y");
    for (on_x, resource, salt) in [
        (true, "resource-a", 1u64),
        (true, "resource-b", 2),
        (false, "resource-c", 3),
        (false, "resource-d", 4),
    ] {
        let inst = if on_x { &mut x } else { &mut y };
        let mut profile = ResourceProfile::generic(resource, 128, 24.0, 1.0);
        profile.base_jobs_per_month = jobs;
        let sim = ClusterSim::new(profile, seed + salt);
        inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=1))
            .expect("log parses");
    }
    run_topology(vec![x, y], &["resource-b", "resource-d"])
}

fn run_topology(instances: Vec<XdmodInstance>, excluded: &[&str]) -> Topology {
    let mut fed = Federation::new(FederationHub::new("federated-hub"));
    for inst in &instances {
        let mut config = FederationConfig::default();
        for r in excluded {
            config = config.exclude(r);
        }
        fed.join_tight(inst, config).expect("join");
    }
    let events_applied = fed.sync_and_aggregate().expect("sync");
    let rs = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_column("resource")
                .aggregate(Aggregate::count("jobs")),
        )
        .expect("query");
    let hub_view: BTreeMap<String, i64> = rs
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_i64().unwrap_or(0)))
        .collect();
    let mut members_verified = BTreeMap::new();
    for inst in &instances {
        members_verified.insert(
            inst.name().to_owned(),
            fed.verify_member(inst).expect("verify"),
        );
    }
    Topology {
        events_applied,
        hub_view,
        excluded: excluded.iter().map(|s| (*s).to_owned()).collect(),
        members_verified,
    }
}

// ---------------------------------------------------------------------
// Figures 4 & 5 (authentication)
// ---------------------------------------------------------------------

/// Result of the Fig. 4/Fig. 5 experiments.
pub struct AuthFlows {
    /// (user, instance, method) per successful sign-on.
    pub sessions: Vec<(String, String, String)>,
    /// Sign-on attempts that were correctly refused.
    pub refused: usize,
    /// Persons in the federation identity map after dedup.
    pub persons_after_dedup: usize,
}

/// Regenerate **Fig. 4**: user group R (local passwords) and user group S
/// (SSO) signing on to the same instance. `n_users` scales each group.
pub fn fig4(n_users: usize) -> AuthFlows {
    use xdmod_auth::{AuthMode, IdentityProvider, InstanceAuth, ShibbolethIdp, User};
    let mut inst = InstanceAuth::new("ccr-xdmod", AuthMode::ServiceProvider, false);
    let mut idp = ShibbolethIdp::new("shibboleth.buffalo.edu", "secret");
    inst.trust_idp(&idp).expect("trust");
    let mut sessions = Vec::new();
    let mut refused = 0;
    let now = 1_500_000_000;
    for i in 0..n_users {
        // Group R.
        let name = format!("r{i:03}");
        inst.enroll(
            User::member(&name, &format!("{name}@buffalo.edu"), "buffalo.edu"),
            Some("pw"),
        );
        match inst.login_local(&name, "pw", now) {
            Some(s) => sessions.push((s.username, s.instance, "local".into())),
            None => refused += 1,
        }
        if inst.login_local(&name, "wrong", now).is_none() {
            refused += 1;
        }
        // Group S.
        let name = format!("s{i:03}");
        idp.enroll(
            &name,
            "sso-pw",
            BTreeMap::from([("email".to_owned(), format!("{name}@buffalo.edu"))]),
        );
        // Re-trust after enrolling (key unchanged; no-op but mirrors
        // metadata refresh).
        inst.trust_idp(&idp).expect("trust refresh");
        let assertion = idp
            .authenticate(&name, "sso-pw", "ccr-xdmod", now)
            .expect("assertion");
        match inst.login_sso(&assertion, now + 1) {
            Some(s) => sessions.push((s.username, s.instance, "sso".into())),
            None => refused += 1,
        }
    }
    AuthFlows {
        sessions,
        refused,
        persons_after_dedup: 0,
    }
}

/// Regenerate **Fig. 5**: users authenticating across a federation —
/// direct sign-on at satellites, SSO at others, multi-IdP SSO plus
/// delegated authentication at the hub — and the §II-D4 identity dedup.
pub fn fig5() -> AuthFlows {
    use xdmod_auth::{
        AuthMode, GlobusIdp, IdentityProvider, InstanceAuth, LdapIdp, ShibbolethIdp, User,
    };
    let now = 1_500_000_000;
    let mut sessions = Vec::new();
    let mut refused = 0;

    // Instance X: local-only users.
    let mut x = InstanceAuth::new("instance-x", AuthMode::ServiceProvider, false);
    x.enroll(
        User::member("xavier", "xavier@site-x.edu", "site-x.edu"),
        Some("pw-x"),
    );
    if let Some(s) = x.login_local("xavier", "pw-x", now) {
        sessions.push((s.username, s.instance, "local".into()));
    }

    // Instance Y: SSO via campus Shibboleth.
    let mut shib = ShibbolethIdp::new("shib.site-y.edu", "s");
    shib.enroll(
        "yolanda",
        "pw-y",
        BTreeMap::from([("email".to_owned(), "yolanda@site-y.edu".to_owned())]),
    );
    let mut y = InstanceAuth::new("instance-y", AuthMode::ServiceProvider, false);
    y.trust_idp(&shib).expect("trust");
    let a = shib
        .authenticate("yolanda", "pw-y", "instance-y", now)
        .expect("auth");
    if let Some(s) = y.login_sso(&a, now + 1) {
        sessions.push((s.username, s.instance, "sso".into()));
    }
    // Cross-instance replay is refused (audience restriction).
    let mut z_gateway = InstanceAuth::new("instance-z", AuthMode::ServiceProvider, false);
    z_gateway.trust_idp(&shib).expect("trust");
    if z_gateway.login_sso(&a, now + 1).is_none() {
        refused += 1;
    }

    // Hub: multi-source SSO (Shibboleth + Globus + LDAP).
    let mut globus = GlobusIdp::new("auth.globus.org", "g");
    globus.register("fred.globus", "pw-f");
    globus.link("fred.globus", "xsede_fred");
    let mut ldap = LdapIdp::new("ldap.site-z.edu", "l");
    ldap.add_entry("zoe", "pw-z");
    let mut hub = FederationHub::new("federated-hub");
    hub.auth_mut().trust_idp(&shib).expect("multi");
    hub.auth_mut().trust_idp(&globus).expect("multi");
    hub.auth_mut().trust_idp(&ldap).expect("multi");
    for (idp, user, pw) in [
        (
            &shib as &dyn xdmod_auth::IdentityProvider,
            "yolanda",
            "pw-y",
        ),
        (&globus, "fred.globus", "pw-f"),
        (&ldap, "zoe", "pw-z"),
    ] {
        let a = idp
            .authenticate(user, pw, "federated-hub", now)
            .expect("assertion");
        if let Some(s) = hub.auth_mut().login_sso(&a, now + 1) {
            sessions.push((s.username, s.instance, format!("sso:{}", a.issuer)));
        }
    }

    // Delegated satellite: honors hub sessions only.
    let mut delegated = InstanceAuth::new("instance-d", AuthMode::IdentityProviderDelegated, false);
    delegated.enroll(User::member("zoe", "zoe@site-z.edu", "site-z.edu"), None);
    let a = ldap
        .authenticate("zoe", "pw-z", "federated-hub", now + 2)
        .expect("assertion");
    let hub_session = hub.auth_mut().login_sso(&a, now + 2).expect("hub session");
    // The hub-issued token is valid at the hub...
    assert!(hub
        .auth()
        .validate_session(hub_session.token, now + 3)
        .is_some());
    // ...and the delegated satellite accepts the hub's session.
    if let Some(s) = delegated.login_delegated(&hub_session, now + 4) {
        sessions.push((s.username, s.instance, "delegated".into()));
    }

    // §II-D4: the same human on two instances, de-duplicated at the hub.
    let ids = hub.identity_map_mut();
    ids.register(
        "instance-x",
        &User::member("xavier", "x@one.edu", "one.edu"),
    );
    ids.register(
        "xsede-xdmod",
        &User::member("xsede_xavier", "x@one.edu", "one.edu"),
    );
    ids.register(
        "instance-y",
        &User::member("yolanda", "yolanda@site-y.edu", "site-y.edu"),
    );
    ids.auto_deduplicate();
    AuthFlows {
        sessions,
        refused,
        persons_after_dedup: ids.person_count(),
    }
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// Result of the Fig. 6 experiment.
pub struct Fig6 {
    /// Two-series dataset: file count and physical usage by month.
    pub dataset: Dataset,
}

/// Regenerate **Fig. 6**: CCR-like file count and physical storage usage
/// by month of 2017. `scale` multiplies the user population.
pub fn fig6(seed: u64, scale: f64) -> Fig6 {
    let mut sim_fss = Vec::new();
    for mut fs in [
        xdmod_sim::FilesystemProfile::isilon_home(),
        xdmod_sim::FilesystemProfile::gpfs_scratch(),
    ] {
        fs.n_users = ((fs.n_users as f64 * scale).round() as usize).max(1);
        sim_fss.push(fs);
    }
    let sim = StorageSim::new(sim_fss, seed);
    let mut inst = XdmodInstance::new("ccr");
    for doc in sim.year_documents(2017) {
        inst.ingest_storage_json(&doc).expect("valid document");
    }
    let rs = inst
        .query(
            RealmKind::Storage,
            &Query::new()
                .group_by_period("ts", Period::Month)
                .aggregate(Aggregate::of(AggFn::Sum, "file_count", "file_count"))
                .aggregate(Aggregate::of(
                    AggFn::Sum,
                    "physical_usage_gb",
                    "physical_usage_gb",
                )),
        )
        .expect("query");
    let mut dataset = Dataset::timeseries(
        "Fig 6: CCR file count and physical usage by month, 2017",
        "files / GB",
        &rs,
        Period::Month,
        "ts_month",
        None,
        "file_count",
    )
    .expect("dataset");
    // Add the second series (physical usage) on the same axis.
    let physical: Vec<Option<f64>> = rs
        .column("physical_usage_gb")
        .expect("column")
        .iter()
        .map(|v| v.as_f64())
        .collect();
    dataset
        .push_series("physical_usage_gb", physical)
        .expect("aligned");
    dataset.series[0].name = "file_count".into();
    Fig6 { dataset }
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Result of the Fig. 7 experiment.
pub struct Fig7 {
    /// Memory-bin labels in ascending order.
    pub bins: Vec<String>,
    /// Average core hours per VM, per bin.
    pub avg_core_hours: Vec<f64>,
    /// Number of VMs per bin.
    pub vm_counts: Vec<i64>,
}

/// Regenerate **Fig. 7**: average core hours per VM by VM memory size on
/// a CCR-like research cloud, 2017. `scale` multiplies VM volume.
pub fn fig7(seed: u64, scale: f64) -> Fig7 {
    let vms = ((30.0 * scale).round() as u32).max(4);
    let sim = CloudSim::new("ccr-cloud", vms, seed);
    let mut inst = XdmodInstance::new("ccr");
    inst.ingest_cloud_feed(&sim.event_feed(2017), CloudSim::horizon(2017))
        .expect("feed parses");
    let bins = {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
        cfg.bins_for(DIM_VM_MEMORY).expect("bins compile")
    };
    let rs = inst
        .query(
            RealmKind::Cloud,
            &Query::new()
                .group(GroupKey::Binned("memory_gb".into(), bins))
                .aggregate(Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours"))
                .aggregate(Aggregate::of(AggFn::CountDistinct, "vm_id", "num_vms")),
        )
        .expect("query");
    let avg = avg_core_hours_per_vm(&rs).expect("columns present");
    // Order by the paper's bin order.
    let want = ["<1 GB", "1-2 GB", "2-4 GB", "4-8 GB"];
    let labels: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    let vm_idx = rs.column_index("num_vms").expect("col");
    let mut out = Fig7 {
        bins: Vec::new(),
        avg_core_hours: Vec::new(),
        vm_counts: Vec::new(),
    };
    for w in want {
        if let Some(i) = labels.iter().position(|l| l == w) {
            out.bins.push(w.to_owned());
            out.avg_core_hours.push(avg[i]);
            out.vm_counts.push(rs.rows[i][vm_idx].as_i64().unwrap_or(0));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parallel partitioned aggregation
// ---------------------------------------------------------------------

/// Result of the serial-vs-parallel aggregation rebuild measurement.
pub struct ParallelAgg {
    /// Wall seconds of the single-threaded rebuild.
    pub serial_seconds: f64,
    /// Wall seconds of the partitioned parallel rebuild.
    pub parallel_seconds: f64,
    /// Wall seconds of the repeat rebuild with an unchanged binlog
    /// watermark (the invalidation-aware cache's O(1) path).
    pub cached_seconds: f64,
    /// Serial and parallel outputs are byte-identical per period table.
    pub identical: bool,
}

/// Measure the partitioned parallel aggregation engine against the
/// single-threaded rebuild over the same simulated fact table, then a
/// cached repeat. Both strategies must produce byte-identical aggregate
/// tables — the measurement doubles as an end-to-end determinism check.
pub fn parallel_aggregation(seed: u64, months: u8, workers: usize) -> ParallelAgg {
    use std::time::Instant;
    use xdmod_realms::jobs;
    use xdmod_warehouse::PoolConfig;

    let build = || {
        let mut inst = XdmodInstance::new("bench");
        let mut profile = ResourceProfile::generic("rush", 256, 48.0, 1.0);
        profile.base_jobs_per_month = 2_000;
        let sim = ClusterSim::new(profile, seed);
        inst.ingest_sacct("rush", &sim.sacct_log(2017, 1..=months))
            .expect("simulated log parses");
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, hub_walltime());
        inst.set_levels(levels);
        inst
    };

    let serial = build();
    let spec = jobs::aggregation_spec(serial.levels());
    let serial_db = serial.database();
    let start = Instant::now();
    spec.materialize(&mut serial_db.write(), &serial.schema_name())
        .expect("serial rebuild");
    let serial_seconds = start.elapsed().as_secs_f64();

    let parallel = build();
    let parallel_db = parallel.database();
    parallel_db
        .write()
        .set_parallelism(PoolConfig::new(workers).with_shards(workers.max(1) * 2));
    let start = Instant::now();
    spec.materialize_parallel(&mut parallel_db.write(), &parallel.schema_name())
        .expect("parallel rebuild");
    let parallel_seconds = start.elapsed().as_secs_f64();

    // Repeat with no new ingest: served from the aggregate cache.
    let start = Instant::now();
    spec.materialize_parallel(&mut parallel_db.write(), &parallel.schema_name())
        .expect("cached repeat");
    let cached_seconds = start.elapsed().as_secs_f64();

    let identical = {
        let a = serial_db.read();
        let b = parallel_db.read();
        spec.periods.iter().all(|period| {
            let table = spec.table_name(*period);
            let lhs = a
                .table(&serial.schema_name(), &table)
                .expect("serial table");
            let rhs = b
                .table(&parallel.schema_name(), &table)
                .expect("parallel table");
            // xc-allow: page-slot mutexes are leaves acquired strictly under the db lock; they never take a db lock back
            lhs.content_checksum() == rhs.content_checksum()
        })
    };

    ParallelAgg {
        serial_seconds,
        parallel_seconds,
        cached_seconds,
        identical,
    }
}

// ---------------------------------------------------------------------
// Incremental aggregation (delta folds riding the binlog)
// ---------------------------------------------------------------------

/// Result of the incremental-vs-recompute maintenance measurement.
pub struct IncrementalAgg {
    /// Wall seconds of the cold rebuild that seeds the delta cursors.
    pub cold_seconds: f64,
    /// Wall seconds of re-materializing after a late month of jobs with
    /// the delta-fold engine on: only the new binlog records are folded.
    pub incremental_seconds: f64,
    /// Wall seconds of the same re-materialization on a twin instance
    /// with incremental maintenance disabled (full recompute).
    pub full_rebuild_seconds: f64,
    /// Wall seconds of the repeat with an unchanged binlog watermark.
    pub cached_seconds: f64,
    /// Binlog records folded by the incremental pass (from telemetry).
    pub records_folded: u64,
    /// Incremental and from-scratch outputs are byte-identical per
    /// period table.
    pub identical: bool,
}

/// Measure incremental view maintenance against a from-scratch rebuild:
/// two identical instances materialize, ingest the same late month, and
/// re-materialize — one riding the delta-fold cursors, the twin with the
/// engine disabled. Byte-identical period tables are required, so the
/// measurement doubles as an end-to-end correctness check of the
/// incremental path.
pub fn incremental_aggregation(seed: u64, months: u8, workers: usize) -> IncrementalAgg {
    use std::time::Instant;
    use xdmod_realms::jobs;
    use xdmod_warehouse::PoolConfig;

    let build = || {
        let mut inst = XdmodInstance::new("bench");
        let mut profile = ResourceProfile::generic("rush", 256, 48.0, 1.0);
        profile.base_jobs_per_month = 2_000;
        let sim = ClusterSim::new(profile, seed);
        inst.ingest_sacct("rush", &sim.sacct_log(2017, 1..=months))
            .expect("simulated log parses");
        let mut levels = AggregationLevelsConfig::new();
        levels.set(DIM_WALL_TIME, hub_walltime());
        inst.set_levels(levels);
        inst
    };
    // The late delta: one extra month of jobs from an independent stream.
    let late_log = {
        let mut profile = ResourceProfile::generic("rush", 256, 48.0, 1.0);
        profile.base_jobs_per_month = 500;
        ClusterSim::new(profile, seed.wrapping_add(99)).sacct_log(2018, 1..=1)
    };

    let mut incr = build();
    let spec = jobs::aggregation_spec(incr.levels());
    let incr_db = incr.database();
    let reg = xdmod_telemetry::MetricsRegistry::new();
    {
        let mut db = incr_db.write();
        db.set_parallelism(PoolConfig::new(workers).with_shards(workers.max(1) * 2));
        db.set_telemetry(reg.clone());
    }
    let start = Instant::now();
    spec.materialize_parallel(&mut incr_db.write(), &incr.schema_name())
        .expect("cold rebuild");
    let cold_seconds = start.elapsed().as_secs_f64();

    let mut full = build();
    let full_db = full.database();
    {
        let mut db = full_db.write();
        db.set_parallelism(PoolConfig::new(workers).with_shards(workers.max(1) * 2));
        db.set_incremental(false);
    }
    spec.materialize_parallel(&mut full_db.write(), &full.schema_name())
        .expect("full-twin rebuild");

    incr.ingest_sacct("rush", &late_log).expect("late ingest");
    full.ingest_sacct("rush", &late_log).expect("late ingest");

    let folded_before = reg
        .snapshot()
        .counter_total("warehouse_delta_folded_records_total");
    let start = Instant::now();
    spec.materialize_parallel(&mut incr_db.write(), &incr.schema_name())
        .expect("incremental re-aggregation");
    let incremental_seconds = start.elapsed().as_secs_f64();
    let records_folded = reg
        .snapshot()
        .counter_total("warehouse_delta_folded_records_total")
        .saturating_sub(folded_before);

    let start = Instant::now();
    spec.materialize_parallel(&mut full_db.write(), &full.schema_name())
        .expect("full re-aggregation");
    let full_rebuild_seconds = start.elapsed().as_secs_f64();

    // Repeat with no new ingest: served from the aggregate cache.
    let start = Instant::now();
    spec.materialize_parallel(&mut incr_db.write(), &incr.schema_name())
        .expect("cached repeat");
    let cached_seconds = start.elapsed().as_secs_f64();

    let identical = {
        let a = incr_db.read();
        let b = full_db.read();
        spec.periods.iter().all(|period| {
            let table = spec.table_name(*period);
            let lhs = a.table(&incr.schema_name(), &table).expect("incr table");
            let rhs = b.table(&full.schema_name(), &table).expect("full table");
            // xc-allow: page-slot mutexes are leaves acquired strictly under the db lock; they never take a db lock back
            lhs.content_checksum() == rhs.content_checksum()
        })
    };

    IncrementalAgg {
        cold_seconds,
        incremental_seconds,
        full_rebuild_seconds,
        cached_seconds,
        records_folded,
        identical,
    }
}

// ---------------------------------------------------------------------
// Cold-shard paging (larger-than-RAM warehouse)
// ---------------------------------------------------------------------

/// Result of the paged-vs-resident aggregation measurement.
pub struct PagedAgg {
    /// Working-set budget the paged run was held to, in bytes.
    pub budget_bytes: u64,
    /// Approximate bytes of the fact table (what a resident store holds).
    pub table_bytes: u64,
    /// Wall seconds of the sharded query on the fully-resident store.
    pub resident_seconds: f64,
    /// Wall seconds of the same query on the paged store: every scan
    /// pays spill fault-ins because the budget is far below the table.
    pub paged_seconds: f64,
    /// Pages faulted in during the paged run (from residency stats).
    pub fault_ins: u64,
    /// Pages evicted during the paged run.
    pub evictions: u64,
    /// Paged and resident results are byte-identical.
    pub identical: bool,
}

/// Measure the cold-shard paging engine against a fully-resident twin:
/// the same simulated fact table, the same sharded query, one store
/// paged under a working-set budget far below the table's footprint.
/// Byte-identical results are required, so the measurement doubles as a
/// correctness check of the spill/fault-in path.
pub fn paged_aggregation(seed: u64, months: u8, workers: usize, budget_bytes: u64) -> PagedAgg {
    use std::time::Instant;
    use xdmod_realms::jobs;
    use xdmod_warehouse::{PagingConfig, PoolConfig};

    let resident = {
        let mut inst = XdmodInstance::new("bench");
        let mut profile = ResourceProfile::generic("rush", 256, 48.0, 1.0);
        profile.base_jobs_per_month = 2_000;
        let sim = ClusterSim::new(profile, seed);
        inst.ingest_sacct("rush", &sim.sacct_log(2017, 1..=months))
            .expect("simulated log parses");
        inst
    };
    let query = Query::new()
        .group_by_period("end_time", Period::Day)
        .group_by_column("resource")
        .aggregate(Aggregate::count("jobs"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"));
    let resident_db = resident.database();
    resident_db
        .write()
        .set_parallelism(PoolConfig::new(workers).with_shards(workers.max(1) * 2));
    let schema = resident.schema_name();

    let (table_def, rows, table_bytes) = {
        let db = resident_db.read();
        let t = db.table(&schema, jobs::FACT_TABLE).expect("fact table");
        let rows = t.rows().expect("rows readable").into_vec();
        let bytes = rows
            .iter()
            .map(xdmod_warehouse::resident::approx_row_bytes)
            .sum();
        (t.schema().clone(), rows, bytes)
    };

    let dir = std::env::temp_dir().join(format!(
        "xdmod-bench-pagedagg-{}-{seed}",
        std::process::id()
    ));
    let mut paged = xdmod_warehouse::Database::new();
    paged.set_parallelism(PoolConfig::new(workers).with_shards(workers.max(1) * 2));
    paged
        .enable_paging(
            PagingConfig::new(&dir)
                .budget_bytes(budget_bytes)
                .pages_per_table(16),
        )
        .expect("enable paging");
    paged.create_schema(&schema).expect("schema");
    paged
        .create_table(&schema, table_def)
        .expect("create table");
    paged
        .insert(&schema, jobs::FACT_TABLE, rows)
        .expect("insert");

    let start = Instant::now();
    let want = {
        let db = resident_db.read();
        db.query_sharded(&schema, jobs::FACT_TABLE, &query)
            .expect("resident query")
    };
    let resident_seconds = start.elapsed().as_secs_f64();

    let before = paged.residency_stats().expect("paging is on");
    let start = Instant::now();
    let got = paged
        .query_sharded(&schema, jobs::FACT_TABLE, &query)
        .expect("paged query");
    let paged_seconds = start.elapsed().as_secs_f64();
    let after = paged.residency_stats().expect("paging is on");

    let identical = got == want;
    let _ = std::fs::remove_dir_all(&dir);
    PagedAgg {
        budget_bytes,
        table_bytes,
        resident_seconds,
        paged_seconds,
        fault_ins: after.fault_ins.saturating_sub(before.fault_ins),
        evictions: after.evictions.saturating_sub(before.evictions),
        identical,
    }
}

// ---------------------------------------------------------------------
// Gateway serving throughput
// ---------------------------------------------------------------------

/// Result of the serving-tier throughput measurement.
pub struct GatewayThroughput {
    /// Wall seconds for the first (cold) federated query: full compute
    /// through the hub plus serialization.
    pub cold_seconds: f64,
    /// Requests/sec for repeated 200s where the hub's memoized query
    /// cache absorbs the compute and only serialization remains.
    pub cache_hit_rps: f64,
    /// Requests/sec for `If-None-Match` revalidations answered 304 —
    /// the watermark-derived version check alone, no body at all.
    pub revalidate_rps: f64,
    /// Requests measured per hot loop.
    pub requests: usize,
    /// Worker panics observed (must be zero).
    pub worker_panics: u64,
}

/// Measure gateway requests/sec on the loopback interface for the three
/// serving regimes: a cold federated query, memoized-cache hits, and
/// ETag revalidation 304s. One sequential client so the numbers compare
/// per-request cost, not connection concurrency.
pub fn gateway_throughput(seed: u64, requests: usize) -> GatewayThroughput {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, RwLock};
    use std::time::Instant;
    use xdmod_auth::{Role, User};
    use xdmod_gateway::{serve, GatewayConfig, SESSION_COOKIE};

    let mut fed = Federation::new(FederationHub::new("bench-hub"));
    for (name, resource, salt) in [("site-a", "res-a", 1), ("site-b", "res-b", 2)] {
        let mut inst = XdmodInstance::new(name);
        inst.set_su_factor(resource, 1.0);
        let sim = ClusterSim::new(
            ResourceProfile::generic(resource, 128, 48.0, 1.0),
            seed + salt,
        );
        inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
            .expect("simulated log parses");
        fed.join_tight(&inst, FederationConfig::default())
            .expect("join");
    }
    fed.sync().expect("sync");
    fed.hub_mut().auth_mut().enroll(
        User::member("bench", "bench@hub", "hub").with_role(Role::CenterStaff),
        Some("bench-pw"),
    );
    // The gateway validates sessions against real wall-clock time.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_secs() as i64;
    let session = fed
        .hub_mut()
        .auth_mut()
        .login_local("bench", "bench-pw", now)
        .expect("login");
    let cookie = format!("Cookie: {SESSION_COOKIE}={}\r\n", session.cookie_value());

    let fed = Arc::new(RwLock::new(fed));
    // Rate limiting off the table: this measures serving cost.
    let config = GatewayConfig::default().with_rate_limit(10_000_000, 1_000_000);
    let handle = serve(fed, config, None).expect("bind gateway");
    let addr = handle.addr();

    let exchange = |headers: &str| -> (u16, String, String) {
        let target = "/query?realm=jobs&metric=job_count&dimension=resource&view=aggregate";
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n{headers}\r\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("recv");
        let status = response
            .split(' ')
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status");
        let (head, body) = response.split_once("\r\n\r\n").expect("split");
        (status, head.to_owned(), body.to_owned())
    };

    let start = Instant::now();
    let (status, head, _) = exchange(&cookie);
    let cold_seconds = start.elapsed().as_secs_f64();
    assert_eq!(status, 200, "cold query");
    let etag = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("etag").then(|| v.trim().to_owned())
        })
        .expect("etag");

    let start = Instant::now();
    for _ in 0..requests {
        let (status, _, _) = exchange(&cookie);
        assert_eq!(status, 200);
    }
    let cache_hit_rps = requests as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let revalidate = format!("{cookie}If-None-Match: {etag}\r\n");
    let start = Instant::now();
    for _ in 0..requests {
        let (status, _, _) = exchange(&revalidate);
        assert_eq!(status, 304);
    }
    let revalidate_rps = requests as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let worker_panics = handle.worker_panics();
    handle.shutdown();
    GatewayThroughput {
        cold_seconds,
        cache_hit_rps,
        revalidate_rps,
        requests,
        worker_panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_ranking_matches_paper() {
        let r = fig1(SEED, 0.3);
        let names: Vec<&str> = r.ranking.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["comet", "stampede2", "stampede"]);
        assert_eq!(r.dataset.labels.len(), 12);
    }

    #[test]
    fn table1_bins_are_lossless() {
        let t = table1(SEED, 0.5);
        let hub_total: i64 = t.views["Federation Hub"].values().sum();
        assert_eq!(hub_total, t.raw_total_jobs);
        let a_total: i64 = t.views["Instance A"].values().sum();
        let b_total: i64 = t.views["Instance B"].values().sum();
        assert_eq!(a_total + b_total, hub_total);
    }

    #[test]
    fn fig2_all_members_verified() {
        let t = fig2(SEED, 0.3);
        assert_eq!(t.hub_view.len(), 3);
        assert!(t.members_verified.values().all(|v| *v));
        assert!(t.events_applied > 0);
    }

    #[test]
    fn fig3_excluded_resources_absent_from_hub() {
        let t = fig3(SEED, 0.3);
        assert!(t.hub_view.contains_key("resource-a"));
        assert!(t.hub_view.contains_key("resource-c"));
        assert!(!t.hub_view.contains_key("resource-b"));
        assert!(!t.hub_view.contains_key("resource-d"));
    }

    #[test]
    fn fig4_both_groups_sign_on() {
        let f = fig4(5);
        assert_eq!(f.sessions.len(), 10);
        assert_eq!(f.refused, 5); // one wrong-password attempt per R user
        assert!(f.sessions.iter().any(|(_, _, m)| m == "local"));
        assert!(f.sessions.iter().any(|(_, _, m)| m == "sso"));
    }

    #[test]
    fn fig5_federated_auth_flows() {
        let f = fig5();
        // xavier local, yolanda sso, 3 hub SSO (+1 zoe re-login), 1 delegated.
        assert!(f.sessions.len() >= 6);
        assert!(f.refused >= 1); // cross-audience replay refused
        assert!(f.sessions.iter().any(|(_, _, m)| m == "delegated"));
        // xavier's two accounts merged; yolanda separate.
        assert_eq!(f.persons_after_dedup, 2);
    }

    #[test]
    fn fig6_both_series_grow() {
        let f = fig6(SEED, 0.3);
        assert_eq!(f.dataset.series.len(), 2);
        for s in &f.dataset.series {
            let vals: Vec<f64> = s.values.iter().flatten().copied().collect();
            assert_eq!(vals.len(), 12);
            for w in vals.windows(2) {
                assert!(w[1] > w[0], "{} not growing", s.name);
            }
        }
    }

    #[test]
    fn parallel_aggregation_is_deterministic() {
        let r = parallel_aggregation(SEED, 2, 4);
        assert!(r.identical, "serial and parallel outputs diverged");
        assert!(r.serial_seconds > 0.0 && r.parallel_seconds > 0.0);
        // The cached repeat skips the fold entirely; it must not cost
        // more than the cold rebuild it short-circuits.
        assert!(r.cached_seconds <= r.parallel_seconds);
    }

    #[test]
    fn incremental_aggregation_matches_full_rebuild() {
        let r = incremental_aggregation(SEED, 2, 4);
        assert!(r.identical, "incremental and full-rebuild outputs diverged");
        assert!(
            r.records_folded > 0,
            "re-aggregation did not ride the delta"
        );
        assert!(r.cold_seconds > 0.0 && r.incremental_seconds > 0.0);
        assert!(r.full_rebuild_seconds > 0.0);
        // The cached repeat skips the fold entirely; it must not cost
        // more than the incremental pass it short-circuits.
        assert!(r.cached_seconds <= r.incremental_seconds);
    }

    #[test]
    fn paged_aggregation_matches_resident() {
        let r = paged_aggregation(SEED, 2, 4, 4 * 1024);
        assert!(r.identical, "paged and resident results diverged");
        assert!(r.resident_seconds > 0.0 && r.paged_seconds > 0.0);
        assert!(
            r.table_bytes > r.budget_bytes,
            "table ({}) must overflow the budget ({})",
            r.table_bytes,
            r.budget_bytes
        );
        assert!(r.fault_ins > 0, "paged scan never faulted a page in");
        assert!(r.evictions > 0, "working set never churned");
    }

    #[test]
    fn gateway_throughput_serves_all_three_regimes() {
        let g = gateway_throughput(SEED, 10);
        assert!(g.cold_seconds > 0.0);
        assert!(g.cache_hit_rps > 0.0);
        assert!(g.revalidate_rps > 0.0);
        assert_eq!(g.worker_panics, 0);
    }

    #[test]
    fn fig7_increasing_by_bin() {
        let f = fig7(SEED, 1.0);
        assert_eq!(f.bins.len(), 4);
        for w in f.avg_core_hours.windows(2) {
            assert!(w[1] > w[0], "{:?}", f.avg_core_hours);
        }
        assert!(f.vm_counts.iter().all(|&n| n > 0));
    }
}

//! # xdmod-bench
//!
//! The benchmark/regeneration harness: one entry point per table and
//! figure of the paper (see [`experiments`]), shared by the `fig*` /
//! `table1` binaries and the Criterion benches.
//!
//! | Paper artifact | Function | Binary | Criterion bench |
//! |---|---|---|---|
//! | Fig. 1 (top resources by XD SU) | [`experiments::fig1`] | `fig1` | `figures/fig1` |
//! | Table I (aggregation levels)   | [`experiments::table1`] | `table1` | `figures/table1` |
//! | Fig. 2 (fan-in topology)       | [`experiments::fig2`] | `fig2` | `figures/fig2` |
//! | Fig. 3 (dataflow + routing)    | [`experiments::fig3`] | `fig3` | `figures/fig3` |
//! | Fig. 4 (two auth paths)        | [`experiments::fig4`] | `fig4` | `figures/fig4` |
//! | Fig. 5 (federated auth)        | [`experiments::fig5`] | `fig5` | `figures/fig5` |
//! | Fig. 6 (storage realm)         | [`experiments::fig6`] | `fig6` | `figures/fig6` |
//! | Fig. 7 (cloud realm)           | [`experiments::fig7`] | `fig7` | `figures/fig7` |
//!
//! Ablation/performance benches live in `benches/`: replication
//! throughput (tight vs loose), aggregation materialization vs
//! query-time binning, federated vs per-satellite query, and parallel
//! aggregation scaling.

#![warn(missing_docs)]

pub mod experiments;

use std::io::Write;
use std::path::Path;

/// Write a figure's artifacts (SVG + CSV) into `dir`, creating it.
pub fn write_artifacts(
    dir: &Path,
    name: &str,
    dataset: &xdmod_chart::Dataset,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let svg = xdmod_chart::svg_chart(dataset, 720, 400);
    std::fs::File::create(dir.join(format!("{name}.svg")))?.write_all(svg.as_bytes())?;
    let csv = xdmod_chart::to_csv(dataset);
    std::fs::File::create(dir.join(format!("{name}.csv")))?.write_all(csv.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_written_to_disk() {
        let dir = std::env::temp_dir().join("xdmod-bench-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let f = experiments::fig6(experiments::SEED, 0.1);
        write_artifacts(&dir, "fig6", &f.dataset).unwrap();
        assert!(dir.join("fig6.svg").exists());
        assert!(dir.join("fig6.csv").exists());
        let svg = std::fs::read_to_string(dir.join("fig6.svg")).unwrap();
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

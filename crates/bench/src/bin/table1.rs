//! Regenerate the paper's Table I: job wall-time aggregation levels on
//! Instance A, Instance B, and the federation hub, with the lossless
//! re-aggregation check.

use xdmod_bench::experiments::{table1, SEED};

fn main() {
    let t = table1(SEED, 1.0);
    println!("TABLE I — job wall time aggregation levels (job counts)\n");
    for (view, bins) in &t.views {
        println!("{view}:");
        for (label, n) in bins {
            println!("  {label:<16} {n:>8} jobs");
        }
        let total: i64 = bins.values().sum();
        println!("  {:<16} {total:>8} jobs\n", "TOTAL");
    }
    println!("raw jobs replicated to the hub: {}", t.raw_total_jobs);
    let hub_total: i64 = t.views["Federation Hub"].values().sum();
    assert_eq!(hub_total, t.raw_total_jobs, "re-binning must be lossless");
    println!("re-aggregation is lossless: hub bins sum to the raw total ✓");
}

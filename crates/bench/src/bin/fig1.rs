//! Regenerate the paper's Fig. 1: top XSEDE resources of 2017 by total
//! XD SUs charged (monthly timeseries + ranking).

use xdmod_bench::experiments::{fig1, SEED};

fn main() {
    let r = fig1(SEED, 1.0);
    println!("{}", xdmod_chart::ascii_chart(&r.dataset, 16));
    println!("Total XD SUs charged, 2017 (ranked):");
    for (i, (name, su)) in r.ranking.iter().enumerate() {
        println!("  {}. {:<12} {:>14.0} XD SU", i + 1, name, su);
    }
    let dir = std::path::Path::new("results");
    xdmod_bench::write_artifacts(dir, "fig1", &r.dataset).expect("write artifacts");
    println!("\nartifacts: results/fig1.svg, results/fig1.csv");
}

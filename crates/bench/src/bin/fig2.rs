//! Regenerate the paper's Fig. 2: three satellite instances fan in to a
//! federated hub over tight replication links.

use xdmod_bench::experiments::{fig2, SEED};

fn main() {
    let t = fig2(SEED, 1.0);
    println!("Fig 2 — fan-in federation of three satellites\n");
    println!("events applied at the hub: {}", t.events_applied);
    println!("\nhub's unified view (jobs per resource):");
    for (resource, jobs) in &t.hub_view {
        println!("  {resource:<14} {jobs:>7} jobs");
    }
    println!("\nchecksum verification per member:");
    for (member, ok) in &t.members_verified {
        println!("  {member:<14} {}", if *ok { "identical ✓" } else { "MISMATCH ✗" });
    }
}

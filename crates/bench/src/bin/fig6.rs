//! Regenerate the paper's Fig. 6: CCR file count and physical storage
//! usage by month of 2017 (Storage realm).

use xdmod_bench::experiments::{fig6, SEED};

fn main() {
    let f = fig6(SEED, 1.0);
    println!("{}", xdmod_chart::ascii_chart(&f.dataset, 14));
    println!("{}", xdmod_chart::render_table(&f.dataset));
    let dir = std::path::Path::new("results");
    xdmod_bench::write_artifacts(dir, "fig6", &f.dataset).expect("write artifacts");
    println!("artifacts: results/fig6.svg, results/fig6.csv");
}

//! Regenerate the paper's Fig. 4: two user groups authenticating to one
//! SSO-enabled XDMoD instance (local passwords vs web SSO).

use xdmod_bench::experiments::fig4;

fn main() {
    let f = fig4(10);
    println!("Fig 4 — local vs SSO sign-on, one instance\n");
    let local = f.sessions.iter().filter(|(_, _, m)| m == "local").count();
    let sso = f.sessions.iter().filter(|(_, _, m)| m == "sso").count();
    println!("User Group R (local password): {local} sessions");
    println!("User Group S (web SSO/SAML):   {sso} sessions");
    println!("refused attempts (bad credentials): {}", f.refused);
    for (user, instance, method) in f.sessions.iter().take(4) {
        println!("  e.g. {user} -> {instance} via {method}");
    }
}

//! Regenerate the paper's Fig. 3: heterogeneous ingestion with
//! resource-level routing — resources B and D are excluded from the
//! federation while A and C replicate.

use xdmod_bench::experiments::{fig3, SEED};

fn main() {
    let t = fig3(SEED, 1.0);
    println!("Fig 3 — data flow with resource routing\n");
    println!("excluded from federation: {:?}", t.excluded);
    println!("\nhub's view (jobs per resource):");
    for (resource, jobs) in &t.hub_view {
        println!("  {resource:<14} {jobs:>7} jobs");
    }
    for r in &t.excluded {
        assert!(
            !t.hub_view.contains_key(r),
            "excluded resource {r} leaked to the hub"
        );
    }
    println!("\nsensitive resources never reached the hub ✓");
}

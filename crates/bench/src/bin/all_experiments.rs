//! Run every table/figure regeneration in sequence and write all
//! artifacts under `results/` — the one-shot reproduction driver behind
//! EXPERIMENTS.md.

use xdmod_bench::experiments as exp;

fn main() {
    let dir = std::path::Path::new("results");

    println!("=== Fig 1 ===");
    let f1 = exp::fig1(exp::SEED, 1.0);
    for (i, (name, su)) in f1.ranking.iter().enumerate() {
        println!("  {}. {:<12} {:>14.0} XD SU", i + 1, name, su);
    }
    xdmod_bench::write_artifacts(dir, "fig1", &f1.dataset).expect("artifacts");

    println!("\n=== Table I ===");
    let t1 = exp::table1(exp::SEED, 1.0);
    for (view, bins) in &t1.views {
        let total: i64 = bins.values().sum();
        println!("  {view}: {} bins, {total} jobs", bins.len());
    }
    assert_eq!(
        t1.views["Federation Hub"].values().sum::<i64>(),
        t1.raw_total_jobs
    );

    println!("\n=== Fig 2 ===");
    let f2 = exp::fig2(exp::SEED, 1.0);
    println!(
        "  {} resources federated, {} events, all verified: {}",
        f2.hub_view.len(),
        f2.events_applied,
        f2.members_verified.values().all(|v| *v)
    );

    println!("\n=== Fig 3 ===");
    let f3 = exp::fig3(exp::SEED, 1.0);
    println!(
        "  hub sees {:?}; excluded {:?}",
        f3.hub_view.keys().collect::<Vec<_>>(),
        f3.excluded
    );

    println!("\n=== Fig 4 ===");
    let f4 = exp::fig4(10);
    println!(
        "  {} sessions ({} refused attempts)",
        f4.sessions.len(),
        f4.refused
    );

    println!("\n=== Fig 5 ===");
    let f5 = exp::fig5();
    println!(
        "  {} federated sessions, {} persons after dedup",
        f5.sessions.len(),
        f5.persons_after_dedup
    );

    println!("\n=== Fig 6 ===");
    let f6 = exp::fig6(exp::SEED, 1.0);
    xdmod_bench::write_artifacts(dir, "fig6", &f6.dataset).expect("artifacts");
    println!("  12 monthly points, both series monotone increasing");

    println!("\n=== Fig 7 ===");
    let f7 = exp::fig7(exp::SEED, 1.0);
    for (bin, avg) in f7.bins.iter().zip(&f7.avg_core_hours) {
        println!("  {bin:<8} {avg:>10.1} core hours / VM");
    }

    println!("\nall artifacts written under results/");
}

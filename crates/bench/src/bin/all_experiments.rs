//! Run every table/figure regeneration in sequence and write all
//! artifacts under `results/` — the one-shot reproduction driver behind
//! EXPERIMENTS.md. Each figure's wall time is captured and written to
//! `results/BENCH_results.json` so reproduction-cost regressions are
//! visible across commits.

use std::time::Instant;
use xdmod_bench::experiments as exp;

/// Run one figure, print its banner, and record the wall time.
fn timed<T>(
    timings: &mut Vec<(&'static str, f64)>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    println!("=== {name} ===");
    let start = Instant::now();
    let out = f();
    timings.push((name, start.elapsed().as_secs_f64()));
    out
}

fn main() {
    let dir = std::path::Path::new("results");
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let run_started = Instant::now();

    let f1 = timed(&mut timings, "fig1", || exp::fig1(exp::SEED, 1.0));
    for (i, (name, su)) in f1.ranking.iter().enumerate() {
        println!("  {}. {:<12} {:>14.0} XD SU", i + 1, name, su);
    }
    xdmod_bench::write_artifacts(dir, "fig1", &f1.dataset).expect("artifacts");

    let t1 = timed(&mut timings, "table1", || exp::table1(exp::SEED, 1.0));
    for (view, bins) in &t1.views {
        let total: i64 = bins.values().sum();
        println!("  {view}: {} bins, {total} jobs", bins.len());
    }
    assert_eq!(
        t1.views["Federation Hub"].values().sum::<i64>(),
        t1.raw_total_jobs
    );

    let f2 = timed(&mut timings, "fig2", || exp::fig2(exp::SEED, 1.0));
    println!(
        "  {} resources federated, {} events, all verified: {}",
        f2.hub_view.len(),
        f2.events_applied,
        f2.members_verified.values().all(|v| *v)
    );

    let f3 = timed(&mut timings, "fig3", || exp::fig3(exp::SEED, 1.0));
    println!(
        "  hub sees {:?}; excluded {:?}",
        f3.hub_view.keys().collect::<Vec<_>>(),
        f3.excluded
    );

    let f4 = timed(&mut timings, "fig4", || exp::fig4(10));
    println!(
        "  {} sessions ({} refused attempts)",
        f4.sessions.len(),
        f4.refused
    );

    let f5 = timed(&mut timings, "fig5", exp::fig5);
    println!(
        "  {} federated sessions, {} persons after dedup",
        f5.sessions.len(),
        f5.persons_after_dedup
    );

    let f6 = timed(&mut timings, "fig6", || exp::fig6(exp::SEED, 1.0));
    xdmod_bench::write_artifacts(dir, "fig6", &f6.dataset).expect("artifacts");
    println!("  12 monthly points, both series monotone increasing");

    let f7 = timed(&mut timings, "fig7", || exp::fig7(exp::SEED, 1.0));
    for (bin, avg) in f7.bins.iter().zip(&f7.avg_core_hours) {
        println!("  {bin:<8} {avg:>10.1} core hours / VM");
    }

    let agg = timed(&mut timings, "parallel_aggregation", || {
        exp::parallel_aggregation(exp::SEED, 12, 4)
    });
    println!(
        "  serial {:.3}s, parallel {:.3}s ({:.2}x), cached repeat {:.6}s, identical: {}",
        agg.serial_seconds,
        agg.parallel_seconds,
        agg.serial_seconds / agg.parallel_seconds.max(1e-9),
        agg.cached_seconds,
        agg.identical
    );
    assert!(agg.identical, "parallel aggregation diverged from serial");

    let incr = timed(&mut timings, "incremental_aggregation", || {
        exp::incremental_aggregation(exp::SEED, 12, 4)
    });
    println!(
        "  cold {:.3}s; +1 month: incremental {:.4}s vs full rebuild {:.3}s ({:.1}x), {} records folded, cached repeat {:.6}s, identical: {}",
        incr.cold_seconds,
        incr.incremental_seconds,
        incr.full_rebuild_seconds,
        incr.full_rebuild_seconds / incr.incremental_seconds.max(1e-9),
        incr.records_folded,
        incr.cached_seconds,
        incr.identical
    );
    assert!(
        incr.identical,
        "incremental aggregation diverged from full rebuild"
    );

    let paged = timed(&mut timings, "paged_aggregation", || {
        exp::paged_aggregation(exp::SEED, 12, 4, 64 * 1024)
    });
    println!(
        "  table {} B under a {} B budget: resident {:.4}s vs paged {:.4}s ({:.1}x), {} fault-ins, {} evictions, identical: {}",
        paged.table_bytes,
        paged.budget_bytes,
        paged.resident_seconds,
        paged.paged_seconds,
        paged.paged_seconds / paged.resident_seconds.max(1e-9),
        paged.fault_ins,
        paged.evictions,
        paged.identical
    );
    assert!(paged.identical, "paged aggregation diverged from resident");

    let gw = timed(&mut timings, "gateway_throughput", || {
        exp::gateway_throughput(exp::SEED, 200)
    });
    println!(
        "  cold query {:.4}s; cache-hit {:.0} req/s; 304 revalidate {:.0} req/s ({} reqs each, {} panics)",
        gw.cold_seconds, gw.cache_hit_rps, gw.revalidate_rps, gw.requests, gw.worker_panics
    );
    assert_eq!(gw.worker_panics, 0, "gateway workers must survive the run");

    let results = serde_json::json!({
        "seed": exp::SEED,
        "total_seconds": run_started.elapsed().as_secs_f64(),
        "figures": timings
            .iter()
            .map(|(name, secs)| serde_json::json!({"figure": name, "seconds": secs}))
            .collect::<Vec<_>>(),
        "parallel_aggregation": {
            "months": 12,
            "workers": 4,
            "serial_seconds": agg.serial_seconds,
            "parallel_seconds": agg.parallel_seconds,
            "cached_repeat_seconds": agg.cached_seconds,
            "speedup": agg.serial_seconds / agg.parallel_seconds.max(1e-9),
            "identical_output": agg.identical,
        },
        "incremental_aggregation": {
            "months": 12,
            "workers": 4,
            "cold_seconds": incr.cold_seconds,
            "incremental_seconds": incr.incremental_seconds,
            "full_rebuild_seconds": incr.full_rebuild_seconds,
            "cached_repeat_seconds": incr.cached_seconds,
            "records_folded": incr.records_folded,
            "speedup_vs_full_rebuild": incr.full_rebuild_seconds / incr.incremental_seconds.max(1e-9),
            "identical_output": incr.identical,
        },
        "paged_aggregation": {
            "months": 12,
            "workers": 4,
            "budget_bytes": paged.budget_bytes,
            "table_bytes": paged.table_bytes,
            "resident_seconds": paged.resident_seconds,
            "paged_seconds": paged.paged_seconds,
            "slowdown_vs_resident": paged.paged_seconds / paged.resident_seconds.max(1e-9),
            "fault_ins": paged.fault_ins,
            "evictions": paged.evictions,
            "identical_output": paged.identical,
        },
        "gateway_throughput": {
            "requests_per_regime": gw.requests,
            "cold_query_seconds": gw.cold_seconds,
            "cache_hit_requests_per_sec": gw.cache_hit_rps,
            "revalidate_304_requests_per_sec": gw.revalidate_rps,
            "worker_panics": gw.worker_panics,
        },
    });
    std::fs::create_dir_all(dir).expect("results dir");
    std::fs::write(
        dir.join("BENCH_results.json"),
        serde_json::to_string_pretty(&results).expect("serialize timings"),
    )
    .expect("write BENCH_results.json");

    println!("\nall artifacts written under results/ (timings in BENCH_results.json)");
}

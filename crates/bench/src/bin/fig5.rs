//! Regenerate the paper's Fig. 5: authentication across an XDMoD
//! federation — direct sign-on, per-site IdPs, multi-source SSO at the
//! hub, delegated authentication, and §II-D4 identity de-duplication.

use xdmod_bench::experiments::fig5;

fn main() {
    let f = fig5();
    println!("Fig 5 — federated authentication flows\n");
    for (user, instance, method) in &f.sessions {
        println!("  {user:<12} -> {instance:<16} via {method}");
    }
    println!("\ncross-audience assertion replays refused: {}", f.refused);
    println!(
        "persons after identity de-duplication (§II-D4): {}",
        f.persons_after_dedup
    );
}

//! Regenerate the paper's Fig. 7: average core hours used per VM, by VM
//! memory size, on a CCR-like research cloud (Cloud realm).

use xdmod_bench::experiments::{fig7, SEED};
use xdmod_chart::Dataset;

fn main() {
    let f = fig7(SEED, 1.0);
    let mut ds = Dataset::new(
        "Fig 7: average core hours per VM, by VM memory size, 2017",
        "core hours",
    );
    ds.labels = f.bins.clone();
    ds.push_series(
        "avg core hours / VM",
        f.avg_core_hours.iter().copied().map(Some).collect(),
    )
    .expect("series aligned");
    println!("{}", xdmod_chart::ascii_bars(&ds, 46));
    println!("bin        VMs   avg core hours");
    for ((bin, vms), avg) in f.bins.iter().zip(&f.vm_counts).zip(&f.avg_core_hours) {
        println!("{bin:<9} {vms:>4}   {avg:>10.1}");
    }
    let dir = std::path::Path::new("results");
    xdmod_bench::write_artifacts(dir, "fig7", &ds).expect("write artifacts");
    println!("\nartifacts: results/fig7.svg, results/fig7.csv");
}

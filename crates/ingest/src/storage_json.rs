//! Storage-realm JSON ingestion with schema validation.
//!
//! "Storage data will be acquired from monitoring tools (e.g. TACC Stats,
//! PCP) or filesystem APIs, then populated in a fashion independent of
//! the storage filesystem. Data from filesystems such as Isilon, GPFS,
//! Lustre, and Ceph can be accommodated; installations must only ensure
//! their data validates against our provided JSON schema." (§III-A)
//!
//! The document format is a JSON array of sample objects; [`FieldSpec`]
//! is the hand-rolled schema validator (types, required-ness, and
//! non-negativity), and [`shred`] converts valid documents into
//! `storagefact` rows, deriving `quota_utilization` on the way.

use crate::report::{IngestError, IngestReport, Result};
use serde_json::Value as Json;
use xdmod_warehouse::time::parse_iso_datetime;
use xdmod_warehouse::{Row, Value};

/// Kinds a schema field may have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// UTF-8 string.
    Str,
    /// Non-negative integer.
    Count,
    /// Non-negative float (GB values).
    Gauge,
    /// ISO datetime string `YYYY-MM-DDTHH:MM:SS`.
    Timestamp,
}

/// One field of the provided JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// JSON object key.
    pub name: &'static str,
    /// Expected kind.
    pub kind: FieldKind,
    /// Whether the field must be present.
    pub required: bool,
}

/// The provided storage-sample schema.
pub const STORAGE_SCHEMA: [FieldSpec; 12] = [
    FieldSpec { name: "ts", kind: FieldKind::Timestamp, required: true },
    FieldSpec { name: "filesystem", kind: FieldKind::Str, required: true },
    FieldSpec { name: "mountpoint", kind: FieldKind::Str, required: true },
    FieldSpec { name: "resource_type", kind: FieldKind::Str, required: true },
    FieldSpec { name: "user", kind: FieldKind::Str, required: true },
    FieldSpec { name: "pi", kind: FieldKind::Str, required: true },
    FieldSpec { name: "system_username", kind: FieldKind::Str, required: true },
    FieldSpec { name: "file_count", kind: FieldKind::Count, required: true },
    FieldSpec { name: "logical_usage_gb", kind: FieldKind::Gauge, required: true },
    FieldSpec { name: "physical_usage_gb", kind: FieldKind::Gauge, required: true },
    FieldSpec { name: "soft_quota_gb", kind: FieldKind::Gauge, required: false },
    FieldSpec { name: "hard_quota_gb", kind: FieldKind::Gauge, required: false },
];

/// Validate a single sample object against [`STORAGE_SCHEMA`]. Returns a
/// description of the first violation, or `Ok(())`.
pub fn validate_sample(obj: &Json, record: usize) -> Result<()> {
    let map = obj
        .as_object()
        .ok_or_else(|| IngestError::at(record, "sample is not a JSON object"))?;
    for spec in &STORAGE_SCHEMA {
        let value = match map.get(spec.name) {
            Some(Json::Null) | None => {
                if spec.required {
                    return Err(IngestError::at(
                        record,
                        format!("missing required field {}", spec.name),
                    ));
                }
                continue;
            }
            Some(v) => v,
        };
        let ok = match spec.kind {
            FieldKind::Str => value.as_str().is_some_and(|s| !s.is_empty()),
            FieldKind::Count => value.as_i64().is_some_and(|n| n >= 0),
            FieldKind::Gauge => value.as_f64().is_some_and(|x| x.is_finite() && x >= 0.0),
            FieldKind::Timestamp => value
                .as_str()
                .is_some_and(|s| parse_iso_datetime(s).is_some()),
        };
        if !ok {
            return Err(IngestError::at(
                record,
                format!("field {} fails {:?} validation: {value}", spec.name, spec.kind),
            ));
        }
    }
    // Unknown keys are rejected: the paper's contract is "validates
    // against our provided JSON schema", and silent extra fields usually
    // indicate a collector/schema version skew.
    for key in map.keys() {
        if !STORAGE_SCHEMA.iter().any(|s| s.name == key) {
            return Err(IngestError::at(record, format!("unknown field {key}")));
        }
    }
    // Cross-field rule: hard quota must not be below soft quota.
    if let (Some(soft), Some(hard)) = (
        map.get("soft_quota_gb").and_then(Json::as_f64),
        map.get("hard_quota_gb").and_then(Json::as_f64),
    ) {
        if hard < soft {
            return Err(IngestError::at(record, "hard_quota_gb below soft_quota_gb"));
        }
    }
    Ok(())
}

/// Parse and validate a storage document, producing `storagefact` rows.
///
/// `quota_utilization` is derived as `logical_usage_gb / soft_quota_gb`
/// when a soft quota is present (NULL otherwise — scratch filesystems).
pub fn shred(document: &str) -> Result<(Vec<Row>, IngestReport)> {
    let json: Json = serde_json::from_str(document)
        .map_err(|e| IngestError::whole(format!("invalid JSON: {e}")))?;
    let samples = json
        .as_array()
        .ok_or_else(|| IngestError::whole("document must be a JSON array of samples"))?;
    let mut rows = Vec::with_capacity(samples.len());
    let mut report = IngestReport::default();
    for (i, sample) in samples.iter().enumerate() {
        let record = i + 1;
        validate_sample(sample, record)?;
        let map = sample.as_object().expect("validated as object"); // xc-allow: validate_sample vetted this field
        let s = |k: &str| map[k].as_str().expect("validated").to_owned(); // xc-allow: validate_sample vetted this field
        let ts = parse_iso_datetime(map["ts"].as_str().expect("validated")).expect("validated"); // xc-allow: validate_sample vetted this field
        let soft = map.get("soft_quota_gb").and_then(Json::as_f64);
        let hard = map.get("hard_quota_gb").and_then(Json::as_f64);
        let logical = map["logical_usage_gb"].as_f64().expect("validated"); // xc-allow: validate_sample vetted this field
        let utilization = soft.filter(|q| *q > 0.0).map(|q| logical / q);
        let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
        rows.push(vec![
            Value::Time(ts),
            Value::Str(s("filesystem")),
            Value::Str(s("mountpoint")),
            Value::Str(s("resource_type")),
            Value::Str(s("user")),
            Value::Str(s("pi")),
            Value::Str(s("system_username")),
            Value::Int(map["file_count"].as_i64().expect("validated")), // xc-allow: validate_sample vetted this field
            Value::Float(logical),
            Value::Float(map["physical_usage_gb"].as_f64().expect("validated")), // xc-allow: validate_sample vetted this field
            opt(soft),
            opt(hard),
            opt(utilization),
        ]);
        report.ingested += 1;
    }
    Ok((rows, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> serde_json::Map<String, Json> {
        serde_json::from_str::<Json>(
            r#"{
            "ts": "2017-03-31T23:59:00",
            "filesystem": "isilon-home",
            "mountpoint": "/home",
            "resource_type": "persistent",
            "user": "alice",
            "pi": "prof_smith",
            "system_username": "alice01",
            "file_count": 120000,
            "logical_usage_gb": 51.5,
            "physical_usage_gb": 64.0,
            "soft_quota_gb": 100.0,
            "hard_quota_gb": 120.0
        }"#,
        )
        .unwrap()
        .as_object()
        .unwrap()
        .clone()
    }

    fn doc_of(objs: Vec<serde_json::Map<String, Json>>) -> String {
        serde_json::to_string(&objs).unwrap()
    }

    #[test]
    fn valid_document_shreds() {
        let (rows, report) = shred(&doc_of(vec![sample()])).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(report.ingested, 1);
        let schema = xdmod_realms::storage::fact_schema();
        let row = schema.check_row(rows[0].clone()).unwrap();
        let util_idx = schema.column_index("quota_utilization").unwrap();
        assert_eq!(row[util_idx], Value::Float(0.515));
    }

    #[test]
    fn quota_fields_are_optional() {
        let mut s = sample();
        s.remove("soft_quota_gb");
        s.remove("hard_quota_gb");
        let (rows, _) = shred(&doc_of(vec![s])).unwrap();
        let schema = xdmod_realms::storage::fact_schema();
        let row = schema.check_row(rows[0].clone()).unwrap();
        assert_eq!(row[schema.column_index("soft_quota_gb").unwrap()], Value::Null);
        assert_eq!(
            row[schema.column_index("quota_utilization").unwrap()],
            Value::Null
        );
    }

    #[test]
    fn missing_required_field_rejected() {
        let mut s = sample();
        s.remove("file_count");
        let err = shred(&doc_of(vec![s])).unwrap_err();
        assert!(err.message.contains("file_count"));
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn wrong_types_rejected() {
        for (field, bad) in [
            ("file_count", Json::from(-3)),
            ("file_count", Json::from("lots")),
            ("logical_usage_gb", Json::from(-1.0)),
            ("ts", Json::from("yesterday")),
            ("user", Json::from("")),
            ("physical_usage_gb", Json::from("64GB")),
        ] {
            let mut s = sample();
            s.insert(field.to_owned(), bad.clone());
            let err = shred(&doc_of(vec![s])).unwrap_err();
            assert!(
                err.message.contains(field),
                "{field}={bad} accepted: {err}"
            );
        }
    }

    #[test]
    fn unknown_fields_rejected() {
        let mut s = sample();
        s.insert("zetta_bytes".into(), Json::from(1));
        let err = shred(&doc_of(vec![s])).unwrap_err();
        assert!(err.message.contains("zetta_bytes"));
    }

    #[test]
    fn hard_below_soft_rejected() {
        let mut s = sample();
        s.insert("hard_quota_gb".into(), Json::from(50.0));
        let err = shred(&doc_of(vec![s])).unwrap_err();
        assert!(err.message.contains("hard_quota_gb below"));
    }

    #[test]
    fn error_reports_record_number() {
        let mut bad = sample();
        bad.remove("user");
        let err = shred(&doc_of(vec![sample(), bad])).unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn non_array_document_rejected() {
        assert!(shred("{\"samples\": []}").unwrap_err().message.contains("array"));
        assert!(shred("not json at all").unwrap_err().message.contains("invalid JSON"));
    }

    #[test]
    fn zero_soft_quota_yields_null_utilization() {
        let mut s = sample();
        s.insert("soft_quota_gb".into(), Json::from(0.0));
        s.insert("hard_quota_gb".into(), Json::from(0.0));
        let (rows, _) = shred(&doc_of(vec![s])).unwrap();
        let schema = xdmod_realms::storage::fact_schema();
        let idx = schema.column_index("quota_utilization").unwrap();
        assert_eq!(rows[0][idx], Value::Null);
    }
}

//! SLURM `sacct`-style accounting-log shredder.
//!
//! "XDMoD mines log files from resource managers such as SLURM ... to
//! provide a wide array of job metrics." (§I-D). This parser consumes the
//! pipe-delimited export format of `sacct --parsable2`:
//!
//! ```text
//! JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs
//! 101|alice|physics|normal|2|56|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T13:30:00|COMPLETED|0
//! ```
//!
//! Timestamps are UTC `YYYY-MM-DDTHH:MM:SS`. Only *ended* jobs
//! (`COMPLETED`, `FAILED`, `TIMEOUT`, `CANCELLED`, `NODE_FAIL`) are
//! ingested; running/pending jobs are skipped with a warning, mirroring
//! production shredder behaviour. XD SU charges are applied at ingest
//! time through the instance's [`SuConverter`] (§II-C6).

use crate::report::{IngestError, IngestReport, Result};
use xdmod_realms::su::SuConverter;
use xdmod_warehouse::time::parse_iso_datetime;
use xdmod_warehouse::{Row, Value};

/// Expected header of a sacct export, pipe-delimited.
pub const HEADER: &str = "JobID|User|Account|Partition|NNodes|NCPUS|Submit|Start|End|State|AllocGPUs";

/// Job states that mean the job has ended and should be ingested.
pub const ENDED_STATES: [&str; 5] = ["COMPLETED", "FAILED", "TIMEOUT", "CANCELLED", "NODE_FAIL"];

/// One parsed accounting record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Numeric job id.
    pub job_id: i64,
    /// Submitting user.
    pub user: String,
    /// Account / PI.
    pub account: String,
    /// Partition / queue.
    pub partition: String,
    /// Nodes allocated.
    pub nodes: i64,
    /// Cores allocated.
    pub cores: i64,
    /// Submit time, epoch seconds.
    pub submit: i64,
    /// Start time, epoch seconds.
    pub start: i64,
    /// End time, epoch seconds.
    pub end: i64,
    /// Final state string.
    pub state: String,
    /// GPUs allocated (0 when none).
    pub gpus: i64,
}

impl JobRecord {
    /// Wall time in hours.
    pub fn wall_hours(&self) -> f64 {
        (self.end - self.start) as f64 / 3600.0
    }

    /// Queue wait time in hours.
    pub fn wait_hours(&self) -> f64 {
        (self.start - self.submit) as f64 / 3600.0
    }

    /// CPU-hours consumed (cores × wall hours).
    pub fn cpu_hours(&self) -> f64 {
        self.cores as f64 * self.wall_hours()
    }

    /// Convert into a `jobfact` row for `resource`, charging XD SUs
    /// through `su`.
    pub fn to_fact_row(&self, resource: &str, su: &SuConverter) -> Row {
        vec![
            Value::Int(self.job_id),
            Value::Str(resource.to_owned()),
            Value::Str(self.user.clone()),
            Value::Str(self.account.clone()),
            Value::Str(self.partition.clone()),
            Value::Int(self.nodes),
            Value::Int(self.cores),
            Value::Time(self.submit),
            Value::Time(self.start),
            Value::Time(self.end),
            Value::Float(self.wall_hours()),
            Value::Float(self.wait_hours()),
            Value::Float(self.cpu_hours()),
            Value::Float(su.xdsu(resource, self.cpu_hours())),
            Value::Str(self.state.clone()),
            Value::Int(self.gpus),
        ]
    }
}

/// Parse one data line (no header) into a [`JobRecord`].
pub fn parse_line(line: &str, lineno: usize) -> Result<JobRecord> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 11 {
        return Err(IngestError::at(
            lineno,
            format!("expected 11 fields, found {}", fields.len()),
        ));
    }
    let int = |idx: usize, name: &str| -> Result<i64> {
        fields[idx]
            .parse::<i64>()
            .map_err(|_| IngestError::at(lineno, format!("bad {name}: {:?}", fields[idx])))
    };
    let time = |idx: usize, name: &str| -> Result<i64> {
        parse_iso_datetime(fields[idx])
            .ok_or_else(|| IngestError::at(lineno, format!("bad {name}: {:?}", fields[idx])))
    };
    let rec = JobRecord {
        job_id: int(0, "JobID")?,
        user: fields[1].to_owned(),
        account: fields[2].to_owned(),
        partition: fields[3].to_owned(),
        nodes: int(4, "NNodes")?,
        cores: int(5, "NCPUS")?,
        submit: time(6, "Submit")?,
        start: time(7, "Start")?,
        end: time(8, "End")?,
        state: fields[9].to_owned(),
        gpus: int(10, "AllocGPUs")?,
    };
    if rec.user.is_empty() {
        return Err(IngestError::at(lineno, "empty User field"));
    }
    if rec.nodes < 1 || rec.cores < 1 {
        return Err(IngestError::at(lineno, "NNodes/NCPUS must be positive"));
    }
    if ENDED_STATES.contains(&rec.state.as_str()) {
        if rec.start < rec.submit {
            return Err(IngestError::at(lineno, "Start precedes Submit"));
        }
        if rec.end < rec.start {
            return Err(IngestError::at(lineno, "End precedes Start"));
        }
    }
    Ok(rec)
}

/// Parse a full sacct export. The header line is optional but verified
/// when present; blank lines and `#` comments are ignored. Returns the
/// ended-job records plus an [`IngestReport`] noting skipped rows.
pub fn parse_log(log: &str) -> Result<(Vec<JobRecord>, IngestReport)> {
    let mut records = Vec::new();
    let mut report = IngestReport::default();
    for (i, raw) in log.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with("JobID|") {
            if line != HEADER {
                return Err(IngestError::at(lineno, "unrecognized sacct header"));
            }
            continue;
        }
        let rec = parse_line(line, lineno)?;
        if ENDED_STATES.contains(&rec.state.as_str()) {
            report.ingested += 1;
            records.push(rec);
        } else {
            report.skip(format!(
                "line {lineno}: job {} in state {} not yet ended",
                rec.job_id, rec.state
            ));
        }
    }
    Ok((records, report))
}

/// Parse a log and convert directly to `jobfact` rows.
pub fn shred(log: &str, resource: &str, su: &SuConverter) -> Result<(Vec<Row>, IngestReport)> {
    let (records, report) = parse_log(log)?;
    let rows = records
        .iter()
        .map(|r| r.to_fact_row(resource, su))
        .collect();
    Ok((rows, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "101|alice|physics|normal|2|56|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T13:30:00|COMPLETED|0";

    #[test]
    fn parse_single_line() {
        let rec = parse_line(GOOD, 1).unwrap();
        assert_eq!(rec.job_id, 101);
        assert_eq!(rec.user, "alice");
        assert_eq!(rec.cores, 56);
        assert_eq!(rec.wall_hours(), 4.5);
        assert_eq!(rec.wait_hours(), 1.0);
        assert_eq!(rec.cpu_hours(), 56.0 * 4.5);
    }

    #[test]
    fn header_blank_and_comments_skipped() {
        let log = format!("{HEADER}\n\n# comment\n{GOOD}\n");
        let (recs, report) = parse_log(&log).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(report.ingested, 1);
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn running_jobs_are_skipped_with_warning() {
        let running = GOOD.replace("COMPLETED", "RUNNING");
        let log = format!("{GOOD}\n{running}\n");
        let (recs, report) = parse_log(&log).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(report.skipped, 1);
        assert!(report.warnings[0].contains("RUNNING"));
    }

    #[test]
    fn failed_and_timeout_jobs_are_ingested() {
        for state in ["FAILED", "TIMEOUT", "CANCELLED", "NODE_FAIL"] {
            let line = GOOD.replace("COMPLETED", state);
            let (recs, _) = parse_log(&line).unwrap();
            assert_eq!(recs.len(), 1, "state {state} should ingest");
        }
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let cases = [
            ("101|alice|physics", "expected 11 fields"),
            (
                &GOOD.replace("56", "many") as &str,
                "bad NCPUS",
            ),
            (
                &GOOD.replace("2017-01-05T09:00:00", "notatime") as &str,
                "bad Start",
            ),
        ];
        for (line, want) in cases {
            let err = parse_line(line, 7).unwrap_err();
            assert_eq!(err.line, Some(7));
            assert!(err.message.contains(want), "{err}");
        }
    }

    #[test]
    fn time_ordering_enforced_for_ended_jobs() {
        // End before start.
        let bad = "101|alice|physics|normal|2|56|2017-01-05T08:00:00|2017-01-05T09:00:00|2017-01-05T08:30:00|COMPLETED|0";
        assert!(parse_line(bad, 1).unwrap_err().message.contains("End"));
        // Start before submit.
        let bad = "101|alice|physics|normal|2|56|2017-01-05T08:00:00|2017-01-05T07:00:00|2017-01-05T08:30:00|COMPLETED|0";
        assert!(parse_line(bad, 1).unwrap_err().message.contains("Start"));
    }

    #[test]
    fn zero_core_jobs_rejected() {
        let bad = GOOD.replace("|2|56|", "|2|0|");
        assert!(parse_line(&bad, 1).is_err());
    }

    #[test]
    fn wrong_header_is_an_error() {
        let log = "JobID|User|Bogus\n";
        assert!(parse_log(log).is_err());
    }

    #[test]
    fn fact_row_matches_jobs_schema() {
        let schema = xdmod_realms::jobs::fact_schema();
        let mut su = SuConverter::new();
        su.set_factor("comet", 2.0);
        let rec = parse_line(GOOD, 1).unwrap();
        let row = rec.to_fact_row("comet", &su);
        let checked = schema.check_row(row).unwrap();
        let su_idx = schema.column_index("su_charged").unwrap();
        assert_eq!(checked[su_idx], Value::Float(2.0 * 56.0 * 4.5));
    }

    #[test]
    fn shred_end_to_end() {
        let log = format!("{HEADER}\n{GOOD}\n");
        let (rows, report) = shred(&log, "comet", &SuConverter::new()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(report.ingested, 1);
        assert_eq!(rows[0].len(), xdmod_realms::jobs::fact_schema().arity());
    }
}

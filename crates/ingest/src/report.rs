//! Ingestion error and reporting types shared by all shredders.

use std::fmt;

/// Error raised while parsing raw source data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// 1-based line (or record) number in the source document, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl IngestError {
    /// Error at a specific source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        IngestError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// Error about the document as a whole.
    pub fn whole(message: impl Into<String>) -> Self {
        IngestError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for IngestError {}

/// Result alias for parsers.
pub type Result<T> = std::result::Result<T, IngestError>;

/// Summary of one ingestion run.
///
/// Production XDMoD's shredders tolerate noisy logs (running jobs, blank
/// lines) while rejecting structurally broken input; the report records
/// what was kept, what was skipped, and why.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Records successfully converted into warehouse rows.
    pub ingested: usize,
    /// Records intentionally skipped (e.g. still-running jobs).
    pub skipped: usize,
    /// Human-readable warnings for skipped or repaired records.
    pub warnings: Vec<String>,
}

impl IngestReport {
    /// Record a skip with a reason.
    pub fn skip(&mut self, reason: impl Into<String>) {
        self.skipped += 1;
        self.warnings.push(reason.into());
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: IngestReport) {
        self.ingested += other.ingested;
        self.skipped += other.skipped;
        self.warnings.extend(other.warnings);
    }

    /// Publish this run's counts into a metrics registry as
    /// `ingest_records_total{format=..}` / `ingest_skipped_total{format=..}`,
    /// where `format` names the source shredder (`sacct`, `pcp`,
    /// `storage_json`, `cloud`). A no-op on a disabled registry.
    pub fn record_telemetry(&self, telemetry: &xdmod_telemetry::MetricsRegistry, format: &str) {
        if !telemetry.is_enabled() {
            return;
        }
        let labels: &[(&str, &str)] = &[("format", format)];
        telemetry
            .counter("ingest_records_total", labels)
            .add(self.ingested as u64);
        telemetry
            .counter("ingest_skipped_total", labels)
            .add(self.skipped as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(
            IngestError::at(3, "bad field").to_string(),
            "line 3: bad field"
        );
        assert_eq!(IngestError::whole("empty doc").to_string(), "empty doc");
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = IngestReport {
            ingested: 2,
            skipped: 1,
            warnings: vec!["w1".into()],
        };
        let b = IngestReport {
            ingested: 3,
            skipped: 0,
            warnings: vec!["w2".into()],
        };
        a.merge(b);
        assert_eq!(a.ingested, 5);
        assert_eq!(a.skipped, 1);
        assert_eq!(a.warnings, vec!["w1".to_owned(), "w2".to_owned()]);
    }

    #[test]
    fn record_telemetry_publishes_per_format_counters() {
        let reg = xdmod_telemetry::MetricsRegistry::new();
        let r = IngestReport {
            ingested: 4,
            skipped: 2,
            warnings: vec!["still running".into(), "blank".into()],
        };
        r.record_telemetry(&reg, "sacct");
        r.record_telemetry(&reg, "sacct"); // second run accumulates
        r.record_telemetry(&reg, "cloud");
        let snap = reg.snapshot();
        let sacct = &[("format", "sacct")];
        assert_eq!(snap.counter("ingest_records_total", sacct), Some(8));
        assert_eq!(snap.counter("ingest_skipped_total", sacct), Some(4));
        assert_eq!(snap.counter_total("ingest_records_total"), 12);
        // Disabled registries stay silent and cost nothing.
        let off = xdmod_telemetry::MetricsRegistry::disabled();
        r.record_telemetry(&off, "sacct");
        assert_eq!(off.prometheus_text(), "");
    }

    #[test]
    fn skip_records_warning() {
        let mut r = IngestReport::default();
        r.skip("job 7 still running");
        assert_eq!(r.skipped, 1);
        assert_eq!(r.warnings.len(), 1);
    }
}

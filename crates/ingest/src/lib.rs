//! # xdmod-ingest
//!
//! The ETL layer of the XDMoD reproduction: shredders that turn raw
//! source data into warehouse rows for the four realms.
//!
//! - [`slurm`] — SLURM `sacct`-style accounting logs → Jobs realm
//!   (`jobfact`), with XD SU conversion applied at ingest.
//! - [`pcp`] — PCP / TACC Stats-style performance archives → SUPReMM
//!   realm (summary fact + per-job timeseries + job scripts).
//! - [`storage_json`] — JSON storage samples validated against the
//!   "provided JSON schema" (§III-A) → Storage realm.
//! - [`cloud`] — OpenStack-style VM lifecycle event feeds, run through a
//!   full VM state machine and sessionized → Cloud realm.
//!
//! All shredders return an [`report::IngestReport`] describing what was
//! kept and what was skipped, mirroring production shredder behaviour on
//! noisy logs.

#![warn(missing_docs)]

pub mod cloud;
pub mod pcp;
pub mod report;
pub mod slurm;
pub mod storage_json;

pub use report::{IngestError, IngestReport};

//! Cloud (OpenStack-style) event-feed shredder with a full VM lifecycle
//! state machine.
//!
//! "Two VMs on a single cloud resource may be configured with vastly
//! different hardware and software characteristics ... Certain
//! characteristics of a VM, such as allocated memory, can even be changed
//! during the life of the VM. ... VMs can also be stopped, restarted, and
//! paused, so their changes of state are important to monitor." (§III-B)
//!
//! The feed is CSV, one lifecycle event per line:
//!
//! ```text
//! ts,vm_id,event,user,project,instance_type,cores,memory_gb,disk_gb,venue,resource
//! 1483300000,vm-1,CREATE,alice,aristotle,m1.small,2,4,40,api,ccr-cloud
//! 1483300060,vm-1,START,,,,,,,,
//! ```
//!
//! Config fields (`user`..`resource`) are required on `CREATE` and
//! `RESIZE` (the fields being resized) and ignored elsewhere.
//! Sessionization turns the event stream into `cloudfact` rows: one row
//! per interval during which the VM ran with a fixed configuration.
//! Invalid transitions are skipped with warnings (a production collector
//! must survive noisy feeds); malformed lines are hard errors.

use crate::report::{IngestError, IngestReport, Result};
use std::collections::BTreeMap;
use xdmod_warehouse::{Row, Value};

/// VM lifecycle event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// VM defined with an initial configuration.
    Create,
    /// VM begins running.
    Start,
    /// VM stops (can be started again).
    Stop,
    /// VM paused (still provisioned; not accruing run time here).
    Pause,
    /// Paused VM resumes running.
    Resume,
    /// Configuration changed (cores/memory/disk); allowed mid-life.
    Resize,
    /// VM destroyed.
    Terminate,
}

impl EventKind {
    fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "CREATE" => EventKind::Create,
            "START" => EventKind::Start,
            "STOP" => EventKind::Stop,
            "PAUSE" => EventKind::Pause,
            "RESUME" | "UNPAUSE" => EventKind::Resume,
            "RESIZE" => EventKind::Resize,
            "TERMINATE" | "DELETE" => EventKind::Terminate,
            _ => return None,
        })
    }
}

/// One parsed lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct VmEvent {
    /// Event time, epoch seconds.
    pub ts: i64,
    /// VM identifier.
    pub vm_id: String,
    /// What happened.
    pub kind: EventKind,
    /// Configuration fields (populated on `Create`/`Resize`).
    pub config: Option<VmConfig>,
}

/// A VM's configuration at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Owning user.
    pub user: String,
    /// Project/tenant.
    pub project: String,
    /// Flavor name.
    pub instance_type: String,
    /// vCPU count.
    pub cores: i64,
    /// Allocated memory, GB.
    pub memory_gb: f64,
    /// Allocated disk, GB.
    pub disk_gb: f64,
    /// Submission venue (api, dashboard, cli, gateway).
    pub venue: String,
    /// Cloud resource name.
    pub resource: String,
}

/// Parse one CSV line into a [`VmEvent`].
pub fn parse_line(line: &str, lineno: usize) -> Result<VmEvent> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 11 {
        return Err(IngestError::at(
            lineno,
            format!("expected 11 fields, found {}", fields.len()),
        ));
    }
    let ts: i64 = fields[0]
        .parse()
        .map_err(|_| IngestError::at(lineno, format!("bad ts {:?}", fields[0])))?;
    let vm_id = fields[1].to_owned();
    if vm_id.is_empty() {
        return Err(IngestError::at(lineno, "empty vm_id"));
    }
    let kind = EventKind::parse(fields[2])
        .ok_or_else(|| IngestError::at(lineno, format!("unknown event {:?}", fields[2])))?;
    let config = if matches!(kind, EventKind::Create | EventKind::Resize) {
        let cores: i64 = fields[6]
            .parse()
            .map_err(|_| IngestError::at(lineno, format!("bad cores {:?}", fields[6])))?;
        let memory_gb: f64 = fields[7]
            .parse()
            .map_err(|_| IngestError::at(lineno, format!("bad memory_gb {:?}", fields[7])))?;
        let disk_gb: f64 = fields[8]
            .parse()
            .map_err(|_| IngestError::at(lineno, format!("bad disk_gb {:?}", fields[8])))?;
        if cores < 1 || memory_gb <= 0.0 || disk_gb < 0.0 {
            return Err(IngestError::at(lineno, "non-positive VM configuration"));
        }
        for (idx, name) in [(3, "user"), (4, "project"), (5, "instance_type"), (10, "resource")] {
            if fields[idx].is_empty() {
                return Err(IngestError::at(lineno, format!("empty {name} on config event")));
            }
        }
        Some(VmConfig {
            user: fields[3].to_owned(),
            project: fields[4].to_owned(),
            instance_type: fields[5].to_owned(),
            cores,
            memory_gb,
            disk_gb,
            venue: fields[9].to_owned(),
            resource: fields[10].to_owned(),
        })
    } else {
        None
    };
    Ok(VmEvent {
        ts,
        vm_id,
        kind,
        config,
    })
}

/// Parse a full event feed (header optional, `#` comments allowed).
pub fn parse_feed(feed: &str) -> Result<Vec<VmEvent>> {
    let mut events = Vec::new();
    for (i, raw) in feed.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("ts,") {
            continue;
        }
        events.push(parse_line(line, lineno)?);
    }
    Ok(events)
}

/// Lifecycle states of the VM state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VmState {
    Created,
    Running,
    Paused,
    Stopped,
    Terminated,
}

struct VmTracker {
    state: VmState,
    config: VmConfig,
    /// When the current running interval opened.
    running_since: Option<i64>,
    /// Whether the VM has ever been started (first session gets
    /// `started = true`).
    ever_started: bool,
    /// Lifecycle events since the last emitted session.
    pending_changes: i64,
}

/// Sessionize an event feed into `cloudfact` rows.
///
/// `as_of` closes out still-running VMs at the observation horizon with
/// `ended = false` — those are the paper's "Number of VMs Running".
/// Events are processed in timestamp order (stable for ties). Semantic
/// violations (START while running, events on unknown or terminated VMs,
/// time going backwards) are skipped with warnings.
pub fn sessionize(mut events: Vec<VmEvent>, as_of: i64) -> (Vec<Row>, IngestReport) {
    events.sort_by_key(|e| e.ts);
    let mut vms: BTreeMap<String, VmTracker> = BTreeMap::new();
    let mut rows = Vec::new();
    let mut report = IngestReport::default();
    let mut last_ts: BTreeMap<String, i64> = BTreeMap::new();

    let emit = |rows: &mut Vec<Row>,
                vm_id: &str,
                tracker: &mut VmTracker,
                end_ts: i64,
                started: bool,
                ended: bool| {
        let start_ts = tracker.running_since.take().expect("session open"); // xc-allow: emit is only called for running sessions
        let wall_hours = (end_ts - start_ts) as f64 / 3600.0;
        let c = &tracker.config;
        rows.push(vec![
            Value::Str(vm_id.to_owned()),
            Value::Str(c.resource.clone()),
            Value::Str(c.project.clone()),
            Value::Str(c.user.clone()),
            Value::Str(c.instance_type.clone()),
            Value::Str(c.venue.clone()),
            Value::Int(c.cores),
            Value::Float(c.memory_gb),
            Value::Float(c.disk_gb),
            Value::Time(start_ts),
            Value::Time(end_ts),
            Value::Float(wall_hours),
            Value::Float(wall_hours * c.cores as f64),
            Value::Bool(started),
            Value::Bool(ended),
            Value::Int(tracker.pending_changes),
        ]);
        tracker.pending_changes = 0;
    };

    for ev in events {
        if let Some(&prev) = last_ts.get(&ev.vm_id) {
            if ev.ts < prev {
                report.skip(format!(
                    "vm {}: event at {} precedes earlier event at {prev}",
                    ev.vm_id, ev.ts
                ));
                continue;
            }
        }
        if ev.kind == EventKind::Create {
            if vms.contains_key(&ev.vm_id) {
                report.skip(format!("vm {}: duplicate CREATE", ev.vm_id));
                continue;
            }
            vms.insert(
                ev.vm_id.clone(),
                VmTracker {
                    state: VmState::Created,
                    config: ev.config.expect("CREATE carries config"), // xc-allow: the event parser requires a config on CREATE
                    running_since: None,
                    ever_started: false,
                    pending_changes: 0,
                },
            );
            last_ts.insert(ev.vm_id, ev.ts);
            continue;
        }
        let Some(tracker) = vms.get_mut(&ev.vm_id) else {
            report.skip(format!("vm {}: {:?} before CREATE", ev.vm_id, ev.kind));
            continue;
        };
        if tracker.state == VmState::Terminated {
            report.skip(format!("vm {}: {:?} after TERMINATE", ev.vm_id, ev.kind));
            continue;
        }
        match ev.kind {
            EventKind::Create => unreachable!("handled above"),
            EventKind::Start => match tracker.state {
                VmState::Created | VmState::Stopped => {
                    tracker.pending_changes += 1;
                    tracker.state = VmState::Running;
                    tracker.running_since = Some(ev.ts);
                }
                _ => {
                    report.skip(format!("vm {}: START while {:?}", ev.vm_id, tracker.state));
                    continue;
                }
            },
            EventKind::Stop | EventKind::Pause => {
                if tracker.state != VmState::Running {
                    report.skip(format!(
                        "vm {}: {:?} while {:?}",
                        ev.vm_id, ev.kind, tracker.state
                    ));
                    continue;
                }
                tracker.pending_changes += 1;
                let started = !tracker.ever_started;
                tracker.ever_started = true;
                emit(&mut rows, &ev.vm_id, tracker, ev.ts, started, false);
                tracker.state = if ev.kind == EventKind::Stop {
                    VmState::Stopped
                } else {
                    VmState::Paused
                };
            }
            EventKind::Resume => match tracker.state {
                VmState::Paused => {
                    tracker.pending_changes += 1;
                    tracker.state = VmState::Running;
                    tracker.running_since = Some(ev.ts);
                }
                _ => {
                    report.skip(format!("vm {}: RESUME while {:?}", ev.vm_id, tracker.state));
                    continue;
                }
            },
            EventKind::Resize => {
                tracker.pending_changes += 1;
                if tracker.state == VmState::Running {
                    // Close the old-config session and open a new one at
                    // the same instant — "allocated memory can even be
                    // changed during the life of the VM".
                    let started = !tracker.ever_started;
                    tracker.ever_started = true;
                    emit(&mut rows, &ev.vm_id, tracker, ev.ts, started, false);
                    tracker.config = ev.config.expect("RESIZE carries config"); // xc-allow: the event parser requires a config on RESIZE
                    tracker.running_since = Some(ev.ts);
                } else {
                    tracker.config = ev.config.expect("RESIZE carries config"); // xc-allow: the event parser requires a config on RESIZE
                }
            }
            EventKind::Terminate => {
                tracker.pending_changes += 1;
                if tracker.state == VmState::Running {
                    let started = !tracker.ever_started;
                    tracker.ever_started = true;
                    emit(&mut rows, &ev.vm_id, tracker, ev.ts, started, true);
                } else {
                    // Terminated without an open session: mark the VM's
                    // *last emitted* semantics by a zero-length ended
                    // session so "VMs Ended" counts it.
                    tracker.running_since = Some(ev.ts);
                    let started = !tracker.ever_started;
                    tracker.ever_started = true;
                    emit(&mut rows, &ev.vm_id, tracker, ev.ts, started, true);
                }
                tracker.state = VmState::Terminated;
            }
        }
        last_ts.insert(ev.vm_id, ev.ts);
    }

    // Close out still-running VMs at the observation horizon.
    for (vm_id, tracker) in vms.iter_mut() {
        if tracker.state == VmState::Running {
            let started = !tracker.ever_started;
            tracker.ever_started = true;
            let end = as_of.max(tracker.running_since.unwrap_or(as_of));
            emit(&mut rows, vm_id, tracker, end, started, false);
        }
    }
    report.ingested = rows.len();
    (rows, report)
}

/// Parse a feed and sessionize in one step.
pub fn shred(feed: &str, as_of: i64) -> Result<(Vec<Row>, IngestReport)> {
    let events = parse_feed(feed)?;
    Ok(sessionize(events, as_of))
}

/// Parse a reservation (purchased capacity) feed into
/// `cloud_reservation` rows — the paper's planned "VM reservation, or
/// payment, information" (§III-B).
///
/// CSV format, one purchased block per line:
///
/// ```text
/// reservation_id,resource,project,user,cores,memory_gb,start,end
/// rsv-001,ccr-cloud,genomics,alice,8,16,1483228800,1485907200
/// ```
///
/// `core_hours_purchased` is derived as `cores × (end - start) / 3600`.
pub fn shred_reservations(feed: &str) -> Result<(Vec<Row>, IngestReport)> {
    let mut rows = Vec::new();
    let mut report = IngestReport::default();
    for (i, raw) in feed.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("reservation_id,") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(IngestError::at(
                lineno,
                format!("expected 8 fields, found {}", fields.len()),
            ));
        }
        let int = |idx: usize, name: &str| -> Result<i64> {
            fields[idx]
                .parse()
                .map_err(|_| IngestError::at(lineno, format!("bad {name}: {:?}", fields[idx])))
        };
        let float = |idx: usize, name: &str| -> Result<f64> {
            fields[idx]
                .parse()
                .map_err(|_| IngestError::at(lineno, format!("bad {name}: {:?}", fields[idx])))
        };
        let cores = int(4, "cores")?;
        let memory_gb = float(5, "memory_gb")?;
        let start = int(6, "start")?;
        let end = int(7, "end")?;
        if cores < 1 || memory_gb <= 0.0 {
            return Err(IngestError::at(lineno, "non-positive reservation size"));
        }
        if end <= start {
            return Err(IngestError::at(lineno, "reservation ends before it starts"));
        }
        for (idx, name) in [(0, "reservation_id"), (1, "resource"), (2, "project"), (3, "user")] {
            if fields[idx].is_empty() {
                return Err(IngestError::at(lineno, format!("empty {name}")));
            }
        }
        let hours = (end - start) as f64 / 3600.0;
        rows.push(vec![
            Value::Str(fields[0].to_owned()),
            Value::Str(fields[1].to_owned()),
            Value::Str(fields[2].to_owned()),
            Value::Str(fields[3].to_owned()),
            Value::Int(cores),
            Value::Float(memory_gb),
            Value::Time(start),
            Value::Time(end),
            Value::Float(cores as f64 * hours),
        ]);
        report.ingested += 1;
    }
    Ok((rows, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdmod_realms::cloud::fact_schema;

    const CREATE: &str = "1000,vm-1,CREATE,alice,aristotle,m1.small,2,4,40,api,ccr-cloud";

    fn col(row: &Row, name: &str) -> Value {
        let schema = fact_schema();
        row[schema.column_index(name).unwrap()].clone()
    }

    #[test]
    fn simple_lifecycle_one_session() {
        let feed = format!("{CREATE}\n2000,vm-1,START,,,,,,,,\n9200,vm-1,TERMINATE,,,,,,,,\n");
        let (rows, report) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(report.ingested, 1);
        let row = &rows[0];
        assert_eq!(col(row, "wall_hours"), Value::Float(2.0)); // 7200 s
        assert_eq!(col(row, "core_hours"), Value::Float(4.0)); // 2 cores
        assert_eq!(col(row, "started"), Value::Bool(true));
        assert_eq!(col(row, "ended"), Value::Bool(true));
        assert_eq!(col(row, "state_changes"), Value::Int(2)); // START + TERMINATE
        fact_schema().check_row(row.clone()).unwrap();
    }

    #[test]
    fn stop_start_yields_two_sessions() {
        let feed = format!(
            "{CREATE}\n2000,vm-1,START,,,,,,,,\n5600,vm-1,STOP,,,,,,,,\n\
             9200,vm-1,START,,,,,,,,\n12800,vm-1,TERMINATE,,,,,,,,\n"
        );
        let (rows, _) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(col(&rows[0], "started"), Value::Bool(true));
        assert_eq!(col(&rows[0], "ended"), Value::Bool(false));
        assert_eq!(col(&rows[1], "started"), Value::Bool(false));
        assert_eq!(col(&rows[1], "ended"), Value::Bool(true));
        // Wall hours: 3600s each.
        assert_eq!(col(&rows[0], "wall_hours"), Value::Float(1.0));
        assert_eq!(col(&rows[1], "wall_hours"), Value::Float(1.0));
    }

    #[test]
    fn pause_resume_splits_session_and_excludes_paused_time() {
        let feed = format!(
            "{CREATE}\n1000,vm-1,START,,,,,,,,\n4600,vm-1,PAUSE,,,,,,,,\n\
             8200,vm-1,RESUME,,,,,,,,\n11800,vm-1,TERMINATE,,,,,,,,\n"
        );
        let (rows, _) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 2);
        let total_wall: f64 = rows
            .iter()
            .map(|r| col(r, "wall_hours").as_f64().unwrap())
            .sum();
        assert_eq!(total_wall, 2.0); // paused hour not counted
    }

    #[test]
    fn resize_mid_run_changes_configuration() {
        let feed = format!(
            "{CREATE}\n1000,vm-1,START,,,,,,,,\n4600,vm-1,RESIZE,alice,aristotle,m1.large,4,8,40,api,ccr-cloud\n8200,vm-1,TERMINATE,,,,,,,,\n"
        );
        let (rows, _) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(col(&rows[0], "cores"), Value::Int(2));
        assert_eq!(col(&rows[0], "memory_gb"), Value::Float(4.0));
        assert_eq!(col(&rows[1], "cores"), Value::Int(4));
        assert_eq!(col(&rows[1], "memory_gb"), Value::Float(8.0));
        // Core hours reflect each session's own core count.
        assert_eq!(col(&rows[0], "core_hours"), Value::Float(2.0));
        assert_eq!(col(&rows[1], "core_hours"), Value::Float(4.0));
    }

    #[test]
    fn still_running_vm_closed_at_horizon_not_ended() {
        let feed = format!("{CREATE}\n1000,vm-1,START,,,,,,,,\n");
        let (rows, _) = shred(&feed, 1000 + 7200).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(col(&rows[0], "ended"), Value::Bool(false));
        assert_eq!(col(&rows[0], "wall_hours"), Value::Float(2.0));
    }

    #[test]
    fn terminate_of_stopped_vm_emits_zero_length_ended_session() {
        let feed = format!(
            "{CREATE}\n1000,vm-1,START,,,,,,,,\n4600,vm-1,STOP,,,,,,,,\n5000,vm-1,TERMINATE,,,,,,,,\n"
        );
        let (rows, _) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(col(&rows[1], "ended"), Value::Bool(true));
        assert_eq!(col(&rows[1], "wall_hours"), Value::Float(0.0));
    }

    #[test]
    fn invalid_transitions_skipped_with_warnings() {
        let feed = format!(
            "{CREATE}\n1000,vm-1,START,,,,,,,,\n1100,vm-1,START,,,,,,,,\n\
             1200,vm-2,STOP,,,,,,,,\n2000,vm-1,TERMINATE,,,,,,,,\n\
             2100,vm-1,START,,,,,,,,\n"
        );
        let (rows, report) = shred(&feed, 100_000).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(report.skipped, 3);
        assert!(report.warnings.iter().any(|w| w.contains("START while Running")));
        assert!(report.warnings.iter().any(|w| w.contains("before CREATE")));
        assert!(report.warnings.iter().any(|w| w.contains("after TERMINATE")));
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        assert!(parse_feed("1000,vm-1,CREATE,alice,p,t,notanumber,4,40,api,r\n").is_err());
        assert!(parse_feed("1000,vm-1,EXPLODE,,,,,,,,\n").is_err());
        assert!(parse_feed("1000,vm-1,CREATE,,p,t,2,4,40,api,r\n").is_err()); // empty user
        assert!(parse_feed("1000\n").is_err());
        assert!(parse_feed("1000,vm-1,CREATE,a,p,t,0,4,40,api,r\n").is_err()); // zero cores
    }

    #[test]
    fn header_and_comments_tolerated() {
        let feed = format!(
            "ts,vm_id,event,user,project,instance_type,cores,memory_gb,disk_gb,venue,resource\n# synthetic\n{CREATE}\n"
        );
        assert_eq!(parse_feed(&feed).unwrap().len(), 1);
    }

    #[test]
    fn reservations_parse_and_match_schema() {
        let feed = "reservation_id,resource,project,user,cores,memory_gb,start,end\n\
                    rsv-001,ccr-cloud,genomics,alice,8,16,1483228800,1485907200\n\
                    # comment\n\
                    rsv-002,ccr-cloud,teaching,bob,2,4,1483228800,1483315200\n";
        let (rows, report) = shred_reservations(feed).unwrap();
        assert_eq!(report.ingested, 2);
        let schema = xdmod_realms::cloud::reservation_schema();
        for row in &rows {
            schema.check_row(row.clone()).unwrap();
        }
        // rsv-002: 2 cores × 24 h = 48 core-hours.
        let idx = schema.column_index("core_hours_purchased").unwrap();
        assert_eq!(rows[1][idx], Value::Float(48.0));
    }

    #[test]
    fn malformed_reservations_are_errors() {
        for bad in [
            "rsv,r,p,u,0,4,100,200",        // zero cores
            "rsv,r,p,u,2,4,200,100",        // ends before start
            "rsv,r,p,,2,4,100,200",         // empty user
            "rsv,r,p,u,2,4,100",            // missing field
            "rsv,r,p,u,two,4,100,200",      // bad number
        ] {
            assert!(shred_reservations(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn out_of_order_events_per_vm_skipped() {
        // Two events with identical parse order but regressing clock for
        // vm-1 after sorting are impossible; craft regression via equal
        // sort keys: use an event whose ts precedes CREATE's.
        let feed = "1000,vm-1,CREATE,alice,p,t,2,4,40,api,r\n900,vm-1,START,,,,,,,,\n";
        let (rows, report) = shred(feed, 10_000).unwrap();
        // The START sorts before CREATE, so it arrives "before CREATE".
        assert!(rows.is_empty());
        assert_eq!(report.skipped, 1);
    }
}

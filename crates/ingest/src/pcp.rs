//! PCP / TACC Stats-style performance-archive shredder (SUPReMM realm).
//!
//! "Several of these tools (PCP, TACC Stats, Ganglia) form important
//! parts of the data pipeline for XDMoD by providing raw system-level
//! performance data." (§I-B). This module parses a line-oriented archive
//! of per-job performance samples into the SUPReMM realm's three tables:
//! the per-job summary fact, the heavyweight per-job timeseries, and the
//! job script (§II-C5 lists all three as what makes performance data too
//! storage-intensive to federate raw).
//!
//! # Archive format
//!
//! ```text
//! job <job_id> <resource> <user> <end_epoch>
//! ts <epoch> <metric> <value>        # repeated, any of the nine metrics
//! script <single-line script, \n-escaped>
//! end
//! ```

use crate::report::{IngestError, IngestReport, Result};
use xdmod_realms::supremm::TIMESERIES_METRICS;
use xdmod_warehouse::{Row, Value};

/// One job's worth of performance data.
#[derive(Debug, Clone, PartialEq)]
pub struct SupremmJob {
    /// Job id (matches the Jobs realm `job_id`).
    pub job_id: i64,
    /// Resource the job ran on.
    pub resource: String,
    /// Owning user.
    pub user: String,
    /// Job end time, epoch seconds.
    pub end_time: i64,
    /// Raw samples: (timestamp, metric name, value).
    pub samples: Vec<(i64, String, f64)>,
    /// The job's batch script (may be empty).
    pub script: String,
}

impl SupremmJob {
    /// Mean of a metric's samples, or 0.0 when absent.
    pub fn mean(&self, metric: &str) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(_, m, _)| m == metric)
            .map(|(_, _, v)| *v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Max of a metric's samples, or 0.0 when absent (peak memory).
    pub fn max(&self, metric: &str) -> f64 {
        self.samples
            .iter()
            .filter(|(_, m, _)| m == metric)
            .map(|(_, _, v)| *v)
            .fold(0.0, f64::max)
    }

    /// Summary row for `supremm_jobfact`.
    pub fn fact_row(&self) -> Row {
        vec![
            Value::Int(self.job_id),
            Value::Str(self.resource.clone()),
            Value::Str(self.user.clone()),
            Value::Time(self.end_time),
            Value::Float(self.mean("cpu_user")),
            Value::Float(self.mean("flops")),
            Value::Float(self.max("memory_used")),
            Value::Float(self.mean("memory_bandwidth")),
            Value::Float(self.mean("io_read")),
            Value::Float(self.mean("io_write")),
            Value::Float(self.mean("block_read")),
            Value::Float(self.mean("block_write")),
        ]
    }

    /// Rows for `supremm_timeseries` (one per sample).
    pub fn timeseries_rows(&self) -> Vec<Row> {
        self.samples
            .iter()
            .map(|(ts, metric, value)| {
                vec![
                    Value::Int(self.job_id),
                    Value::Time(*ts),
                    Value::Str(metric.clone()),
                    Value::Float(*value),
                ]
            })
            .collect()
    }

    /// Row for `supremm_jobscript`.
    pub fn script_row(&self) -> Row {
        vec![Value::Int(self.job_id), Value::Str(self.script.clone())]
    }
}

/// Parse a full archive into jobs plus a report. Unknown metric names are
/// skipped with a warning (forward compatibility with newer collectors);
/// structural errors (missing `job` header, bad numbers) abort.
pub fn parse_archive(text: &str) -> Result<(Vec<SupremmJob>, IngestReport)> {
    let mut jobs = Vec::new();
    let mut report = IngestReport::default();
    let mut current: Option<SupremmJob> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kind {
            "job" => {
                if current.is_some() {
                    return Err(IngestError::at(lineno, "nested job block (missing end?)"));
                }
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(IngestError::at(lineno, "job header needs 4 fields"));
                }
                current = Some(SupremmJob {
                    job_id: parts[0]
                        .parse()
                        .map_err(|_| IngestError::at(lineno, "bad job id"))?,
                    resource: parts[1].to_owned(),
                    user: parts[2].to_owned(),
                    end_time: parts[3]
                        .parse()
                        .map_err(|_| IngestError::at(lineno, "bad end epoch"))?,
                    samples: Vec::new(),
                    script: String::new(),
                });
            }
            "ts" => {
                let job = current
                    .as_mut()
                    .ok_or_else(|| IngestError::at(lineno, "ts outside job block"))?;
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(IngestError::at(lineno, "ts needs 3 fields"));
                }
                let ts: i64 = parts[0]
                    .parse()
                    .map_err(|_| IngestError::at(lineno, "bad ts epoch"))?;
                let metric = parts[1];
                let value: f64 = parts[2]
                    .parse()
                    .map_err(|_| IngestError::at(lineno, "bad sample value"))?;
                if !value.is_finite() {
                    return Err(IngestError::at(lineno, "non-finite sample value"));
                }
                if TIMESERIES_METRICS.contains(&metric) {
                    job.samples.push((ts, metric.to_owned(), value));
                } else {
                    report.skip(format!("line {lineno}: unknown metric {metric}"));
                }
            }
            "script" => {
                let job = current
                    .as_mut()
                    .ok_or_else(|| IngestError::at(lineno, "script outside job block"))?;
                job.script = rest.replace("\\n", "\n");
            }
            "end" => {
                let job = current
                    .take()
                    .ok_or_else(|| IngestError::at(lineno, "end without job"))?;
                report.ingested += 1;
                jobs.push(job);
            }
            other => {
                return Err(IngestError::at(lineno, format!("unknown directive {other}")));
            }
        }
    }
    if current.is_some() {
        return Err(IngestError::whole("archive ends inside a job block"));
    }
    Ok((jobs, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARCHIVE: &str = "\
job 101 comet alice 1483700000
ts 1483690000 cpu_user 0.9
ts 1483690030 cpu_user 0.7
ts 1483690000 memory_used 10.0
ts 1483690030 memory_used 14.0
ts 1483690000 memory_bandwidth 25.0
script #!/bin/bash\\nsrun ./app
end
job 102 comet bob 1483700500
ts 1483690100 cpu_user 0.5
end
";

    #[test]
    fn parse_two_jobs() {
        let (jobs, report) = parse_archive(ARCHIVE).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(report.ingested, 2);
        assert_eq!(jobs[0].job_id, 101);
        assert_eq!(jobs[0].samples.len(), 5);
        assert_eq!(jobs[0].script, "#!/bin/bash\nsrun ./app");
        assert!(jobs[1].script.is_empty());
    }

    #[test]
    fn summary_statistics() {
        let (jobs, _) = parse_archive(ARCHIVE).unwrap();
        let j = &jobs[0];
        assert!((j.mean("cpu_user") - 0.8).abs() < 1e-12);
        assert_eq!(j.max("memory_used"), 14.0); // peak, not mean
        assert_eq!(j.mean("flops"), 0.0); // absent metric
    }

    #[test]
    fn fact_row_matches_schema() {
        let (jobs, _) = parse_archive(ARCHIVE).unwrap();
        let schema = xdmod_realms::supremm::fact_schema();
        let row = schema.check_row(jobs[0].fact_row()).unwrap();
        let mem_idx = schema.column_index("memory_gb").unwrap();
        assert_eq!(row[mem_idx], Value::Float(14.0));
    }

    #[test]
    fn timeseries_rows_match_schema() {
        let (jobs, _) = parse_archive(ARCHIVE).unwrap();
        let schema = xdmod_realms::supremm::timeseries_schema();
        let rows = jobs[0].timeseries_rows();
        assert_eq!(rows.len(), 5);
        for row in rows {
            schema.check_row(row).unwrap();
        }
    }

    #[test]
    fn script_row_matches_schema() {
        let (jobs, _) = parse_archive(ARCHIVE).unwrap();
        let schema = xdmod_realms::supremm::jobscript_schema();
        schema.check_row(jobs[0].script_row()).unwrap();
    }

    #[test]
    fn unknown_metrics_warn_but_continue() {
        let text = "job 1 r u 100\nts 90 quantum_flux 3.0\nts 91 cpu_user 0.5\nend\n";
        let (jobs, report) = parse_archive(text).unwrap();
        assert_eq!(jobs[0].samples.len(), 1);
        assert_eq!(report.skipped, 1);
        assert!(report.warnings[0].contains("quantum_flux"));
    }

    #[test]
    fn structural_errors_abort() {
        for (text, want) in [
            ("ts 90 cpu_user 0.5\n", "ts outside job"),
            ("job 1 r u 100\njob 2 r u 100\n", "nested job"),
            ("end\n", "end without job"),
            ("job 1 r u 100\n", "ends inside"),
            ("job 1 r u 100\nts 90 cpu_user xyz\nend\n", "bad sample"),
            ("job 1 r u 100\nts 90 cpu_user inf\nend\n", "non-finite"),
            ("wibble 3\n", "unknown directive"),
        ] {
            let err = parse_archive(text).unwrap_err();
            assert!(err.message.contains(want), "{text:?} → {err}");
        }
    }
}

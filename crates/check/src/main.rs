//! `xdmod-check` — run the static pre-flight analyzer over federation
//! topology config files.
//!
//! ```text
//! xdmod-check [--format text|json] [--deny-warnings] [--expect-errors] CONFIG...
//! ```
//!
//! `--json` is shorthand for `--format json`.
//!
//! Exit codes: 0 clean, 1 diagnostics gate failed, 2 usage or config
//! parse error. `--expect-errors` inverts the gate (exit 0 only if
//! Error-severity diagnostics *were* found) so CI can pin known-bad
//! fixtures without shell negation.

use std::process::ExitCode;
use xdmod_check::{analyze, FederationModel};

struct Options {
    json: bool,
    deny_warnings: bool,
    expect_errors: bool,
    quiet: bool,
    configs: Vec<String>,
}

const USAGE: &str = "usage: xdmod-check [--format text|json] [--json] \
                     [--deny-warnings] [--expect-errors] [--quiet] CONFIG.json...";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        expect_errors: false,
        quiet: false,
        configs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    return Err(format!(
                        "--format expects 'text' or 'json', got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--expect-errors" => opts.expect_errors = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            config => opts.configs.push(config.to_owned()),
        }
    }
    if opts.configs.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let mut gate_failed = false;
    for path in &opts.configs {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let model = match FederationModel::from_json(&text) {
            Ok(model) => model,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = analyze(&model);
        if opts.json {
            println!("{}", diags.render_json());
        } else if !opts.quiet {
            if opts.configs.len() > 1 {
                println!("== {path}");
            }
            print!("{}", diags.render_text());
        }
        let failed = diags.has_errors()
            || (opts.deny_warnings && diags.count(xdmod_check::Severity::Warning) > 0);
        let failed = if opts.expect_errors {
            !diags.has_errors()
        } else {
            failed
        };
        gate_failed |= failed;
    }
    if gate_failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

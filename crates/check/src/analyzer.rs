//! The pre-flight analysis passes.
//!
//! Each check is a pure function over the [`FederationModel`] appending
//! to a [`Diagnostics`] collection; [`analyze`] runs them all in code
//! order. Every check detects, *before any data moves*, a
//! misconfiguration that today fails silently at runtime — see each
//! check's doc comment for the concrete runtime symptom it prevents.

use crate::diag::{Code, Diagnostic, Diagnostics, Severity, Span};
use crate::model::{
    alert_families, FederationModel, SatelliteModel, DEFAULT_ALERT_DEBOUNCE_MS,
    DEFAULT_ALERT_RESOLVE_TIMEOUT_MS, PAGING_UNBOUNDED_BUDGET_MB,
};

/// Run every check over the model.
pub fn analyze(model: &FederationModel) -> Diagnostics {
    let mut diags = Diagnostics::new();
    check_hub_schema_collisions(model, &mut diags);
    check_self_replication(model, &mut diags);
    check_duplicate_link_ids(model, &mut diags);
    check_filtered_required_tables(model, &mut diags);
    check_group_by_replication(model, &mut diags);
    check_schema_drift(model, &mut diags);
    check_dangling_dimensions(model, &mut diags);
    check_su_factors(model, &mut diags);
    check_excluded_resources(model, &mut diags);
    check_zero_retry_tight_links(model, &mut diags);
    check_aggregation_pool(model, &mut diags);
    check_gateway_pool(model, &mut diags);
    check_alert_rules(model, &mut diags);
    check_storage_config(model, &mut diags);
    check_paging_config(model, &mut diags);
    diags
}

/// XC0001 — two satellites rename into the same hub schema.
///
/// Runtime symptom: both links apply into one schema; the second link's
/// DDL fails (or worse, compatible tables silently merge two sites'
/// rows), and every per-satellite hub query attributes one satellite's
/// data to the other. Easy to hit: the workspace's `schema_for` maps
/// `site-a` and `site.a` to the same `inst_site_a`.
fn check_hub_schema_collisions(model: &FederationModel, diags: &mut Diagnostics) {
    for (i, sat) in model.satellites.iter().enumerate() {
        for other in &model.satellites[..i] {
            if sat.link.hub_schema == other.link.hub_schema {
                diags.push(
                    Diagnostic::new(
                        Code::HubSchemaCollision,
                        Span::satellite(&sat.name).in_schema(&sat.link.hub_schema),
                        format!(
                            "satellites \"{}\" and \"{}\" both replicate into hub schema \
                             \"{}\"; their rows would merge or their DDL would conflict",
                            other.name, sat.name, sat.link.hub_schema
                        ),
                    )
                    .with_help(
                        "rename one satellite or set a distinct hub-side schema for its link",
                    ),
                );
            }
        }
    }
}

/// XC0002 — a link whose hub schema equals its own source schema.
///
/// Runtime symptom: the replicator tails a binlog and applies the events
/// back into the schema it is tailing (loopback fan-in), re-emitting
/// them as new binlog events — an unbounded feedback loop.
fn check_self_replication(model: &FederationModel, diags: &mut Diagnostics) {
    for sat in &model.satellites {
        if sat.link.source_schema == sat.link.hub_schema {
            diags.push(
                Diagnostic::new(
                    Code::SelfReplication,
                    Span::satellite(&sat.name).in_schema(&sat.link.source_schema),
                    format!(
                        "satellite \"{}\" replicates schema \"{}\" into itself",
                        sat.name, sat.link.source_schema
                    ),
                )
                .with_help("set a hub-side rename (the hub convention is inst_<satellite>)"),
            );
        }
    }
}

/// XC0003 — duplicate link ids.
///
/// Runtime symptom: two links' metrics share one `link=..` label, so
/// lag/error attribution on the ops dashboard is wrong, and operator
/// actions (pause/resume by name) are ambiguous.
fn check_duplicate_link_ids(model: &FederationModel, diags: &mut Diagnostics) {
    for (i, sat) in model.satellites.iter().enumerate() {
        for other in &model.satellites[..i] {
            if sat.link.id == other.link.id {
                diags.push(
                    Diagnostic::new(
                        Code::DuplicateLinkId,
                        Span::satellite(&sat.name),
                        format!(
                            "link id \"{}\" is used by both \"{}\" and \"{}\"",
                            sat.link.id, other.name, sat.name
                        ),
                    )
                    .with_help("give every replication link a unique id"),
                );
            }
        }
    }
}

/// XC0004 — the filter excludes a table the satellite's declared realms
/// require (and therefore a table registered aggregates read).
///
/// Runtime symptom: the paper's silent-empty failure. Replication runs
/// clean, the hub's aggregation pass skips the missing fact table, and
/// every downstream report for that realm is empty with no error
/// anywhere.
fn check_filtered_required_tables(model: &FederationModel, diags: &mut Diagnostics) {
    for sat in &model.satellites {
        for table in &sat.expected_tables {
            if !sat.replicates(table) {
                let consumers: Vec<&str> = model
                    .aggregates
                    .iter()
                    .filter(|a| &a.fact_table == table)
                    .map(|a| a.name.as_str())
                    .collect();
                let consumer_note = if consumers.is_empty() {
                    String::new()
                } else {
                    format!(
                        " (read by registered aggregate(s): {})",
                        consumers.join(", ")
                    )
                };
                diags.push(
                    Diagnostic::new(
                        Code::FilteredRequiredTable,
                        Span::satellite(&sat.name)
                            .in_schema(&sat.link.source_schema)
                            .at_table(table),
                        format!(
                            "satellite \"{}\" declares realms that require table \
                             \"{table}\", but its replication filter excludes it{consumer_note}",
                            sat.name
                        ),
                    )
                    .with_help(
                        "add the table to the filter's table list, or drop the realm \
                         from the satellite's federation config",
                    ),
                );
            }
        }
    }
}

/// XC0005 — a hub group-by query reads a fact table no satellite
/// replicates.
///
/// Runtime symptom: the canned federation report section renders empty
/// (or the federated query errors with "no satellite has replicated ..")
/// on every run, even though every link is healthy.
fn check_group_by_replication(model: &FederationModel, diags: &mut Diagnostics) {
    if model.satellites.is_empty() {
        return; // an empty federation is vacuously consistent
    }
    for gb in &model.group_bys {
        let replicated_anywhere = model.satellites.iter().any(|s| {
            // A satellite serves the query if its filter passes the table
            // and its catalog actually contains it.
            s.replicates(&gb.fact_table)
                && (s.tables.is_empty() || s.table(&gb.fact_table).is_some())
        });
        if !replicated_anywhere {
            diags.push(
                Diagnostic::new(
                    Code::GroupByFactTableUnreplicated,
                    Span::federation().at_table(&gb.fact_table),
                    format!(
                        "hub group-by \"{}\" reads \"{}\", which no satellite replicates",
                        gb.name, gb.fact_table
                    ),
                )
                .with_help(
                    "federate the owning realm from at least one satellite, or drop \
                     the report section",
                ),
            );
        }
    }
}

/// XC0006 — cross-satellite schema drift.
///
/// Runtime symptom: `FederationHub::federated_query` unions per-satellite
/// fact tables and errors with "incompatible layout" the moment the
/// second satellite's rows are reached — at query time, long after both
/// links replicated "successfully".
fn check_schema_drift(model: &FederationModel, diags: &mut Diagnostics) {
    for (i, sat) in model.satellites.iter().enumerate() {
        for other in &model.satellites[..i] {
            for table in &sat.tables {
                if !sat.replicates(&table.name) || !other.replicates(&table.name) {
                    continue;
                }
                let Some(theirs) = other.table(&table.name) else {
                    continue;
                };
                // Columns `other` has that `sat` lacks (the mismatch arm
                // below covers the shared ones, walking sat's columns).
                for their_col in &theirs.columns {
                    if table.column(&their_col.name).is_none() {
                        diags.push(
                            Diagnostic::new(
                                Code::SchemaDrift,
                                Span::satellite(&sat.name)
                                    .at_table(&table.name)
                                    .at_column(&their_col.name),
                                format!(
                                    "table \"{}\" drifts across satellites: column \
                                     \"{}\" exists on \"{}\" but not on \"{}\"",
                                    table.name, their_col.name, other.name, sat.name
                                ),
                            )
                            .with_help("align the fact-table schemas before federating"),
                        );
                    }
                }
                for col in &table.columns {
                    match theirs.column(&col.name) {
                        None => diags.push(
                            Diagnostic::new(
                                Code::SchemaDrift,
                                Span::satellite(&other.name)
                                    .at_table(&table.name)
                                    .at_column(&col.name),
                                format!(
                                    "table \"{}\" drifts across satellites: column \
                                     \"{}\" exists on \"{}\" but not on \"{}\"",
                                    table.name, col.name, sat.name, other.name
                                ),
                            )
                            .with_help("align the fact-table schemas before federating"),
                        ),
                        Some(their_col)
                            if their_col.ty != col.ty || their_col.nullable != col.nullable =>
                        {
                            diags.push(
                                Diagnostic::new(
                                    Code::SchemaDrift,
                                    Span::satellite(&sat.name)
                                        .at_table(&table.name)
                                        .at_column(&col.name),
                                    format!(
                                        "table \"{}\" drifts across satellites: column \
                                         \"{}\" is {}{} on \"{}\" but {}{} on \"{}\"",
                                        table.name,
                                        col.name,
                                        if col.nullable { "nullable " } else { "" },
                                        col.ty,
                                        sat.name,
                                        if their_col.nullable { "nullable " } else { "" },
                                        their_col.ty,
                                        other.name
                                    ),
                                )
                                .with_help(
                                    "the hub's union query will reject the second \
                                     satellite's layout; align column types and nullability",
                                ),
                            );
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
}

/// XC0007 — dangling dimension references.
///
/// A hub group-by column or a registered aggregate's dimension / measure
/// / time column that does not exist in the fact table it reads, checked
/// against every satellite that replicates the table.
///
/// Runtime symptom: per-satellite aggregation (or the report query)
/// errors with "unknown column" only once that satellite has replicated
/// data — a latent failure that preflight surfaces immediately.
fn check_dangling_dimensions(model: &FederationModel, diags: &mut Diagnostics) {
    // (reader description, fact table, referenced columns)
    let mut readers: Vec<(String, &str, Vec<&str>)> = Vec::new();
    for gb in &model.group_bys {
        readers.push((
            format!("group-by \"{}\"", gb.name),
            &gb.fact_table,
            gb.columns.iter().map(String::as_str).collect(),
        ));
    }
    for agg in &model.aggregates {
        let mut cols: Vec<&str> = vec![&agg.time_column];
        cols.extend(agg.dimensions.iter().map(String::as_str));
        cols.extend(agg.measures.iter().map(String::as_str));
        readers.push((format!("aggregate \"{}\"", agg.name), &agg.fact_table, cols));
    }

    for sat in &model.satellites {
        for (reader, fact_table, columns) in &readers {
            if !sat.replicates(fact_table) {
                continue;
            }
            let Some(table) = sat.table(fact_table) else {
                continue; // absent tables are XC0004/XC0005 territory
            };
            for column in columns {
                if table.column(column).is_none() {
                    diags.push(
                        Diagnostic::new(
                            Code::DanglingDimension,
                            Span::satellite(&sat.name)
                                .at_table(fact_table)
                                .at_column(column),
                            format!(
                                "{reader} references column \"{column}\", which does not \
                                 exist in \"{fact_table}\" as replicated by \"{}\"",
                                sat.name
                            ),
                        )
                        .with_help(
                            "fix the dimension/measure name or add the column to the \
                             satellite's fact table",
                        ),
                    );
                }
            }
        }
    }
}

/// XC0008 — a resource with job records but no SU conversion factor.
///
/// Runtime symptom (paper §II-C6): the resource's CPU-hours enter
/// federation metrics unconverted (factor 1.0), so cross-site SU
/// comparisons are silently wrong — the paper's warning that "similar
/// care must be taken so that federation metrics make valid
/// comparisons".
fn check_su_factors(model: &FederationModel, diags: &mut Diagnostics) {
    for sat in &model.satellites {
        for resource in &sat.job_resources {
            if excluded(sat, resource) {
                continue; // never crosses the link, factor irrelevant
            }
            if !sat.su_factors.iter().any(|r| r == resource) {
                diags.push(
                    Diagnostic::new(
                        Code::MissingSuFactor,
                        Span::satellite(&sat.name).at_column(resource),
                        format!(
                            "resource \"{resource}\" on \"{}\" has job records but no SU \
                             conversion factor; its hours federate unconverted (factor 1.0)",
                            sat.name
                        ),
                    )
                    .with_help("register an HPL-derived factor with set_su_factor"),
                );
            }
        }
    }
}

/// XC0009 — an excluded resource that matches nothing.
///
/// Runtime symptom: none — which is the problem. A typo in an exclusion
/// (`"secert"`) silently excludes nothing, and the data the operator
/// meant to keep local replicates to the hub.
fn check_excluded_resources(model: &FederationModel, diags: &mut Diagnostics) {
    for sat in &model.satellites {
        if sat.job_resources.is_empty() {
            continue; // nothing ingested yet; can't vet exclusions
        }
        for excluded in &sat.excluded_resources {
            if !sat.job_resources.iter().any(|r| r == excluded) {
                diags.push(
                    Diagnostic::new(
                        Code::UnknownExcludedResource,
                        Span::satellite(&sat.name).at_column(excluded),
                        format!(
                            "excluded resource \"{excluded}\" matches no job record on \
                             \"{}\" — possible typo; the data it names still replicates",
                            sat.name
                        ),
                    )
                    .with_help("check the spelling against the satellite's resource names"),
                );
            }
        }
    }
}

/// XC0010 — a tight link with retries explicitly disabled.
///
/// Runtime symptom: a live (tight) link's worker surfaces every
/// transient fault straight to `member_last_error` instead of fast
/// retrying, so a single dropped packet marks the member failing and
/// burns one of the supervisor's quarantine strikes. `retries: 0` is
/// only sensible on loose links, where the batch export is re-run by an
/// operator anyway.
fn check_zero_retry_tight_links(model: &FederationModel, diags: &mut Diagnostics) {
    for sat in &model.satellites {
        if sat.link.mode.as_deref() == Some("tight") && sat.link.retries == Some(0) {
            diags.push(
                Diagnostic::new(
                    Code::ZeroRetryTightLink,
                    Span::satellite(&sat.name),
                    format!(
                        "tight link \"{}\" sets retries to 0; transient faults on the \
                         live link will not be retried and count toward quarantine",
                        sat.link.id
                    ),
                )
                .with_help(
                    "drop the explicit retries (the policy default fast-retries) or \
                     set a small positive count",
                ),
            );
        }
    }
}

/// XC0011 — the aggregation pool configures more workers than shards.
///
/// Runtime symptom: the partitioned engine hands each worker whole
/// day-bucket shards, so at most `shards` workers ever run; the surplus
/// threads are spawned (and clamped idle) on every rebuild, paying
/// thread start-up cost for zero extra throughput. The result is still
/// correct — sharded merges are deterministic for any pool size — which
/// is exactly why this misconfiguration survives unnoticed.
fn check_aggregation_pool(model: &FederationModel, diags: &mut Diagnostics) {
    let Some(pool) = &model.aggregation else {
        return;
    };
    if let (Some(workers), Some(shards)) = (pool.workers, pool.shards) {
        if workers > shards {
            diags.push(
                Diagnostic::new(
                    Code::OversizedAggregationPool,
                    Span::federation(),
                    format!(
                        "aggregation pool configures {workers} worker(s) over \
                         {shards} shard(s); {} worker(s) can never claim a shard",
                        workers - shards
                    ),
                )
                .with_help(
                    "lower workers to the shard count, or raise shards — \
                     determinism is unaffected either way",
                ),
            );
        }
    }
}

/// XC0012 — the gateway's HTTP worker pool is larger than the hub's
/// aggregation pool.
///
/// Runtime symptom: every cache-missing `/query` ultimately funnels into
/// the hub warehouse's aggregation pool, so at most `aggregation.workers`
/// requests make real progress at a time. Surplus gateway workers each
/// hold a socket, a queue slot, and an admission permit while blocked on
/// the same warehouse locks — latency rises and the accept queue fills
/// faster under load, with zero added throughput. The gateway still
/// *answers* correctly, which is why the misconfiguration survives
/// unnoticed until a saturation event.
fn check_gateway_pool(model: &FederationModel, diags: &mut Diagnostics) {
    let Some(gateway) = &model.gateway else {
        return;
    };
    let Some(pool) = &model.aggregation else {
        return;
    };
    if let (Some(gw_workers), Some(agg_workers)) = (gateway.workers, pool.workers) {
        if gw_workers > agg_workers {
            diags.push(
                Diagnostic::new(
                    Code::GatewayPoolExceedsAggregation,
                    Span::federation(),
                    format!(
                        "gateway configures {gw_workers} request worker(s) over an \
                         aggregation pool of {agg_workers}; under load the surplus \
                         {} worker(s) queue behind aggregation locks while holding \
                         sockets open",
                        gw_workers - agg_workers
                    ),
                )
                .with_help(
                    "size the gateway pool at or below the hub aggregation pool, \
                     or raise the aggregation pool to match the serving concurrency",
                ),
            );
        }
    }
}

/// XC0013 — an alert rule is unusable as configured.
///
/// Three classes, each a silent monitoring hole at runtime:
///
/// - **unknown family** — no producer ever emits it, so the rule never
///   fires and the operator believes a fault class is covered when it
///   is not;
/// - **resolve timeout within the debounce window** — the alert
///   auto-resolves inside its own flap-damping window, so every
///   recurrence opens (and notifies) afresh: exactly the alert storm
///   flap damping exists to prevent;
/// - **zero-capacity notification bucket** — every dispatch is
///   suppressed; alerts fire into a void.
///
/// `None` fields mean "engine default"; the check substitutes the
/// mirrored defaults so a half-specified rule (e.g. only `debounce_ms`
/// raised past the default resolve timeout) is still caught.
fn check_alert_rules(model: &FederationModel, diags: &mut Diagnostics) {
    let Some(alerts) = &model.alerts else {
        return;
    };
    if alerts.notify_capacity == Some(0) {
        diags.push(
            Diagnostic::new(
                Code::AlertRuleInvalid,
                Span::federation(),
                "alert notification bucket has zero capacity: every dispatch \
                 is suppressed and alerts fire into a void",
            )
            .with_help("set notify_capacity to at least 1 (default 8)"),
        );
    }
    for rule in &alerts.rules {
        if !alert_families().contains(&rule.family.as_str()) {
            diags.push(
                Diagnostic::new(
                    Code::AlertRuleInvalid,
                    Span::federation(),
                    format!(
                        "alert rule names unknown family {:?}: no producer emits \
                         it, so the rule can never fire (known families: {})",
                        rule.family,
                        alert_families().join(", ")
                    ),
                )
                .with_help("fix the family name or delete the rule"),
            );
        }
        let debounce = rule.debounce_ms.unwrap_or(DEFAULT_ALERT_DEBOUNCE_MS);
        let resolve = rule
            .resolve_timeout_ms
            .unwrap_or(DEFAULT_ALERT_RESOLVE_TIMEOUT_MS);
        if resolve <= debounce {
            diags.push(
                Diagnostic::new(
                    Code::AlertRuleInvalid,
                    Span::federation(),
                    format!(
                        "alert rule for {:?} auto-resolves after {resolve} ms, \
                         within its own {debounce} ms flap-damping window: every \
                         recurrence re-fires (and re-notifies) as a new episode",
                        rule.family
                    ),
                )
                .with_help("raise resolve_timeout_ms above debounce_ms"),
            );
        }
    }
}

/// XC0014 — the durable-storage stanza is unusable or self-defeating.
///
/// The hub's config loader degrades gracefully: a storage stanza it
/// cannot honor leaves the hub on the in-memory backend rather than
/// refusing to start. That is the right runtime behavior and exactly
/// why this check exists — the operator believes the warehouse is
/// durable while every record still lives only in RAM. Classes:
///
/// - **unknown backend** — neither `"memory"` nor `"disk"`; the loader
///   ignores the stanza entirely (error);
/// - **disk without a directory** — the one field the disk backend
///   cannot default; the loader stays on memory (error);
/// - **zero snapshot interval** — `snapshot_every_records: 0` silently
///   disables auto-snapshots, so the binlog grows without bound and
///   recovery replays it from the beginning (error);
/// - **snapshot interval of 1** — a full snapshot + compaction per
///   ingested record; durable, but pathological write amplification
///   (warning);
/// - **directory on the memory backend** — the directory is never
///   written; likely a half-edited stanza (warning).
fn check_storage_config(model: &FederationModel, diags: &mut Diagnostics) {
    let Some(storage) = &model.storage else {
        return;
    };
    let backend = storage.backend.as_deref();
    match backend {
        None | Some("memory") | Some("disk") => {}
        Some(other) => {
            diags.push(
                Diagnostic::new(
                    Code::StorageConfigInvalid,
                    Span::federation(),
                    format!(
                        "storage backend {other:?} is not a known backend: the hub \
                         ignores the stanza and keeps every record in RAM"
                    ),
                )
                .with_help("set backend to \"disk\" (durable) or \"memory\" (explicit default)"),
            );
        }
    }
    if backend == Some("disk") && storage.dir.is_none() {
        diags.push(
            Diagnostic::new(
                Code::StorageConfigInvalid,
                Span::federation(),
                "storage backend is \"disk\" but no directory is configured: the \
                 hub silently stays on the in-memory backend and nothing is durable",
            )
            .with_help("set storage.dir to the WAL directory the hub may create and own"),
        );
    }
    if backend != Some("disk") && storage.dir.is_some() {
        let mut d = Diagnostic::new(
            Code::StorageConfigInvalid,
            Span::federation(),
            format!(
                "storage.dir {:?} is configured but the backend is not \"disk\": \
                 the directory is never written (half-edited stanza?)",
                storage.dir.as_deref().unwrap_or_default()
            ),
        )
        .with_help("set backend to \"disk\", or drop the unused dir field");
        d.severity = Severity::Warning;
        diags.push(d);
    }
    match storage.snapshot_every_records {
        Some(0) => {
            diags.push(
                Diagnostic::new(
                    Code::StorageConfigInvalid,
                    Span::federation(),
                    "snapshot_every_records is 0: auto-snapshots are silently \
                     disabled, the binlog is never compacted, and recovery \
                     replays it from the first record",
                )
                .with_help("set a positive interval (thousands of records is typical)"),
            );
        }
        Some(1) => {
            let mut d = Diagnostic::new(
                Code::StorageConfigInvalid,
                Span::federation(),
                "snapshot_every_records is 1: every ingested record triggers a \
                 full snapshot and binlog compaction — durable, but pathological \
                 write amplification",
            )
            .with_help("raise the interval well above the typical ingest batch size");
            d.severity = Severity::Warning;
            diags.push(d);
        }
        _ => {}
    }
    if storage.segment_max_kb == Some(0) {
        let mut d = Diagnostic::new(
            Code::StorageConfigInvalid,
            Span::federation(),
            "segment_max_kb is 0: the disk backend clamps it to the minimum \
             viable segment, rolling a new file on nearly every append",
        )
        .with_help("size segments in the hundreds of KiB to low MiB range");
        d.severity = Severity::Warning;
        diags.push(d);
    }
}

/// XC0015 — the `storage.paging` stanza is unusable or self-defeating.
///
/// Paging makes the warehouse larger than RAM by spilling cold
/// day-bucket shards to disk. A spill file is a *cache*: when one is
/// lost or corrupt, the residency manager declares the shard Lost and
/// the only repair source is the durable write-ahead log. Classes:
///
/// - **paging without a durable disk backend** — a Lost shard could
///   never be rebuilt; the first evicted shard is one disk hiccup away
///   from permanent data loss (error);
/// - **zero working-set budget / zero pages** — a budget too small to
///   hold even one resident shard means every scan faults its shard in
///   and immediately evicts it again; nothing can stay resident (error);
/// - **unbounded budget** — at or above
///   [`PAGING_UNBOUNDED_BUDGET_MB`], the budget can never fill, no
///   shard ever spills, and paging is pure bookkeeping overhead
///   (warning).
fn check_paging_config(model: &FederationModel, diags: &mut Diagnostics) {
    let Some(storage) = model.storage.as_ref() else {
        return;
    };
    let Some(paging) = storage.paging.as_ref() else {
        return;
    };
    let durable = storage.backend.as_deref() == Some("disk") && storage.dir.is_some();
    if !durable {
        diags.push(
            Diagnostic::new(
                Code::PagingConfigInvalid,
                Span::federation(),
                "storage.paging is configured without a durable disk backend: a \
                 corrupt or missing spill file can only be repaired by replaying \
                 the write-ahead log, and the memory backend has none — the first \
                 evicted shard risks permanent loss",
            )
            .with_help("set storage.backend to \"disk\" with a dir, or drop the paging stanza"),
        );
    }
    if paging.budget_mb == Some(0) || paging.pages_per_table == Some(0) {
        diags.push(
            Diagnostic::new(
                Code::PagingConfigInvalid,
                Span::federation(),
                "storage.paging budget is smaller than a single shard: no page can \
                 stay resident, so every scan faults its shard in from disk and \
                 immediately evicts it again",
            )
            .with_help("budget at least a few shards' worth of MiB (and nonzero pages_per_table)"),
        );
    }
    if let Some(mb) = paging.budget_mb {
        if mb >= PAGING_UNBOUNDED_BUDGET_MB {
            let mut d = Diagnostic::new(
                Code::PagingConfigInvalid,
                Span::federation(),
                format!(
                    "storage.paging budget_mb {mb} is at or above the unbounded \
                     sentinel ({PAGING_UNBOUNDED_BUDGET_MB}): the budget can never \
                     fill, no shard ever spills, and paging is pure overhead"
                ),
            )
            .with_help("size the budget to the hub's real memory ceiling, or drop the stanza");
            d.severity = Severity::Warning;
            diags.push(d);
        }
    }
}

fn excluded(sat: &SatelliteModel, resource: &str) -> bool {
    sat.excluded_resources.iter().any(|r| r == resource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AggregateModel, ColumnModel, GroupByModel, LinkModel, TableModel};

    fn jobfact() -> TableModel {
        TableModel {
            name: "jobfact".into(),
            columns: vec![
                ColumnModel {
                    name: "resource".into(),
                    ty: "str".into(),
                    nullable: false,
                },
                ColumnModel {
                    name: "end_time".into(),
                    ty: "time".into(),
                    nullable: false,
                },
                ColumnModel {
                    name: "cpu_hours".into(),
                    ty: "float".into(),
                    nullable: false,
                },
            ],
        }
    }

    fn satellite(name: &str) -> SatelliteModel {
        SatelliteModel {
            name: name.into(),
            link: LinkModel {
                id: name.into(),
                source_schema: crate::model::default_source_schema(name),
                hub_schema: crate::model::default_hub_schema(name),
                mode: None,
                retries: None,
            },
            replicated_tables: Some(vec!["jobfact".into()]),
            expected_tables: vec!["jobfact".into()],
            excluded_resources: vec![],
            tables: vec![jobfact()],
            job_resources: vec![format!("res-{name}")],
            su_factors: vec![format!("res-{name}")],
        }
    }

    fn clean_model() -> FederationModel {
        FederationModel {
            hub: "hub".into(),
            satellites: vec![satellite("a"), satellite("b")],
            aggregates: vec![AggregateModel {
                name: "jobs".into(),
                fact_table: "jobfact".into(),
                time_column: "end_time".into(),
                dimensions: vec!["resource".into()],
                measures: vec!["cpu_hours".into()],
            }],
            group_bys: vec![GroupByModel {
                name: "usage by resource".into(),
                fact_table: "jobfact".into(),
                columns: vec!["resource".into()],
            }],
            aggregation: None,
            gateway: None,
            alerts: None,
            storage: None,
        }
    }

    #[test]
    fn clean_model_produces_no_diagnostics() {
        let diags = analyze(&clean_model());
        assert!(diags.is_empty(), "unexpected: {}", diags.render_text());
    }

    #[test]
    fn alert_rule_problems_are_flagged() {
        use crate::model::{AlertRuleModel, AlertsModel};
        let mut m = clean_model();
        m.alerts = Some(AlertsModel {
            notify_capacity: Some(0),
            notify_refill_per_sec: None,
            rules: vec![
                AlertRuleModel {
                    family: "disk_full".into(),
                    debounce_ms: None,
                    resolve_timeout_ms: None,
                },
                AlertRuleModel {
                    family: "link_down".into(),
                    debounce_ms: Some(10_000),
                    resolve_timeout_ms: Some(10_000),
                },
                // Half-specified: debounce raised past the *default*
                // resolve timeout.
                AlertRuleModel {
                    family: "quarantine".into(),
                    debounce_ms: Some(60_000),
                    resolve_timeout_ms: None,
                },
            ],
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::AlertRuleInvalid);
        assert_eq!(findings.len(), 4, "got: {}", diags.render_text());
        assert!(diags.has_errors());
        assert!(findings.iter().any(|d| d.message.contains("disk_full")));
        assert!(findings.iter().any(|d| d.message.contains("zero capacity")));
        assert!(findings
            .iter()
            .any(|d| d.message.contains("quarantine") && d.message.contains("30000 ms")));
    }

    #[test]
    fn valid_alert_rules_are_clean() {
        use crate::model::{AlertRuleModel, AlertsModel};
        let mut m = clean_model();
        m.alerts = Some(AlertsModel {
            notify_capacity: Some(8),
            notify_refill_per_sec: Some(1),
            rules: vec![AlertRuleModel {
                family: "replication_lag".into(),
                debounce_ms: Some(2_000),
                resolve_timeout_ms: Some(20_000),
            }],
        });
        let diags = analyze(&m);
        assert!(diags.is_empty(), "unexpected: {}", diags.render_text());
    }

    #[test]
    fn storage_config_problems_are_flagged() {
        use crate::model::StorageModel;
        let mut m = clean_model();
        // Unknown backend + stray dir + zero snapshot interval.
        m.storage = Some(StorageModel {
            backend: Some("papyrus".into()),
            dir: Some("/tmp/wal".into()),
            segment_max_kb: Some(0),
            snapshot_every_records: Some(0),
            fsync: None,
            paging: None,
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::StorageConfigInvalid);
        assert_eq!(findings.len(), 4, "got: {}", diags.render_text());
        assert!(diags.has_errors());
        assert!(findings.iter().any(|d| d.message.contains("papyrus")));
        assert!(findings
            .iter()
            .any(|d| d.message.contains("never written") && d.severity == Severity::Warning));
        assert!(findings
            .iter()
            .any(|d| d.message.contains("silently disabled")));
        assert!(findings
            .iter()
            .any(|d| d.message.contains("segment_max_kb") && d.severity == Severity::Warning));

        // Disk without a directory is the flagship silent-memory case.
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            ..StorageModel::default()
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::StorageConfigInvalid);
        assert_eq!(findings.len(), 1, "got: {}", diags.render_text());
        assert!(findings[0].message.contains("no directory"));
        assert_eq!(findings[0].severity, Severity::Error);

        // Snapshot-per-record is flagged, but only as a warning.
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            snapshot_every_records: Some(1),
            ..StorageModel::default()
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::StorageConfigInvalid);
        assert_eq!(findings.len(), 1, "got: {}", diags.render_text());
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(!diags.has_errors());
    }

    #[test]
    fn valid_storage_config_is_clean() {
        use crate::model::StorageModel;
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            segment_max_kb: Some(1024),
            snapshot_every_records: Some(5000),
            fsync: Some(true),
            paging: None,
        });
        assert!(analyze(&m).is_empty());
        // Explicit memory backend with no stray fields is fine too.
        m.storage = Some(StorageModel {
            backend: Some("memory".into()),
            ..StorageModel::default()
        });
        assert!(analyze(&m).is_empty());
        // An empty stanza is "defaults everywhere" — also fine.
        m.storage = Some(StorageModel::default());
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn paging_config_problems_are_flagged() {
        use crate::model::{PagingModel, StorageModel, PAGING_UNBOUNDED_BUDGET_MB};
        // Paging over the memory backend: the flagship unrepairable case.
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            paging: Some(PagingModel {
                budget_mb: Some(64),
                ..PagingModel::default()
            }),
            ..StorageModel::default()
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::PagingConfigInvalid);
        assert_eq!(findings.len(), 1, "got: {}", diags.render_text());
        assert!(findings[0].message.contains("durable disk backend"));
        assert_eq!(findings[0].severity, Severity::Error);

        // Zero budget on a proper disk backend: nothing can stay resident.
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            paging: Some(PagingModel {
                budget_mb: Some(0),
                ..PagingModel::default()
            }),
            ..StorageModel::default()
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::PagingConfigInvalid);
        assert_eq!(findings.len(), 1, "got: {}", diags.render_text());
        assert!(findings[0].message.contains("smaller than a single shard"));
        assert_eq!(findings[0].severity, Severity::Error);

        // Unbounded budget: flagged, but only as a warning.
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            paging: Some(PagingModel {
                budget_mb: Some(PAGING_UNBOUNDED_BUDGET_MB),
                ..PagingModel::default()
            }),
            ..StorageModel::default()
        });
        let diags = analyze(&m);
        let findings = diags.with_code(Code::PagingConfigInvalid);
        assert_eq!(findings.len(), 1, "got: {}", diags.render_text());
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(!diags.has_errors());
    }

    #[test]
    fn valid_paging_config_is_clean() {
        use crate::model::{PagingModel, StorageModel};
        let mut m = clean_model();
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            paging: Some(PagingModel {
                budget_mb: Some(256),
                pages_per_table: Some(8),
                spill_dir: Some("/var/lib/xdmod/wal/paging".into()),
                fsync: Some(false),
            }),
            ..StorageModel::default()
        });
        assert!(analyze(&m).is_empty());
        // An empty paging stanza over disk is "defaults everywhere" — fine.
        m.storage = Some(StorageModel {
            backend: Some("disk".into()),
            dir: Some("/var/lib/xdmod/wal".into()),
            paging: Some(PagingModel::default()),
            ..StorageModel::default()
        });
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn sanitization_collision_is_caught() {
        let mut m = clean_model();
        m.satellites.push(satellite("site-a"));
        m.satellites.push(satellite("site.a")); // same inst_site_a
                                                // Distinct link ids, so only the collision fires.
        m.satellites[3].link.id = "site.a".into();
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::HubSchemaCollision).len(), 1);
        let d = diags.with_code(Code::HubSchemaCollision)[0];
        assert_eq!(d.span.schema.as_deref(), Some("inst_site_a"));
        assert!(diags.has_errors());
    }

    #[test]
    fn self_replication_is_caught() {
        let mut m = clean_model();
        m.satellites[0].link.hub_schema = m.satellites[0].link.source_schema.clone();
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::SelfReplication).len(), 1);
    }

    #[test]
    fn duplicate_link_ids_are_caught() {
        let mut m = clean_model();
        m.satellites[1].link.id = "a".into();
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::DuplicateLinkId).len(), 1);
    }

    #[test]
    fn filtered_required_table_is_caught() {
        let mut m = clean_model();
        // Satellite b declares jobs but filters jobfact out.
        m.satellites[1].replicated_tables = Some(vec![]);
        let diags = analyze(&m);
        let found = diags.with_code(Code::FilteredRequiredTable);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("aggregate(s): jobs"));
        assert_eq!(found[0].span.table.as_deref(), Some("jobfact"));
    }

    #[test]
    fn group_by_over_unreplicated_table_is_caught() {
        let mut m = clean_model();
        for s in &mut m.satellites {
            s.replicated_tables = Some(vec![]);
            s.expected_tables.clear(); // silence XC0004; isolate XC0005
        }
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::GroupByFactTableUnreplicated).len(), 1);
    }

    #[test]
    fn oversized_aggregation_pool_is_flagged() {
        let mut m = clean_model();
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(16),
            shards: Some(4),
        });
        let diags = analyze(&m);
        let found = diags.with_code(Code::OversizedAggregationPool);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("12 worker(s)"));
        assert!(!diags.has_errors(), "XC0011 is a warning, not an error");
    }

    #[test]
    fn matched_or_unspecified_aggregation_pool_is_clean() {
        let mut m = clean_model();
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(4),
            shards: Some(4),
        });
        assert!(analyze(&m).is_empty());
        // A pool smaller than the shard count is fine: workers just make
        // several passes over the shard list.
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(2),
            shards: Some(8),
        });
        assert!(analyze(&m).is_empty());
        // Half-specified pools are not reasoned about.
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(64),
            shards: None,
        });
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn gateway_pool_larger_than_aggregation_pool_is_flagged() {
        let mut m = clean_model();
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(4),
            shards: Some(4),
        });
        m.gateway = Some(crate::model::GatewayModel { workers: Some(16) });
        let diags = analyze(&m);
        let found = diags.with_code(Code::GatewayPoolExceedsAggregation);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("16 request worker(s)"));
        assert!(found[0].message.contains("12 worker(s)"));
        assert!(!diags.has_errors(), "XC0012 is a warning, not an error");
    }

    #[test]
    fn matched_or_absent_gateway_pool_is_clean() {
        let mut m = clean_model();
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(8),
            shards: Some(8),
        });
        // Equal is fine; smaller is fine.
        m.gateway = Some(crate::model::GatewayModel { workers: Some(8) });
        assert!(analyze(&m).is_empty());
        m.gateway = Some(crate::model::GatewayModel { workers: Some(2) });
        assert!(analyze(&m).is_empty());
        // A gateway with no aggregation pool to compare to is not
        // reasoned about — and neither is an unsized gateway.
        m.aggregation = None;
        m.gateway = Some(crate::model::GatewayModel { workers: Some(64) });
        assert!(analyze(&m).is_empty());
        m.aggregation = Some(crate::model::AggregationPoolModel {
            workers: Some(4),
            shards: Some(4),
        });
        m.gateway = Some(crate::model::GatewayModel { workers: None });
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn empty_federation_is_vacuously_clean() {
        let mut m = clean_model();
        m.satellites.clear();
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn schema_drift_is_caught() {
        let mut m = clean_model();
        m.satellites[1].tables[0].columns[2].ty = "int".into();
        let diags = analyze(&m);
        let found = diags.with_code(Code::SchemaDrift);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].span.column.as_deref(), Some("cpu_hours"));
        assert!(found[0].message.contains("float"));
        assert!(found[0].message.contains("int"));
    }

    #[test]
    fn nullability_drift_is_caught() {
        let mut m = clean_model();
        m.satellites[0].tables[0].columns[0].nullable = true;
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::SchemaDrift).len(), 1);
    }

    #[test]
    fn missing_column_drift_is_caught() {
        let mut m = clean_model();
        m.satellites[1].tables[0].columns.pop(); // b lacks cpu_hours
        let diags = analyze(&m);
        // Drift (a has it, b doesn't) plus b's aggregate measure dangles.
        assert_eq!(diags.with_code(Code::SchemaDrift).len(), 1);
        assert_eq!(diags.with_code(Code::DanglingDimension).len(), 1);
    }

    #[test]
    fn dangling_group_by_dimension_is_caught() {
        let mut m = clean_model();
        m.group_bys[0].columns = vec!["quue".into()]; // typo for queue
        let diags = analyze(&m);
        let found = diags.with_code(Code::DanglingDimension);
        assert_eq!(found.len(), 2); // flagged per replicating satellite
        assert!(found[0].message.contains("quue"));
    }

    #[test]
    fn dangling_aggregate_time_column_is_caught() {
        let mut m = clean_model();
        m.aggregates[0].time_column = "finish_time".into();
        let diags = analyze(&m);
        assert_eq!(diags.with_code(Code::DanglingDimension).len(), 2);
    }

    #[test]
    fn missing_su_factor_is_a_warning_not_an_error() {
        let mut m = clean_model();
        m.satellites[0].su_factors.clear();
        let diags = analyze(&m);
        let found = diags.with_code(Code::MissingSuFactor);
        assert_eq!(found.len(), 1);
        assert!(!diags.has_errors());
        assert_eq!(diags.count(crate::diag::Severity::Warning), 1);
    }

    #[test]
    fn excluded_resource_needs_no_su_factor() {
        let mut m = clean_model();
        m.satellites[0].su_factors.clear();
        let resource = m.satellites[0].job_resources[0].clone();
        m.satellites[0].excluded_resources.push(resource);
        let diags = analyze(&m);
        assert!(diags.with_code(Code::MissingSuFactor).is_empty());
        assert!(diags.with_code(Code::UnknownExcludedResource).is_empty());
    }

    #[test]
    fn excluded_resource_typo_is_caught() {
        let mut m = clean_model();
        m.satellites[0].excluded_resources.push("secert".into());
        let diags = analyze(&m);
        let found = diags.with_code(Code::UnknownExcludedResource);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("secert"));
    }

    #[test]
    fn zero_retry_tight_link_is_a_warning() {
        let mut m = clean_model();
        m.satellites[0].link.mode = Some("tight".into());
        m.satellites[0].link.retries = Some(0);
        let diags = analyze(&m);
        let found = diags.with_code(Code::ZeroRetryTightLink);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("retries to 0"));
        assert!(!diags.has_errors());
    }

    #[test]
    fn zero_retries_on_a_loose_link_is_fine() {
        let mut m = clean_model();
        m.satellites[0].link.mode = Some("loose".into());
        m.satellites[0].link.retries = Some(0);
        // A tight link with positive retries is equally fine.
        m.satellites[1].link.mode = Some("tight".into());
        m.satellites[1].link.retries = Some(2);
        assert!(analyze(&m).with_code(Code::ZeroRetryTightLink).is_empty());
    }

    #[test]
    fn exclusions_are_not_vetted_before_ingest() {
        let mut m = clean_model();
        m.satellites[0].job_resources.clear();
        m.satellites[0].excluded_resources.push("future-res".into());
        let diags = analyze(&m);
        assert!(diags.with_code(Code::UnknownExcludedResource).is_empty());
    }
}

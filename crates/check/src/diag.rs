//! The diagnostics vocabulary: stable codes, severities, structured
//! spans, and collected [`Diagnostics`] with text and JSON rendering.
//!
//! Codes are stable across releases (`XC0001..`): tooling, CI greps, and
//! `xc-allow` style suppressions may key on them. New checks append new
//! codes; retired checks leave their number unused forever.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never gates anything.
    Info,
    /// Suspicious but the federation will run; gates only under
    /// `--deny-warnings`.
    Warning,
    /// The federation is misconfigured; `preflight()` refuses `go_live`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. One code per distinct misconfiguration class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Two satellites' rename rules collide on one hub schema.
    HubSchemaCollision,
    /// A satellite's link replicates into its own source schema.
    SelfReplication,
    /// Two replication links share an id.
    DuplicateLinkId,
    /// The replication filter excludes a table the satellite's declared
    /// realms (and therefore a registered aggregate) require.
    FilteredRequiredTable,
    /// No satellite replicates the fact table a hub group-by query reads.
    GroupByFactTableUnreplicated,
    /// Two satellites replicate the same table name with incompatible
    /// column layouts (the hub's union query will fail).
    SchemaDrift,
    /// A group-by or aggregation dimension names a column absent from the
    /// fact table it reads.
    DanglingDimension,
    /// A resource appears in job records without an SU conversion factor.
    MissingSuFactor,
    /// An excluded resource matches no resource in any job record.
    UnknownExcludedResource,
    /// A tight (live) link explicitly configures zero retries: one
    /// transient source hiccup per interval and the link never
    /// fast-recovers, inflating lag for no benefit.
    ZeroRetryTightLink,
    /// The aggregation pool configures more workers than the fact tables
    /// have day-bucket shards: the surplus workers can never claim a
    /// shard and sit idle while still being spawned every rebuild.
    OversizedAggregationPool,
    /// The gateway's HTTP worker pool is larger than the hub's
    /// aggregation pool: under load, the surplus request workers all
    /// queue behind the same aggregation locks, holding sockets open
    /// without adding any throughput.
    GatewayPoolExceedsAggregation,
    /// An alert rule is unusable: it names a family no producer emits,
    /// auto-resolves inside its own flap-damping window, or configures a
    /// zero-capacity notification bucket that suppresses every dispatch.
    AlertRuleInvalid,
    /// The durable-storage stanza is unusable or self-defeating: an
    /// unknown backend name, a disk backend with no directory, a zero or
    /// absurd snapshot interval, or a directory configured for the
    /// memory backend (which persists nothing).
    StorageConfigInvalid,
    /// The `storage.paging` stanza is unusable or self-defeating: paging
    /// over the memory backend (no durable log to repair lost spill files
    /// from), a working-set budget too small to hold even one shard, or a
    /// budget at or above the unbounded sentinel (paging overhead with no
    /// memory bound in return).
    PagingConfigInvalid,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 15] = [
        Code::HubSchemaCollision,
        Code::SelfReplication,
        Code::DuplicateLinkId,
        Code::FilteredRequiredTable,
        Code::GroupByFactTableUnreplicated,
        Code::SchemaDrift,
        Code::DanglingDimension,
        Code::MissingSuFactor,
        Code::UnknownExcludedResource,
        Code::ZeroRetryTightLink,
        Code::OversizedAggregationPool,
        Code::GatewayPoolExceedsAggregation,
        Code::AlertRuleInvalid,
        Code::StorageConfigInvalid,
        Code::PagingConfigInvalid,
    ];

    /// The stable `XCnnnn` identifier.
    pub fn ident(self) -> &'static str {
        match self {
            Code::HubSchemaCollision => "XC0001",
            Code::SelfReplication => "XC0002",
            Code::DuplicateLinkId => "XC0003",
            Code::FilteredRequiredTable => "XC0004",
            Code::GroupByFactTableUnreplicated => "XC0005",
            Code::SchemaDrift => "XC0006",
            Code::DanglingDimension => "XC0007",
            Code::MissingSuFactor => "XC0008",
            Code::UnknownExcludedResource => "XC0009",
            Code::ZeroRetryTightLink => "XC0010",
            Code::OversizedAggregationPool => "XC0011",
            Code::GatewayPoolExceedsAggregation => "XC0012",
            Code::AlertRuleInvalid => "XC0013",
            Code::StorageConfigInvalid => "XC0014",
            Code::PagingConfigInvalid => "XC0015",
        }
    }

    /// Default severity of findings with this code.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::HubSchemaCollision
            | Code::SelfReplication
            | Code::DuplicateLinkId
            | Code::FilteredRequiredTable
            | Code::GroupByFactTableUnreplicated
            | Code::SchemaDrift
            | Code::DanglingDimension
            // An unusable alert rule means the operator believes a fault
            // family is monitored when it is not — worse than no rule.
            | Code::AlertRuleInvalid
            // A broken storage stanza means the operator believes data is
            // durable when the hub silently stayed on the memory backend.
            | Code::StorageConfigInvalid
            // Paging findings default to Error; the analyzer downgrades
            // the unbounded-budget case to Warning at emission time.
            | Code::PagingConfigInvalid => Severity::Error,
            Code::MissingSuFactor
            | Code::UnknownExcludedResource
            | Code::ZeroRetryTightLink
            | Code::OversizedAggregationPool
            | Code::GatewayPoolExceedsAggregation => Severity::Warning,
        }
    }

    /// One-line description of the misconfiguration class.
    pub fn summary(self) -> &'static str {
        match self {
            Code::HubSchemaCollision => "hub schema name collision between satellites",
            Code::SelfReplication => "satellite replicates into its own schema",
            Code::DuplicateLinkId => "duplicate replication link id",
            Code::FilteredRequiredTable => "replication filter excludes a required table",
            Code::GroupByFactTableUnreplicated => {
                "hub group-by reads a table no satellite replicates"
            }
            Code::SchemaDrift => "cross-satellite schema drift",
            Code::DanglingDimension => "dangling dimension reference",
            Code::MissingSuFactor => "resource has no SU conversion factor",
            Code::UnknownExcludedResource => "excluded resource matches no job record",
            Code::ZeroRetryTightLink => "tight link configured with zero retries",
            Code::OversizedAggregationPool => "aggregation pool has more workers than shards",
            Code::GatewayPoolExceedsAggregation => {
                "gateway worker pool exceeds the hub aggregation pool"
            }
            Code::AlertRuleInvalid => "invalid alert rule configuration",
            Code::StorageConfigInvalid => "invalid durable-storage configuration",
            Code::PagingConfigInvalid => "invalid storage.paging configuration",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ident())
    }
}

/// Where a finding points: the offending satellite / schema / table /
/// column, each optional because different checks bottom out at
/// different granularities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Satellite (member) name.
    pub satellite: Option<String>,
    /// Warehouse schema name (satellite-side or hub-side, per message).
    pub schema: Option<String>,
    /// Table name.
    pub table: Option<String>,
    /// Column name.
    pub column: Option<String>,
}

impl Span {
    /// Empty span (federation-wide finding).
    pub fn federation() -> Self {
        Span::default()
    }

    /// Span naming a satellite.
    pub fn satellite(name: &str) -> Self {
        Span {
            satellite: Some(name.to_owned()),
            ..Span::default()
        }
    }

    /// Attach a schema name.
    pub fn in_schema(mut self, schema: &str) -> Self {
        self.schema = Some(schema.to_owned());
        self
    }

    /// Attach a table name.
    pub fn at_table(mut self, table: &str) -> Self {
        self.table = Some(table.to_owned());
        self
    }

    /// Attach a column name.
    pub fn at_column(mut self, column: &str) -> Self {
        self.column = Some(column.to_owned());
        self
    }

    fn parts(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(s) = &self.satellite {
            out.push(format!("satellite:{s}"));
        }
        if let Some(s) = &self.schema {
            out.push(format!("schema:{s}"));
        }
        if let Some(t) = &self.table {
            out.push(format!("table:{t}"));
        }
        if let Some(c) = &self.column {
            out.push(format!("column:{c}"));
        }
        out
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts = self.parts();
        if parts.is_empty() {
            write!(f, "federation")
        } else {
            write!(f, "{}", parts.join(" "))
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually [`Code::default_severity`]).
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// Human-readable explanation with concrete names.
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A finding at the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a remediation hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render as one `rustc`-style text block.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}\n",
            self.severity, self.code, self.message, self.span
        );
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }

    /// Render as a JSON object.
    pub fn render_json(&self) -> String {
        use crate::json::escape;
        let mut fields = vec![
            format!("\"code\":\"{}\"", self.code.ident()),
            format!("\"severity\":\"{}\"", self.severity),
            format!("\"message\":{}", escape(&self.message)),
        ];
        let mut span = Vec::new();
        for (key, value) in [
            ("satellite", &self.span.satellite),
            ("schema", &self.span.schema),
            ("table", &self.span.table),
            ("column", &self.span.column),
        ] {
            if let Some(v) = value {
                span.push(format!("\"{key}\":{}", escape(v)));
            }
        }
        fields.push(format!("\"span\":{{{}}}", span.join(",")));
        if let Some(help) = &self.help {
            fields.push(format!("\"help\":{}", escape(help)));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// The collected output of an analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Record a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// All findings, in emission order (analyzer passes run in code
    /// order, so this is also roughly code order).
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Findings carrying a specific code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.items.iter().filter(|d| d.code == code).collect()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any `Error`-severity finding exists (the `go_live` gate).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// One-line summary, e.g. `2 error(s), 1 warning(s)`.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
    }

    /// Render every finding as text, most severe first, ending with the
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut ordered: Vec<&Diagnostic> = self.items.iter().collect();
        ordered.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
        let mut out = String::new();
        for d in ordered {
            out.push_str(&d.render_text());
        }
        out.push_str(&format!("preflight: {}\n", self.summary()));
        out
    }

    /// Render as a JSON document: `{"diagnostics":[..],"errors":n,..}`.
    pub fn render_json(&self) -> String {
        let body: Vec<String> = self.items.iter().map(Diagnostic::render_json).collect();
        format!(
            "{{\"diagnostics\":[{}],\"errors\":{},\"warnings\":{}}}",
            body.join(","),
            self.count(Severity::Error),
            self.count(Severity::Warning),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut idents: Vec<&str> = Code::ALL.iter().map(|c| c.ident()).collect();
        idents.sort_unstable();
        idents.dedup();
        assert_eq!(idents.len(), Code::ALL.len());
        assert_eq!(Code::HubSchemaCollision.ident(), "XC0001");
        assert_eq!(Code::UnknownExcludedResource.ident(), "XC0009");
        assert_eq!(Code::ZeroRetryTightLink.ident(), "XC0010");
        assert_eq!(
            Code::ZeroRetryTightLink.default_severity(),
            Severity::Warning
        );
        assert_eq!(Code::OversizedAggregationPool.ident(), "XC0011");
        assert_eq!(
            Code::OversizedAggregationPool.default_severity(),
            Severity::Warning
        );
        assert_eq!(Code::GatewayPoolExceedsAggregation.ident(), "XC0012");
        assert_eq!(
            Code::GatewayPoolExceedsAggregation.default_severity(),
            Severity::Warning
        );
        assert_eq!(Code::AlertRuleInvalid.ident(), "XC0013");
        assert_eq!(Code::AlertRuleInvalid.default_severity(), Severity::Error);
        assert_eq!(Code::StorageConfigInvalid.ident(), "XC0014");
        assert_eq!(
            Code::StorageConfigInvalid.default_severity(),
            Severity::Error
        );
        assert_eq!(Code::PagingConfigInvalid.ident(), "XC0015");
        assert_eq!(
            Code::PagingConfigInvalid.default_severity(),
            Severity::Error
        );
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn span_renders_named_parts() {
        let span = Span::satellite("x").in_schema("inst_x").at_table("jobfact");
        assert_eq!(span.to_string(), "satellite:x schema:inst_x table:jobfact");
        assert_eq!(Span::federation().to_string(), "federation");
    }

    #[test]
    fn text_rendering_includes_code_and_help() {
        let d = Diagnostic::new(
            Code::HubSchemaCollision,
            Span::satellite("y"),
            "collides with x",
        )
        .with_help("rename one satellite");
        let text = d.render_text();
        assert!(text.contains("error[XC0001]"));
        assert!(text.contains("satellite:y"));
        assert!(text.contains("help: rename one satellite"));
    }

    #[test]
    fn json_rendering_is_parseable() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::new(
            Code::MissingSuFactor,
            Span::satellite("x").at_table("jobfact"),
            "resource \"rush\" has no factor",
        ));
        let json = diags.render_json();
        let value = crate::json::parse(&json).expect("valid json");
        let list = value.get("diagnostics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(
            list[0].get("code").and_then(|v| v.as_str()),
            Some("XC0001").filter(|_| false).or(Some("XC0008"))
        );
        assert_eq!(value.get("warnings").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn gate_logic_counts_errors() {
        let mut diags = Diagnostics::new();
        assert!(!diags.has_errors());
        diags.push(Diagnostic::new(
            Code::MissingSuFactor,
            Span::federation(),
            "warn only",
        ));
        assert!(!diags.has_errors());
        diags.push(Diagnostic::new(
            Code::SchemaDrift,
            Span::federation(),
            "boom",
        ));
        assert!(diags.has_errors());
        assert!(diags.render_text().contains("1 error(s), 1 warning(s)"));
    }
}

//! A minimal JSON reader/escaper so the analyzer stays std-only.
//!
//! The workspace proper uses `serde_json`; this crate deliberately does
//! not, so that `xdmod-check` can be compiled and run anywhere a bare
//! `rustc` exists (pre-flight tooling must not depend on the system it
//! validates). The subset implemented is exactly what federation check
//! configs need: objects, arrays, strings (with escapes), numbers,
//! booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64; configs carry no 64-bit ids).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an array of strings under `key`, empty when absent.
    pub fn string_list(&self, key: &str) -> Vec<String> {
        self.get(key)
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Escape a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for config
                            // files; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // form valid UTF-8; advance by the char's length).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"hub": "h", "n": -2.5e1, "ok": true, "none": null,
               "list": [1, "two", {"three": 3}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("hub").and_then(JsonValue::as_str), Some("h"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-25.0));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let list = v.get("list").and_then(JsonValue::as_array).unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[2].get("three").and_then(JsonValue::as_f64), Some(3.0));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" slash \\ newline \n tab \t unicode é";
        let escaped = escape(original);
        assert_eq!(parse(&escaped).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn string_list_helper() {
        let v = parse(r#"{"xs": ["a", "b"], "mixed": ["a", 1]}"#).unwrap();
        assert_eq!(v.string_list("xs"), vec!["a", "b"]);
        assert_eq!(v.string_list("mixed"), vec!["a"]); // non-strings skipped
        assert!(v.string_list("missing").is_empty());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
    }
}

//! # xdmod-check
//!
//! Static pre-flight analysis for federated XDMoD topologies.
//!
//! The federation's moving parts — Tungsten-style rename-on-transfer,
//! selective table filters, fan-in into one hub (§II-C1, §II-C4) — are
//! all configured, and in the reproduction all fail *silently at
//! runtime*: a filter that drops a table a registered aggregate needs
//! just yields empty hub reports. This crate validates the configuration
//! **before any data moves**, in the spirit of Graywulf's and the EDSP
//! paper's schema/contract validation for federated warehouses.
//!
//! Three layers:
//!
//! - [`diag`] — the diagnostics engine: stable codes (`XC0001..`),
//!   severities, structured spans, text + JSON rendering;
//! - [`model`] — the analyzable projection of a federation, buildable
//!   from live instances (via `xdmod-core`) or from a JSON config file;
//! - [`analyzer`] — the checks themselves; [`analyze`] runs them all.
//!
//! The crate is **std-only by design**: pre-flight tooling must not
//! depend on the system it validates, and must build anywhere a bare
//! `rustc` exists. (`xdmod-core` depends on this crate, never the other
//! way around.) The companion `xdmod-check` binary runs the analyzer
//! over JSON topology files — see `examples/configs/`.

#![warn(missing_docs)]

pub mod analyzer;
pub mod diag;
pub mod json;
pub mod model;

pub use analyzer::analyze;
pub use diag::{Code, Diagnostic, Diagnostics, Severity, Span};
pub use model::{
    alert_families, AggregateModel, AggregationPoolModel, AlertRuleModel, AlertsModel, ColumnModel,
    FederationModel, GatewayModel, GroupByModel, LinkModel, ModelError, SatelliteModel, TableModel,
    DEFAULT_ALERT_DEBOUNCE_MS, DEFAULT_ALERT_RESOLVE_TIMEOUT_MS,
};

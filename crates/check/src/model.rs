//! The analyzable projection of a federation.
//!
//! A [`FederationModel`] is everything the pre-flight analyzer needs to
//! know about a federation **without running replication**: the hub, the
//! per-satellite link topology and filters, the satellites' table
//! catalogs, the hub's registered aggregation pipelines, and the group-by
//! query surface of the hub's canned reports.
//!
//! Two producers build it:
//!
//! - `xdmod-core`'s `Federation::check_model()`, from live instances
//!   (join-time state plus warehouse catalog introspection);
//! - [`FederationModel::from_json`], from a declarative config file, so
//!   `xdmod-check` can vet a topology before any instance exists.

use crate::json::JsonValue;

/// One column of a table, in the analyzer's type vocabulary. Types are
/// carried as lower-case strings (`"int"`, `"float"`, `"str"`, `"time"`,
/// ...) so the model does not depend on the warehouse crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnModel {
    /// Column name.
    pub name: String,
    /// Lower-case type name.
    pub ty: String,
    /// Whether nulls are accepted.
    pub nullable: bool,
}

/// One table of a satellite's source schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableModel {
    /// Table name.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<ColumnModel>,
}

impl TableModel {
    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnModel> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// One replication link, satellite → hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkModel {
    /// Link id (labels metrics; must be unique across the federation).
    pub id: String,
    /// Satellite-side source schema.
    pub source_schema: String,
    /// Hub-side schema the link renames into.
    pub hub_schema: String,
    /// Coupling mode (`"tight"` live replication / `"loose"` batched),
    /// when the producer knows it. `None` = unspecified.
    pub mode: Option<String>,
    /// Configured fast-retry attempts for the link's live worker.
    /// `None` = policy default; `Some(0)` disables retries, which the
    /// analyzer flags on tight links (`XC0010`).
    pub retries: Option<u64>,
}

/// One satellite member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatelliteModel {
    /// Member name.
    pub name: String,
    /// Its replication link.
    pub link: LinkModel,
    /// Tables the replication filter passes. `None` = no table
    /// selection (everything replicates).
    pub replicated_tables: Option<Vec<String>>,
    /// Tables the satellite's *declared realm selection* requires on the
    /// hub — the set registered aggregates and reports assume.
    pub expected_tables: Vec<String>,
    /// Resources excluded from replication (row routing).
    pub excluded_resources: Vec<String>,
    /// Catalog of the source schema.
    pub tables: Vec<TableModel>,
    /// Distinct resource names appearing in job records.
    pub job_resources: Vec<String>,
    /// Resources with a configured SU conversion factor.
    pub su_factors: Vec<String>,
}

impl SatelliteModel {
    /// Whether the filter lets `table` cross the link.
    pub fn replicates(&self, table: &str) -> bool {
        match &self.replicated_tables {
            None => true,
            Some(list) => list.iter().any(|t| t == table),
        }
    }

    /// Find a table in the source catalog.
    pub fn table(&self, name: &str) -> Option<&TableModel> {
        self.tables.iter().find(|t| t.name == name)
    }
}

/// One registered hub aggregation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateModel {
    /// Pipeline name (e.g. the realm).
    pub name: String,
    /// Fact table it reads.
    pub fact_table: String,
    /// Time column used for period binning.
    pub time_column: String,
    /// Source columns of its dimensions.
    pub dimensions: Vec<String>,
    /// Source columns of its measures (pure counts carry none).
    pub measures: Vec<String>,
}

/// The hub's aggregation worker-pool sizing, when the producer knows it.
///
/// Mirrors `xdmod_warehouse::PoolConfig`: `workers` scoped threads fold
/// day-bucket `shards` partitions. `None` fields mean "unspecified";
/// the analyzer only reasons about values actually configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregationPoolModel {
    /// Configured worker threads.
    pub workers: Option<u64>,
    /// Configured day-bucket shard count.
    pub shards: Option<u64>,
}

/// The serving tier's worker-pool sizing, when the producer knows it.
///
/// Mirrors `xdmod_gateway::GatewayConfig`: `workers` request threads
/// drain the gateway's bounded accept queue. `None` means "unspecified";
/// the analyzer only reasons about values actually configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayModel {
    /// Configured HTTP request worker threads.
    pub workers: Option<u64>,
}

/// One alert rule, as configured.
///
/// Mirrors `xdmod_alerts::AlertRule`, but carries only the fields the
/// analyzer reasons about. `None` fields mean "family default" — the
/// analyzer substitutes the mirrored default windows before comparing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRuleModel {
    /// Alert family the rule applies to.
    pub family: String,
    /// Flap-damping window (`None` = default).
    pub debounce_ms: Option<u64>,
    /// Auto-resolve timeout (`None` = default).
    pub resolve_timeout_ms: Option<u64>,
}

/// The alert engine's configuration, when the producer knows it.
///
/// Mirrors `xdmod_alerts::AlertRules`: a per-family rule table plus the
/// notification token-bucket sizing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlertsModel {
    /// Notification bucket burst capacity (`None` = unspecified).
    pub notify_capacity: Option<u64>,
    /// Notification bucket refill per second (`None` = unspecified).
    pub notify_refill_per_sec: Option<u64>,
    /// Configured rules.
    pub rules: Vec<AlertRuleModel>,
}

/// The alert families any producer in the workspace emits. Mirrors
/// `xdmod_alerts::FAMILIES` (the analyzer is std-only by design, so the
/// list is duplicated here as data; `alert_families_in_sync` in the core
/// crate's tests pins the two against each other).
pub fn alert_families() -> &'static [&'static str] {
    &[
        "gateway_saturation",
        "link_down",
        "preflight_refused",
        "quarantine",
        "replication_lag",
    ]
}

/// Default flap-damping window, mirroring
/// `xdmod_alerts::DEFAULT_DEBOUNCE_MS` (pinned by the same sync test as
/// [`alert_families`]).
pub const DEFAULT_ALERT_DEBOUNCE_MS: u64 = 5_000;

/// Default auto-resolve timeout, mirroring
/// `xdmod_alerts::DEFAULT_RESOLVE_TIMEOUT_MS`.
pub const DEFAULT_ALERT_RESOLVE_TIMEOUT_MS: u64 = 30_000;

/// The hub's durable-storage configuration, when the producer knows it.
///
/// Mirrors `xdmod_core::config::StorageEntry`: a backend selector plus
/// the disk backend's directory / segment sizing / snapshot cadence.
/// `None` fields mean "unspecified"; the analyzer only reasons about
/// values actually configured.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageModel {
    /// Backend selector (`"memory"` or `"disk"`); `None` = unspecified.
    pub backend: Option<String>,
    /// Disk backend directory.
    pub dir: Option<String>,
    /// Maximum binlog segment size, in KiB.
    pub segment_max_kb: Option<u64>,
    /// Auto-snapshot (and compact) every N binlog records.
    pub snapshot_every_records: Option<u64>,
    /// Whether segment appends fsync.
    pub fsync: Option<bool>,
    /// Cold-shard paging stanza (`storage.paging`), when present.
    pub paging: Option<PagingModel>,
}

/// Budgets at or above this many MiB are treated as "unbounded": the
/// residency manager would never evict, so paging is pure bookkeeping
/// overhead. 1 TiB — far past any real working-set budget.
pub const PAGING_UNBOUNDED_BUDGET_MB: u64 = 1 << 20;

/// The `storage.paging` stanza: a working-set byte budget for the hub's
/// fact tables, with cold day-bucket shards spilled to disk and faulted
/// back in on demand.
///
/// Mirrors `xdmod_core::config::PagingEntry`. `None` fields mean
/// "unspecified, runtime default applies"; the analyzer only reasons
/// about values actually configured.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PagingModel {
    /// Working-set budget in MiB.
    pub budget_mb: Option<u64>,
    /// Day-bucket pages per fact table.
    pub pages_per_table: Option<u64>,
    /// Spill directory override.
    pub spill_dir: Option<String>,
    /// Whether spill writes fsync.
    pub fsync: Option<bool>,
}

/// One group-by query the hub's canned reports issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByModel {
    /// Query/report section name.
    pub name: String,
    /// Fact table it reads (per satellite schema, then unioned).
    pub fact_table: String,
    /// Grouping columns.
    pub columns: Vec<String>,
}

/// The whole analyzable federation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationModel {
    /// Hub name.
    pub hub: String,
    /// Member satellites.
    pub satellites: Vec<SatelliteModel>,
    /// Registered aggregation pipelines.
    pub aggregates: Vec<AggregateModel>,
    /// Hub group-by query surface.
    pub group_bys: Vec<GroupByModel>,
    /// Aggregation pool sizing (`None` = unspecified).
    pub aggregation: Option<AggregationPoolModel>,
    /// Serving-tier (gateway) pool sizing (`None` = no gateway).
    pub gateway: Option<GatewayModel>,
    /// Alert engine configuration (`None` = engine defaults, always
    /// valid).
    pub alerts: Option<AlertsModel>,
    /// Durable-storage configuration (`None` = default memory backend,
    /// always valid).
    pub storage: Option<StorageModel>,
}

/// Sanitize a name the way the workspace's schema conventions do:
/// `-` and `.` become `_`.
pub fn sanitize(name: &str) -> String {
    name.replace(['-', '.'], "_")
}

/// Default satellite-side schema for an instance name (`xdmod_<name>`),
/// mirroring `XdmodInstance::schema_name_of`.
pub fn default_source_schema(name: &str) -> String {
    format!("xdmod_{}", sanitize(name))
}

/// Default hub-side schema for an instance name (`inst_<name>`),
/// mirroring `FederationHub::schema_for`.
pub fn default_hub_schema(name: &str) -> String {
    format!("inst_{}", sanitize(name))
}

/// The tables a declared realm requires on the hub. Mirrors the realm
/// constants in `xdmod-realms` (the analyzer is std-only by design, so
/// the mapping is duplicated here as data; `realm_tables_in_sync` in the
/// core crate's tests pins the two against each other).
pub fn realm_tables(realm: &str) -> Option<&'static [&'static str]> {
    match realm.to_ascii_lowercase().as_str() {
        "jobs" => Some(&["jobfact"]),
        "supremm" => Some(&["supremm_jobfact", "supremm_timeseries", "supremm_jobscript"]),
        "storage" => Some(&["storagefact"]),
        "cloud" => Some(&["cloudfact", "cloud_reservation"]),
        _ => None,
    }
}

/// A config-file loading failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError(pub String);

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ModelError {}

fn required_str(v: &JsonValue, key: &str, ctx: &str) -> Result<String, ModelError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ModelError(format!("{ctx}: missing string field \"{key}\"")))
}

fn opt_str(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(JsonValue::as_str).map(str::to_owned)
}

impl FederationModel {
    /// Load from the `xdmod-check` JSON config format. See
    /// `examples/configs/` for worked documents. Unknown realm names and
    /// structurally missing fields are errors; everything else defaults
    /// to the workspace conventions.
    pub fn from_json(text: &str) -> Result<Self, ModelError> {
        let doc = crate::json::parse(text)
            .map_err(|e| ModelError(format!("config is not valid JSON: {e}")))?;
        let hub = required_str(&doc, "hub", "config")?;

        let mut satellites = Vec::new();
        if let Some(list) = doc.get("satellites").and_then(JsonValue::as_array) {
            for entry in list {
                satellites.push(Self::satellite_from_json(entry)?);
            }
        }

        let mut aggregates = Vec::new();
        if let Some(list) = doc.get("aggregates").and_then(JsonValue::as_array) {
            for entry in list {
                let name = required_str(entry, "name", "aggregate")?;
                aggregates.push(AggregateModel {
                    fact_table: required_str(entry, "fact_table", &format!("aggregate {name}"))?,
                    time_column: opt_str(entry, "time_column")
                        .unwrap_or_else(|| "end_time".to_owned()),
                    dimensions: entry.string_list("dimensions"),
                    measures: entry.string_list("measures"),
                    name,
                });
            }
        }

        let mut group_bys = Vec::new();
        if let Some(list) = doc.get("group_bys").and_then(JsonValue::as_array) {
            for entry in list {
                let name = required_str(entry, "name", "group_by")?;
                group_bys.push(GroupByModel {
                    fact_table: required_str(entry, "fact_table", &format!("group_by {name}"))?,
                    columns: entry.string_list("columns"),
                    name,
                });
            }
        }

        let aggregation = doc.get("aggregation").map(|entry| AggregationPoolModel {
            workers: entry
                .get("workers")
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64),
            shards: entry
                .get("shards")
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64),
        });

        let gateway = doc.get("gateway").map(|entry| GatewayModel {
            workers: entry
                .get("workers")
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64),
        });

        let alerts = doc.get("alerts").map(|entry| {
            let rules = entry
                .get("rules")
                .and_then(JsonValue::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|rule| {
                            Some(AlertRuleModel {
                                family: rule.get("family")?.as_str()?.to_owned(),
                                debounce_ms: rule
                                    .get("debounce_ms")
                                    .and_then(JsonValue::as_f64)
                                    .map(|v| v as u64),
                                resolve_timeout_ms: rule
                                    .get("resolve_timeout_ms")
                                    .and_then(JsonValue::as_f64)
                                    .map(|v| v as u64),
                            })
                        })
                        .collect()
                })
                .unwrap_or_default();
            AlertsModel {
                notify_capacity: entry
                    .get("notify_capacity")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
                notify_refill_per_sec: entry
                    .get("notify_refill_per_sec")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
                rules,
            }
        });

        let storage = doc.get("storage").map(|entry| StorageModel {
            backend: opt_str(entry, "backend").map(|b| b.to_ascii_lowercase()),
            dir: opt_str(entry, "dir"),
            segment_max_kb: entry
                .get("segment_max_kb")
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64),
            snapshot_every_records: entry
                .get("snapshot_every_records")
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64),
            fsync: entry.get("fsync").and_then(JsonValue::as_bool),
            paging: entry.get("paging").map(|p| PagingModel {
                budget_mb: p
                    .get("budget_mb")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
                pages_per_table: p
                    .get("pages_per_table")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
                spill_dir: opt_str(p, "spill_dir"),
                fsync: p.get("fsync").and_then(JsonValue::as_bool),
            }),
        });

        Ok(FederationModel {
            hub,
            satellites,
            aggregates,
            group_bys,
            aggregation,
            gateway,
            alerts,
            storage,
        })
    }

    fn satellite_from_json(entry: &JsonValue) -> Result<SatelliteModel, ModelError> {
        let name = required_str(entry, "name", "satellite")?;
        let ctx = format!("satellite {name}");

        let mut expected_tables: Vec<String> = Vec::new();
        for realm in entry.string_list("realms") {
            let tables = realm_tables(&realm)
                .ok_or_else(|| ModelError(format!("{ctx}: unknown realm \"{realm}\"")))?;
            expected_tables.extend(tables.iter().map(|t| (*t).to_owned()));
        }
        // Explicit expected_tables add to (or replace) the realm-derived
        // list, for configs that track custom tables.
        expected_tables.extend(entry.string_list("expected_tables"));
        expected_tables.sort_unstable();
        expected_tables.dedup();

        let replicated_tables = entry
            .get("replicated_tables")
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_owned)
                    .collect::<Vec<_>>()
            });

        let mut tables = Vec::new();
        if let Some(list) = entry.get("tables").and_then(JsonValue::as_array) {
            for table in list {
                let table_name = required_str(table, "name", &ctx)?;
                let mut columns = Vec::new();
                if let Some(cols) = table.get("columns").and_then(JsonValue::as_array) {
                    for col in cols {
                        columns.push(ColumnModel {
                            name: required_str(col, "name", &format!("{ctx} table {table_name}"))?,
                            ty: opt_str(col, "type")
                                .unwrap_or_else(|| "str".to_owned())
                                .to_ascii_lowercase(),
                            nullable: col
                                .get("nullable")
                                .and_then(JsonValue::as_bool)
                                .unwrap_or(false),
                        });
                    }
                }
                tables.push(TableModel {
                    name: table_name,
                    columns,
                });
            }
        }

        Ok(SatelliteModel {
            link: LinkModel {
                id: opt_str(entry, "link_id").unwrap_or_else(|| name.clone()),
                source_schema: opt_str(entry, "source_schema")
                    .unwrap_or_else(|| default_source_schema(&name)),
                hub_schema: opt_str(entry, "hub_schema")
                    .unwrap_or_else(|| default_hub_schema(&name)),
                mode: opt_str(entry, "mode").map(|m| m.to_ascii_lowercase()),
                retries: entry
                    .get("retries")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
            },
            replicated_tables,
            expected_tables,
            excluded_resources: entry.string_list("excluded_resources"),
            tables,
            job_resources: entry.string_list("job_resources"),
            su_factors: entry.string_list("su_factors"),
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "hub": "hub",
        "satellites": [
            {"name": "site-a", "realms": ["jobs"]}
        ]
    }"#;

    #[test]
    fn minimal_config_fills_defaults() {
        let m = FederationModel::from_json(MINIMAL).unwrap();
        assert_eq!(m.hub, "hub");
        assert_eq!(m.aggregation, None);
        assert_eq!(m.gateway, None);
        let s = &m.satellites[0];
        assert_eq!(s.link.id, "site-a");
        assert_eq!(s.link.source_schema, "xdmod_site_a");
        assert_eq!(s.link.hub_schema, "inst_site_a");
        assert_eq!(s.link.mode, None);
        assert_eq!(s.link.retries, None);
        assert_eq!(s.expected_tables, vec!["jobfact"]);
        assert_eq!(s.replicated_tables, None);
        assert!(s.replicates("anything"));
    }

    #[test]
    fn full_satellite_round_trip() {
        let m = FederationModel::from_json(
            r#"{
            "hub": "h",
            "satellites": [{
                "name": "x",
                "link_id": "link-x",
                "source_schema": "src",
                "hub_schema": "dst",
                "mode": "Tight",
                "retries": 0,
                "realms": ["jobs", "supremm"],
                "replicated_tables": ["jobfact"],
                "excluded_resources": ["secret"],
                "job_resources": ["open", "secret"],
                "su_factors": ["open"],
                "tables": [{
                    "name": "jobfact",
                    "columns": [
                        {"name": "resource", "type": "Str"},
                        {"name": "cpu_hours", "type": "float", "nullable": true}
                    ]
                }]
            }],
            "aggregates": [{
                "name": "jobs", "fact_table": "jobfact",
                "time_column": "end_time",
                "dimensions": ["resource"], "measures": ["cpu_hours"]
            }],
            "group_bys": [{
                "name": "usage", "fact_table": "jobfact", "columns": ["resource"]
            }]
        }"#,
        )
        .unwrap();
        let s = &m.satellites[0];
        assert_eq!(s.link.id, "link-x");
        assert_eq!(s.link.mode.as_deref(), Some("tight"));
        assert_eq!(s.link.retries, Some(0));
        assert!(s.replicates("jobfact"));
        assert!(!s.replicates("supremm_jobfact"));
        assert!(s.expected_tables.contains(&"supremm_timeseries".to_owned()));
        let t = s.table("jobfact").unwrap();
        assert_eq!(t.column("resource").unwrap().ty, "str");
        assert!(t.column("cpu_hours").unwrap().nullable);
        assert_eq!(m.aggregates[0].measures, vec!["cpu_hours"]);
        assert_eq!(m.group_bys[0].columns, vec!["resource"]);
    }

    #[test]
    fn aggregation_pool_parses_partial_fields() {
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [], "aggregation": {"workers": 16}}"#,
        )
        .unwrap();
        assert_eq!(
            m.aggregation,
            Some(AggregationPoolModel {
                workers: Some(16),
                shards: None
            })
        );
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [],
                "aggregation": {"workers": 16, "shards": 4}}"#,
        )
        .unwrap();
        assert_eq!(
            m.aggregation,
            Some(AggregationPoolModel {
                workers: Some(16),
                shards: Some(4)
            })
        );
    }

    #[test]
    fn gateway_pool_parses() {
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [], "gateway": {"workers": 8}}"#,
        )
        .unwrap();
        assert_eq!(m.gateway, Some(GatewayModel { workers: Some(8) }));
        // An empty gateway object is "present but unsized".
        let m =
            FederationModel::from_json(r#"{"hub": "h", "satellites": [], "gateway": {}}"#).unwrap();
        assert_eq!(m.gateway, Some(GatewayModel { workers: None }));
    }

    #[test]
    fn alerts_section_parses() {
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [],
                "alerts": {
                    "notify_capacity": 0,
                    "rules": [
                        {"family": "link_down", "debounce_ms": 10000},
                        {"family": "replication_lag", "resolve_timeout_ms": 4000}
                    ]
                }}"#,
        )
        .unwrap();
        let alerts = m.alerts.unwrap();
        assert_eq!(alerts.notify_capacity, Some(0));
        assert_eq!(alerts.notify_refill_per_sec, None);
        assert_eq!(alerts.rules.len(), 2);
        assert_eq!(alerts.rules[0].family, "link_down");
        assert_eq!(alerts.rules[0].debounce_ms, Some(10_000));
        assert_eq!(alerts.rules[0].resolve_timeout_ms, None);
        assert_eq!(alerts.rules[1].resolve_timeout_ms, Some(4_000));
        // Absent section stays None.
        let m = FederationModel::from_json(MINIMAL).unwrap();
        assert_eq!(m.alerts, None);
    }

    #[test]
    fn storage_section_parses() {
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [],
                "storage": {
                    "backend": "Disk",
                    "dir": "/var/lib/xdmod/wal",
                    "segment_max_kb": 1024,
                    "snapshot_every_records": 5000,
                    "fsync": false
                }}"#,
        )
        .unwrap();
        let storage = m.storage.unwrap();
        assert_eq!(storage.backend.as_deref(), Some("disk"));
        assert_eq!(storage.dir.as_deref(), Some("/var/lib/xdmod/wal"));
        assert_eq!(storage.segment_max_kb, Some(1024));
        assert_eq!(storage.snapshot_every_records, Some(5000));
        assert_eq!(storage.fsync, Some(false));
        assert_eq!(storage.paging, None);
        // A paging stanza parses field-for-field.
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [], "storage": {
                "backend": "disk", "dir": "/wal",
                "paging": {"budget_mb": 64, "pages_per_table": 8,
                           "spill_dir": "/wal/paging", "fsync": true}}}"#,
        )
        .unwrap();
        let paging = m.storage.unwrap().paging.unwrap();
        assert_eq!(paging.budget_mb, Some(64));
        assert_eq!(paging.pages_per_table, Some(8));
        assert_eq!(paging.spill_dir.as_deref(), Some("/wal/paging"));
        assert_eq!(paging.fsync, Some(true));
        // An empty paging object is "present but unspecified".
        let m = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [], "storage": {"backend": "disk", "dir": "/wal", "paging": {}}}"#,
        )
        .unwrap();
        assert_eq!(m.storage.unwrap().paging, Some(PagingModel::default()));
        // An empty storage object is "present but unspecified".
        let m =
            FederationModel::from_json(r#"{"hub": "h", "satellites": [], "storage": {}}"#).unwrap();
        assert_eq!(m.storage, Some(StorageModel::default()));
        // Absent section stays None.
        let m = FederationModel::from_json(MINIMAL).unwrap();
        assert_eq!(m.storage, None);
    }

    #[test]
    fn alert_family_mirror_is_sorted_and_plausible() {
        let families = alert_families();
        let mut sorted = families.to_vec();
        sorted.sort_unstable();
        assert_eq!(families, &sorted[..]);
        assert!(families.contains(&"link_down"));
        assert!(DEFAULT_ALERT_RESOLVE_TIMEOUT_MS > DEFAULT_ALERT_DEBOUNCE_MS);
    }

    #[test]
    fn unknown_realm_is_an_error() {
        let err = FederationModel::from_json(
            r#"{"hub": "h", "satellites": [{"name": "x", "realms": ["quantum"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("quantum"));
    }

    #[test]
    fn missing_hub_is_an_error() {
        assert!(FederationModel::from_json(r#"{"satellites": []}"#).is_err());
        assert!(FederationModel::from_json("not json").is_err());
    }

    #[test]
    fn realm_table_mapping_covers_all_realms() {
        for realm in ["jobs", "supremm", "storage", "cloud", "Jobs"] {
            assert!(realm_tables(realm).is_some(), "realm {realm}");
        }
        assert!(realm_tables("nope").is_none());
    }

    #[test]
    fn schema_defaults_sanitize_like_the_workspace() {
        assert_eq!(default_source_schema("ccr-x.y"), "xdmod_ccr_x_y");
        assert_eq!(default_hub_schema("ccr-x.y"), "inst_ccr_x_y");
    }
}

//! Table-driven fixture tests: one known-bad topology config per
//! diagnostic code (asserting the code fires and the span names the
//! offender), plus a clean config asserting zero diagnostics. Every
//! fixture goes through the full stack — JSON text → model → analyzer —
//! the same path the `xdmod-check` binary drives.

use xdmod_check::{analyze, Code, Diagnostics, FederationModel, Severity};

fn run(config: &str) -> Diagnostics {
    let model = FederationModel::from_json(config).expect("fixture config parses");
    analyze(&model)
}

/// A satellite entry with a full jobfact catalog, splice-customized per
/// fixture via the `extra` field (must start with "," when non-empty).
fn satellite(name: &str, extra: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "realms": ["jobs"],
            "replicated_tables": ["jobfact"],
            "job_resources": ["res-{name}"],
            "su_factors": ["res-{name}"],
            "tables": [{{
                "name": "jobfact",
                "columns": [
                    {{"name": "resource", "type": "str"}},
                    {{"name": "queue", "type": "str"}},
                    {{"name": "end_time", "type": "time"}},
                    {{"name": "cpu_hours", "type": "float"}}
                ]
            }}]
            {extra}
        }}"#
    )
}

fn config(satellites: &[String]) -> String {
    format!(
        r#"{{
            "hub": "hub",
            "satellites": [{}],
            "aggregates": [{{
                "name": "jobs",
                "fact_table": "jobfact",
                "time_column": "end_time",
                "dimensions": ["resource", "queue"],
                "measures": ["cpu_hours"]
            }}],
            "group_bys": [{{
                "name": "usage by resource",
                "fact_table": "jobfact",
                "columns": ["resource"]
            }}]
        }}"#,
        satellites.join(",")
    )
}

struct Fixture {
    /// The code this fixture must produce (and the clean config must not).
    code: Code,
    /// Full config document.
    config: String,
    /// Substring the offending diagnostic's span must render to.
    span_contains: &'static str,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        // XC0001: distinct names, same sanitized hub schema.
        Fixture {
            code: Code::HubSchemaCollision,
            config: config(&[satellite("site-a", ""), satellite("site.a", "")]),
            span_contains: "schema:inst_site_a",
        },
        // XC0002: link renames into its own source schema.
        Fixture {
            code: Code::SelfReplication,
            config: config(&[satellite(
                "a",
                r#", "source_schema": "xdmod_a", "hub_schema": "xdmod_a""#,
            )]),
            span_contains: "satellite:a",
        },
        // XC0003: two links share an id.
        Fixture {
            code: Code::DuplicateLinkId,
            config: config(&[
                satellite("a", r#", "link_id": "shared""#),
                satellite("b", r#", "link_id": "shared""#),
            ]),
            span_contains: "satellite:b",
        },
        // XC0004: declares jobs, but the filter passes nothing.
        Fixture {
            code: Code::FilteredRequiredTable,
            config: config(&[satellite("a", r#", "replicated_tables": []"#)
                .replace(r#""replicated_tables": ["jobfact"],"#, "")]),
            span_contains: "table:jobfact",
        },
        // XC0005: the hub group-by reads a table nobody replicates.
        Fixture {
            code: Code::GroupByFactTableUnreplicated,
            config: config(&[satellite("a", "")
                .replace(r#""realms": ["jobs"]"#, r#""realms": []"#)
                .replace(
                    r#""replicated_tables": ["jobfact"]"#,
                    r#""replicated_tables": ["storagefact"]"#,
                )]),
            span_contains: "table:jobfact",
        },
        // XC0006: cpu_hours is float on a, int on b.
        Fixture {
            code: Code::SchemaDrift,
            config: config(&[
                satellite("a", ""),
                satellite("b", "").replace(
                    r#"{"name": "cpu_hours", "type": "float"}"#,
                    r#"{"name": "cpu_hours", "type": "int"}"#,
                ),
            ]),
            span_contains: "column:cpu_hours",
        },
        // XC0007: the group-by names a column jobfact does not have.
        Fixture {
            code: Code::DanglingDimension,
            config: config(&[satellite("a", "")])
                .replace(r#""columns": ["resource"]"#, r#""columns": ["resoruce"]"#),
            span_contains: "column:resoruce",
        },
        // XC0008: job records on res-a, but no SU factor for it.
        Fixture {
            code: Code::MissingSuFactor,
            config: config(&[satellite("a", "").replace(r#""su_factors": ["res-a"],"#, "")]),
            span_contains: "column:res-a",
        },
        // XC0009: exclusion names a resource with no job records.
        Fixture {
            code: Code::UnknownExcludedResource,
            config: config(&[satellite(
                "a",
                r#", "excluded_resources": ["secert-cluster"]"#,
            )]),
            span_contains: "column:secert-cluster",
        },
        // XC0010: a live link with fast-retry explicitly disabled.
        Fixture {
            code: Code::ZeroRetryTightLink,
            config: config(&[satellite("a", r#", "mode": "tight", "retries": 0"#)]),
            span_contains: "satellite:a",
        },
        // XC0011: more aggregation workers than day-bucket shards.
        Fixture {
            code: Code::OversizedAggregationPool,
            config: config(&[satellite("a", "")]).replace(
                r#""hub": "hub","#,
                r#""hub": "hub", "aggregation": {"workers": 16, "shards": 4},"#,
            ),
            span_contains: "federation",
        },
        // XC0012: more gateway request workers than aggregation workers.
        Fixture {
            code: Code::GatewayPoolExceedsAggregation,
            config: config(&[satellite("a", "")]).replace(
                r#""hub": "hub","#,
                r#""hub": "hub",
                   "aggregation": {"workers": 4, "shards": 8},
                   "gateway": {"workers": 12},"#,
            ),
            span_contains: "federation",
        },
        // XC0013: alert rule for a family nobody emits, resolving inside
        // its own flap window, dispatching into a zero-capacity bucket.
        Fixture {
            code: Code::AlertRuleInvalid,
            config: config(&[satellite("a", "")]).replace(
                r#""hub": "hub","#,
                r#""hub": "hub",
                   "alerts": {
                       "notify_capacity": 0,
                       "rules": [
                           {"family": "disk_full"},
                           {"family": "link_down",
                            "debounce_ms": 10000, "resolve_timeout_ms": 10000}
                       ]
                   },"#,
            ),
            span_contains: "federation",
        },
        // XC0014: storage stanza that silently leaves the hub on the
        // memory backend (disk with no dir) and disables auto-snapshots.
        Fixture {
            code: Code::StorageConfigInvalid,
            config: config(&[satellite("a", "")]).replace(
                r#""hub": "hub","#,
                r#""hub": "hub",
                   "storage": {"backend": "disk", "snapshot_every_records": 0},"#,
            ),
            span_contains: "federation",
        },
    ]
}

#[test]
fn every_code_has_a_fixture() {
    let covered: Vec<Code> = fixtures().iter().map(|f| f.code).collect();
    for code in Code::ALL {
        assert!(covered.contains(&code), "no known-bad fixture for {code}");
    }
}

#[test]
fn known_bad_fixtures_produce_their_code_with_the_right_span() {
    for fixture in fixtures() {
        let diags = run(&fixture.config);
        let found = diags.with_code(fixture.code);
        assert!(
            !found.is_empty(),
            "{} fixture produced no {} diagnostic; got:\n{}",
            fixture.code,
            fixture.code,
            diags.render_text()
        );
        assert!(
            found
                .iter()
                .any(|d| d.span.to_string().contains(fixture.span_contains)),
            "{}: no span containing {:?}; spans: {:?}",
            fixture.code,
            fixture.span_contains,
            found.iter().map(|d| d.span.to_string()).collect::<Vec<_>>()
        );
        // Severity matches the code's contract.
        for d in found {
            assert_eq!(d.severity, fixture.code.default_severity());
        }
    }
}

#[test]
fn known_bad_fixtures_do_not_leak_unrelated_errors() {
    // Each bad fixture is minimal: it may cascade into related findings
    // (documented pairs below), but must not fire *error* codes outside
    // its cascade set.
    let allowed_cascades: &[(Code, &[Code])] = &[
        // Filtering everything out also starves the hub group-by.
        (
            Code::FilteredRequiredTable,
            &[Code::GroupByFactTableUnreplicated],
        ),
    ];
    for fixture in fixtures() {
        let diags = run(&fixture.config);
        let allowed: Vec<Code> = std::iter::once(fixture.code)
            .chain(
                allowed_cascades
                    .iter()
                    .filter(|(c, _)| *c == fixture.code)
                    .flat_map(|(_, extra)| extra.iter().copied()),
            )
            .collect();
        for d in diags.items() {
            if d.severity == Severity::Error {
                assert!(
                    allowed.contains(&d.code),
                    "{} fixture leaked unrelated error {}: {}",
                    fixture.code,
                    d.code,
                    d.message
                );
            }
        }
    }
}

#[test]
fn clean_config_produces_zero_diagnostics() {
    let diags = run(&config(&[satellite("a", ""), satellite("b", "")]));
    assert!(
        diags.is_empty(),
        "clean config produced:\n{}",
        diags.render_text()
    );
    assert!(!diags.has_errors());
    assert_eq!(diags.summary(), "0 error(s), 0 warning(s), 0 info");
}

#[test]
fn error_fixtures_gate_go_live_warnings_do_not() {
    for fixture in fixtures() {
        let diags = run(&fixture.config);
        match fixture.code.default_severity() {
            Severity::Error => assert!(diags.has_errors(), "{} should gate go_live", fixture.code),
            _ => assert!(
                !diags.has_errors(),
                "{} must not gate go_live; got:\n{}",
                fixture.code,
                diags.render_text()
            ),
        }
    }
}

#[test]
fn json_rendering_round_trips_through_the_parser() {
    for fixture in fixtures() {
        let diags = run(&fixture.config);
        let doc =
            xdmod_check::json::parse(&diags.render_json()).expect("render_json emits valid JSON");
        let items = doc
            .get("diagnostics")
            .and_then(|v| v.as_array())
            .expect("diagnostics array");
        assert_eq!(items.len(), diags.len());
        assert!(items.iter().any(|item| {
            item.get("code").and_then(|c| c.as_str()) == Some(fixture.code.ident())
        }));
    }
}

//! Gateway chaos soak: seeded accept/read faults against a live gateway
//! over a three-satellite federation.
//!
//! The CI `gateway-soak` job loops seeds through this test (via
//! `CHAOS_SEED`, same convention as the replication chaos soak). The
//! invariants under fault injection:
//!
//! 1. **Zero worker deaths** — every dropped connection, stalled read,
//!    or garbage request serializes into a status code or a closed
//!    socket, never a panic that kills a pool worker.
//! 2. **Monotonic request counters** — the telemetry totals only ever
//!    grow while traffic flows.
//! 3. The gateway still answers correctly after the fault budget is
//!    exhausted.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use xdmod::auth::{Role, User};
use xdmod::chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::gateway::{serve, GatewayConfig, SESSION_COOKIE};
use xdmod::sim::{ClusterSim, ResourceProfile};

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn satellite(name: &str, resource: &str, sim_seed: u64) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.0);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 48.0, 1.0), sim_seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=1))
        .unwrap();
    inst
}

/// Fire one raw exchange; chaos may reset the connection, so every
/// outcome short of a process panic is acceptable here.
fn try_exchange(addr: SocketAddr, raw: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split(' ').nth(1)?.parse().ok()?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Some((status, body))
}

fn get(addr: SocketAddr, target: &str, headers: &str) -> Option<(u16, String)> {
    try_exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: soak\r\n{headers}\r\n"),
    )
}

#[test]
fn seeded_connection_faults_never_kill_workers() {
    let x = satellite("sx", "res-x", 7);
    let y = satellite("sy", "res-y", 8);
    let z = satellite("sz", "res-z", 9);
    let mut fed = Federation::new(FederationHub::new("hub"));
    for inst in [&x, &y, &z] {
        fed.join_tight(inst, FederationConfig::default()).unwrap();
    }
    fed.sync().unwrap();
    fed.hub_mut().auth_mut().enroll(
        User::member("ops", "ops@hub", "hub").with_role(Role::CenterStaff),
        Some("pw"),
    );
    let fed = Arc::new(RwLock::new(fed));

    // Seeded fault schedule over both gateway fault points: dropped
    // connections and short stalls at accept, resets and stalls at read.
    let plan = FaultPlan::new()
        .with(
            FaultSpec::every(FaultPoint::Accept, FaultKind::Transient, 5)
                .for_target("gateway")
                .with_budget(12),
        )
        .with(
            FaultSpec::every(FaultPoint::Accept, FaultKind::Stall { millis: 5 }, 17)
                .for_target("gateway")
                .with_budget(4),
        )
        .with(
            FaultSpec::every(FaultPoint::SocketRead, FaultKind::Transient, 7)
                .for_target("gateway")
                .with_budget(10),
        )
        .with(
            FaultSpec::every(FaultPoint::SocketRead, FaultKind::Stall { millis: 5 }, 13)
                .for_target("gateway")
                .with_budget(4),
        );
    let injector = plan.injector(seed());

    let config = GatewayConfig::default()
        .with_workers(3)
        .with_rate_limit(10_000, 10_000)
        .with_read_timeout(Duration::from_secs(2));
    let handle = serve(Arc::clone(&fed), config, Some(injector.clone())).unwrap();
    let addr = handle.addr();

    // Mint the session directly on the hub: the soak measures serving
    // resilience, and a login exchange could itself be chaos-dropped.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64;
    let session = fed
        .write()
        .unwrap()
        .hub_mut()
        .auth_mut()
        .login_local("ops", "pw", now)
        .unwrap();
    let cookie_header = format!("Cookie: {SESSION_COOKIE}={}\r\n", session.cookie_value());

    let mut served = 0usize;
    let mut dropped = 0usize;
    let mut last_total = 0u64;
    for i in 0..120 {
        let outcome = match i % 5 {
            0 => get(addr, "/health", ""),
            1 => get(addr, "/realms", ""),
            2 => get(
                addr,
                "/query?realm=jobs&metric=job_count&dimension=resource&view=aggregate",
                &cookie_header,
            ),
            3 => get(addr, "/query?realm=bogus&metric=nope", &cookie_header),
            // Garbage on the wire: must close or 400, never panic.
            _ => try_exchange(addr, "THIS IS NOT HTTP\r\n\r\n"),
        };
        match outcome {
            Some((status, _)) => {
                served += 1;
                assert!(
                    matches!(status, 200 | 304 | 400 | 401 | 429 | 503),
                    "unexpected status {status} at iteration {i}"
                );
            }
            None => dropped += 1, // chaos reset the connection
        }
        // Request counters are monotonic under fault injection.
        if i % 30 == 29 {
            let total = handle
                .app()
                .telemetry()
                .snapshot()
                .counter_total("gateway_http_requests_total");
            assert!(
                total >= last_total,
                "counter went backwards: {last_total} -> {total}"
            );
            last_total = total;
        }
    }

    // The fault budgets are finite, so most traffic must have served
    // (the budgets sum to 30 across 120 requests, and stalls still
    // serve).
    assert!(served >= 60, "served {served}, dropped {dropped}");
    assert!(
        injector.op_count() > 0,
        "the schedule must actually have reached the gateway fault points"
    );

    // After the budgets drain, the gateway answers cleanly again.
    let (status, body) = get(addr, "/health", "").expect("post-chaos health");
    assert_eq!(status, 200, "{body}");

    assert_eq!(
        handle.worker_panics(),
        0,
        "chaos must never kill a worker thread"
    );
    let snapshot = handle.app().telemetry().snapshot();
    assert!(snapshot.counter_total("gateway_http_requests_total") > 0);
    assert!(snapshot.counter_total("gateway_connections_total") > 0);
    handle.shutdown();
}

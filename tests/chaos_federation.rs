//! End-to-end chaos: a three-satellite federation driven through a
//! seeded [`FaultPlan`] — transient transport faults, a corrupted binlog
//! tail, and one permanently dead link — must self-heal to checksum
//! consistency for the survivors, quarantine the dead member, and do
//! all of it **deterministically**: the same seed produces a
//! byte-identical fault schedule and identical hub contents on every
//! run.
//!
//! The seed is taken from `CHAOS_SEED` when set (the CI chaos-soak job
//! loops a fixed set of seeds through this test), defaulting to 42.

use xdmod::chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
use xdmod::core::{
    Federation, FederationConfig, FederationHub, MemberHealth, SupervisorPolicy, XdmodInstance,
};
use xdmod::replication::RetryPolicy;
use xdmod::sim::{ClusterSim, ResourceProfile};

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn satellite(name: &str, resource: &str, sim_seed: u64) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.0);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 48.0, 1.0), sim_seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2)).unwrap();
    inst
}

/// The scenario under test, as one deterministic function of the seed:
/// faults fire against x (transient bursts), y (tail corruption), and z
/// (permanent link loss) while the supervisor drives the federation.
/// Returns the artifacts the determinism assertion compares across
/// runs: the injector's fired-fault schedule and the hub's table
/// checksums.
fn run_scenario(seed: u64) -> (String, Vec<(String, u64)>) {
    // Fresh instances per run: injected binlog damage mutates the
    // source databases, so runs must not share them. Same sim seeds ⇒
    // identical starting data.
    let x = satellite("x", "res-x", 7);
    let y = satellite("y", "res-y", 8);
    let z = satellite("z", "res-z", 9);

    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_tight(&y, FederationConfig::default()).unwrap();
    fed.join_tight(&z, FederationConfig::default()).unwrap();

    let plan = FaultPlan::new()
        // x: a budgeted burst of transient faults on every other
        // transport op — each is absorbed by the tick's fast retries.
        .with(
            FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 2)
                .for_target("x")
                .with_budget(3),
        )
        // y: a crash corrupts the newest binlog frame mid-replication;
        // the link repairs the tail, then resyncs from the tables.
        .with(
            FaultSpec::at_ops(FaultPoint::Transport, FaultKind::CorruptTailByte, &[2])
                .for_target("y"),
        )
        // z: the link drops on its first op and never comes back.
        .with(
            FaultSpec::at_ops(FaultPoint::Transport, FaultKind::LinkDown, &[1]).for_target("z"),
        );
    let injector = plan.injector(seed);
    fed.inject_chaos(&injector);

    let policy = SupervisorPolicy::default()
        .with_max_failures(2)
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(4),
            deadline: None,
        });
    for _ in 0..4 {
        fed.supervise(&policy);
    }

    // The two survivors converged to checksum consistency; the dead
    // link was quarantined, not retried forever.
    assert!(fed.verify_member(&x).unwrap(), "x converged");
    assert!(fed.verify_member(&y).unwrap(), "y converged");
    assert_eq!(fed.quarantined_members(), vec!["z"]);

    // health() and the degraded-mode ops report say exactly that.
    let health: Vec<(String, MemberHealth)> = fed.health();
    assert_eq!(health.len(), 3);
    assert_eq!(health[0], ("x".to_owned(), MemberHealth::Live));
    assert_eq!(health[1], ("y".to_owned(), MemberHealth::Live));
    assert_eq!(health[2], ("z".to_owned(), MemberHealth::Quarantined));
    let report = fed.ops_report().unwrap().render();
    assert!(report.contains("Satellite health"), "report: {report}");
    assert!(report.contains("x: live"), "report: {report}");
    assert!(report.contains("y: live"), "report: {report}");
    assert!(report.contains("z: quarantined"), "report: {report}");

    // The quarantine decision reached the dashboard's counters too.
    assert_eq!(
        fed.hub()
            .telemetry()
            .snapshot()
            .counter("federation_quarantines_total", &[("link", "z")]),
        Some(1)
    );

    let hub_db = fed.hub().database();
    let hub = hub_db.read();
    let checksums = ["x", "y"]
        .iter()
        .map(|name| {
            let schema = FederationHub::schema_for(name);
            let sum = hub.table(&schema, "jobfact").unwrap().content_checksum();
            (schema, sum)
        })
        .collect();
    (injector.schedule_text(), checksums)
}

#[test]
fn seeded_chaos_run_converges_and_is_deterministic() {
    let seed = seed();
    let (schedule_a, sums_a) = run_scenario(seed);
    let (schedule_b, sums_b) = run_scenario(seed);
    // Same seed ⇒ byte-identical fault schedule and identical
    // post-recovery hub state.
    assert_eq!(schedule_a, schedule_b, "fault schedule must be reproducible");
    assert!(!schedule_a.is_empty(), "the plan must actually have fired");
    assert_eq!(sums_a, sums_b, "post-recovery hub state must be reproducible");
}

#[test]
fn transient_only_chaos_is_fully_absorbed_by_retries() {
    // A plan with nothing but budgeted transients must leave no visible
    // scar: no quarantine, no resync, every member live.
    let x = satellite("x", "res-x", 11);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    let plan = FaultPlan::new().with(
        FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 2)
            .for_target("x")
            .with_budget(2),
    );
    let injector = plan.injector(seed());
    fed.inject_chaos(&injector);

    let policy = SupervisorPolicy::default().with_retry(RetryPolicy {
        max_attempts: 2,
        base_backoff: std::time::Duration::from_millis(1),
        max_backoff: std::time::Duration::from_millis(4),
        deadline: None,
    });
    for _ in 0..4 {
        let tick = fed.supervise(&policy);
        assert!(tick.all_healthy(), "tick report: {tick}");
        assert!(!tick.members[0].resynced);
    }
    assert!(fed.quarantined_members().is_empty());
    assert!(fed.verify_member(&x).unwrap());
}

//! Differential-testing oracle for the partitioned parallel aggregation
//! engine.
//!
//! Every seed drives four independent evaluators over the same randomly
//! generated fact table and query:
//!
//! 1. the sharded engine with a multi-worker pool (`run_sharded`),
//! 2. the sharded engine forced serial (`PoolConfig::serial()`),
//! 3. the rayon path (`Query::run`),
//! 4. a brute-force `BTreeMap` recompute written against the *spec* of
//!    the query, sharing no code with the engine.
//!
//! All four must agree byte-for-byte. Generated values are dyadic
//! rationals (`n / 64.0`), so float sums are exact regardless of the
//! order partials merge in — any divergence is a real bug, not float
//! noise. On mismatch the harness greedily shrinks the table to a
//! minimal reproducing row set and panics with a replayable report.
//!
//! A fifth arm proves **incremental aggregation**: ingest-heavy seeded
//! schedules drive `Database::run_delta_fold` batch by batch, and after
//! every batch the delta-folded answer must be byte-identical to a full
//! sharded recompute and semantically equal to the brute-force oracle —
//! while the engine stays on the incremental path (any silent fallback
//! is itself a failure). Divergences shrink to a minimal reproducing
//! *ingest schedule*. When `INCR_ORACLE_REPORT` names a path, the sweep
//! writes a JSON report (including any shrunk reproducer) there for the
//! CI artifact.
//!
//! Run one seed with `DIFF_SEED=<n> cargo test --test
//! differential_aggregation`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use xdmod::chaos::DeterministicRng;
use xdmod::telemetry::MetricsRegistry;
use xdmod::warehouse::{
    run_sharded, shared, AggFn, Aggregate, CacheKey, CivilDate, ColumnType, Database, DeltaOutcome,
    DiskBackend, DiskOptions, FallbackReason, GroupKey, Period, PoolConfig, Predicate, Query, Row,
    SchemaBuilder, Table, Value,
};

/// Seeds swept by default; `DIFF_SEED` narrows the run to one seed.
const SEED_COUNT: u64 = 24;

/// Queries generated per seed.
const QUERIES_PER_SEED: usize = 6;

fn base_epoch() -> i64 {
    CivilDate::new(2017, 1, 1).to_epoch()
}

// ---------------------------------------------------------------------------
// Random workload generation
// ---------------------------------------------------------------------------

fn fact_schema() -> xdmod::warehouse::TableSchema {
    SchemaBuilder::new("fact")
        .required("resource", ColumnType::Str)
        .required("queue", ColumnType::Str)
        .nullable("cpu_hours", ColumnType::Float)
        .required("cores", ColumnType::Int)
        .nullable("end_time", ColumnType::Time)
        .build()
        .expect("oracle fact schema builds")
}

fn random_row(rng: &mut DeterministicRng) -> Row {
    let cpu = if rng.gen_range(0, 10) == 0 {
        Value::Null
    } else {
        // Dyadic: exact under f64 addition in any order.
        Value::Float(rng.gen_range(0, 4096) as f64 / 64.0)
    };
    let end = if rng.gen_range(0, 12) == 0 {
        Value::Null
    } else {
        Value::Time(
            base_epoch() + rng.gen_range(0, 120) as i64 * 86_400 + rng.gen_range(0, 86_400) as i64,
        )
    };
    vec![
        Value::Str(format!("res-{}", rng.gen_range(0, 4))),
        Value::Str(format!("q{}", rng.gen_range(0, 3))),
        cpu,
        Value::Int(rng.gen_range(1, 65) as i64),
        end,
    ]
}

fn random_table(rng: &mut DeterministicRng) -> Table {
    let mut table = Table::new(fact_schema());
    let n = rng.gen_range(0, 400) as usize;
    let rows = (0..n).map(|_| random_row(rng)).collect();
    table.insert_batch(rows).expect("generated rows fit schema");
    table
}

/// The aggregate functions the brute-force oracle reimplements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fun {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    CountDistinct,
}

/// A query described declaratively, so the brute-force evaluator can
/// interpret it without touching the engine's plan types.
#[derive(Clone, Debug)]
struct Spec {
    filters: Vec<Predicate>,
    group: Vec<GroupKey>,
    aggs: Vec<(Fun, Option<&'static str>)>,
}

impl Spec {
    fn random(rng: &mut DeterministicRng) -> Self {
        let mut group = Vec::new();
        if rng.gen_range(0, 2) == 1 {
            group.push(GroupKey::Column("resource".to_owned()));
        }
        if rng.gen_range(0, 3) == 0 {
            group.push(GroupKey::Column("queue".to_owned()));
        }
        if rng.gen_range(0, 2) == 1 {
            let period = match rng.gen_range(0, 3) {
                0 => Period::Day,
                1 => Period::Month,
                _ => Period::Quarter,
            };
            group.push(GroupKey::PeriodOf("end_time".to_owned(), period));
        }

        let mut filters = Vec::new();
        if rng.gen_range(0, 3) == 0 {
            filters.push(Predicate::Eq(
                "resource".to_owned(),
                Value::Str(format!("res-{}", rng.gen_range(0, 4))),
            ));
        }
        if rng.gen_range(0, 3) == 0 {
            let start = base_epoch() + rng.gen_range(0, 60) as i64 * 86_400;
            filters.push(Predicate::TimeRange {
                column: "end_time".to_owned(),
                start,
                end: start + rng.gen_range(1, 90) as i64 * 86_400,
            });
        }

        let mut aggs: Vec<(Fun, Option<&'static str>)> = vec![(Fun::Count, None)];
        for _ in 0..rng.gen_range(1, 4) {
            let fun = match rng.gen_range(0, 5) {
                0 => Fun::Sum,
                1 => Fun::Avg,
                2 => Fun::Min,
                3 => Fun::Max,
                _ => Fun::CountDistinct,
            };
            let col = if rng.gen_range(0, 4) == 0 {
                "cores"
            } else {
                "cpu_hours"
            };
            aggs.push((fun, Some(col)));
        }
        Spec {
            filters,
            group,
            aggs,
        }
    }

    fn query(&self) -> Query {
        let mut q = Query::new();
        for f in &self.filters {
            q = q.filter(f.clone());
        }
        for g in &self.group {
            q = q.group(g.clone());
        }
        for (i, (fun, col)) in self.aggs.iter().enumerate() {
            let alias = format!("a{i}");
            q = q.aggregate(match (fun, col) {
                (Fun::Count, _) => Aggregate::count(&alias),
                (Fun::Sum, Some(c)) => Aggregate::of(AggFn::Sum, c, &alias),
                (Fun::Avg, Some(c)) => Aggregate::of(AggFn::Avg, c, &alias),
                (Fun::Min, Some(c)) => Aggregate::of(AggFn::Min, c, &alias),
                (Fun::Max, Some(c)) => Aggregate::of(AggFn::Max, c, &alias),
                (Fun::CountDistinct, Some(c)) => Aggregate::of(AggFn::CountDistinct, c, &alias),
                _ => unreachable!("non-count aggregates always carry a column"),
            });
        }
        q
    }
}

// ---------------------------------------------------------------------------
// Brute-force evaluator (the independent oracle)
// ---------------------------------------------------------------------------

/// Straight-line reimplementation of grouped aggregation over raw rows.
/// Shares nothing with `AggPlan`: its own filter matching, its own key
/// extraction, its own accumulators over a `BTreeMap`.
fn brute_force(table: &Table, spec: &Spec) -> Vec<Row> {
    let schema = table.schema();
    let idx = |name: &str| {
        schema
            .column_index(name)
            .expect("oracle columns exist in the fact schema")
    };

    let passes = |row: &Row| {
        spec.filters.iter().all(|f| match f {
            Predicate::Eq(c, want) => &row[idx(c)] == want,
            Predicate::TimeRange { column, start, end } => match row[idx(column)].as_i64() {
                Some(t) => t >= *start && t < *end,
                None => false,
            },
            other => unreachable!("oracle never generates {other:?}"),
        })
    };

    let key_of = |row: &Row| -> Vec<Value> {
        spec.group
            .iter()
            .map(|g| match g {
                GroupKey::Column(c) => row[idx(c)].clone(),
                GroupKey::PeriodOf(c, period) => match row[idx(c)].as_i64() {
                    Some(t) => Value::Int(period.bucket_of(t)),
                    None => Value::Null,
                },
                other => unreachable!("oracle never generates {other:?}"),
            })
            .collect()
    };

    #[derive(Default)]
    struct Acc {
        count: i64,
        sum: f64,
        n: u64,
        min: Option<f64>,
        max: Option<f64>,
        distinct: BTreeSet<String>,
    }

    let mut groups: BTreeMap<Vec<Value>, Vec<Acc>> = BTreeMap::new();
    if spec.group.is_empty() {
        // An ungrouped query always yields exactly one row, even over an
        // empty input — mirror that.
        groups.insert(
            Vec::new(),
            spec.aggs.iter().map(|_| Acc::default()).collect(),
        );
    }
    for row in table.rows().expect("oracle table rows readable").iter() {
        if !passes(row) {
            continue;
        }
        let accs = groups
            .entry(key_of(row))
            .or_insert_with(|| spec.aggs.iter().map(|_| Acc::default()).collect());
        for (acc, (fun, col)) in accs.iter_mut().zip(&spec.aggs) {
            match fun {
                Fun::Count => acc.count += 1,
                _ => {
                    let v = &row[idx(col.expect("non-count carries a column"))];
                    if *fun == Fun::CountDistinct {
                        if !matches!(v, Value::Null) {
                            acc.distinct.insert(format!("{v:?}"));
                        }
                        continue;
                    }
                    if let Some(x) = v.as_f64() {
                        acc.sum += x;
                        acc.n += 1;
                        acc.min = Some(acc.min.map_or(x, |m| m.min(x)));
                        acc.max = Some(acc.max.map_or(x, |m| m.max(x)));
                    }
                }
            }
        }
    }

    groups
        .into_iter()
        .map(|(key, accs)| {
            let mut row = key;
            for (acc, (fun, _)) in accs.iter().zip(&spec.aggs) {
                row.push(match fun {
                    Fun::Count => Value::Int(acc.count),
                    Fun::Sum => Value::Float(acc.sum),
                    Fun::Avg => match acc.n {
                        0 => Value::Null,
                        n => Value::Float(acc.sum / n as f64),
                    },
                    Fun::Min => acc.min.map_or(Value::Null, Value::Float),
                    Fun::Max => acc.max.map_or(Value::Null, Value::Float),
                    Fun::CountDistinct => Value::Int(acc.distinct.len() as i64),
                });
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The oracle proper, with greedy shrinking on mismatch
// ---------------------------------------------------------------------------

fn pools() -> [PoolConfig; 4] {
    [
        PoolConfig::serial(),
        PoolConfig::new(2).with_shards(5),
        PoolConfig::new(8).with_shards(8),
        PoolConfig::new(3).with_shards(16),
    ]
}

/// Evaluate every engine over `rows` and report the first divergence, or
/// `None` when all agree. This is both the oracle check and the
/// shrinking predicate.
fn divergence(rows: &[Row], spec: &Spec) -> Option<String> {
    let mut table = Table::new(fact_schema());
    table
        .insert_batch(rows.to_vec())
        .expect("shrunk rows still fit the schema");
    let query = spec.query();
    let quiet = MetricsRegistry::disabled();

    let reference = match query.run(&table) {
        Ok(rs) => rs,
        Err(e) => return Some(format!("rayon path errored: {e}")),
    };
    for pool in pools() {
        match run_sharded(&query, &table, pool, &quiet, "fact") {
            Ok(got) if got == reference => {}
            Ok(got) => {
                return Some(format!(
                    "run_sharded(workers={}, shards={}) diverged from Query::run\n  sharded:   {:?}\n  reference: {:?}",
                    pool.workers(),
                    pool.shards(),
                    got.rows,
                    reference.rows
                ))
            }
            Err(e) => {
                return Some(format!(
                    "run_sharded(workers={}, shards={}) errored: {e}",
                    pool.workers(),
                    pool.shards()
                ))
            }
        }
    }
    let brute = brute_force(&table, spec);
    if reference.rows != brute {
        return Some(format!(
            "engine diverged from brute-force oracle\n  engine: {:?}\n  brute:  {:?}",
            reference.rows, brute
        ));
    }
    None
}

/// Greedily drop rows while the divergence persists, then report the
/// minimal reproducer.
fn shrink_report(seed: u64, rows: &[Row], spec: &Spec, first: String) -> String {
    let mut rows = rows.to_vec();
    loop {
        let mut shrunk = false;
        for i in 0..rows.len() {
            let mut candidate = rows.clone();
            candidate.remove(i);
            if divergence(&candidate, spec).is_some() {
                rows = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    let last =
        divergence(&rows, spec).unwrap_or_else(|| "(not reproducible after shrink)".to_owned());
    format!(
        "seed {seed}: {first}\n\nminimal reproducer ({} row(s)):\n{}\nquery spec: {spec:?}\nfinal divergence: {last}\nreplay with: DIFF_SEED={seed} cargo test --test differential_aggregation",
        rows.len(),
        rows.iter()
            .map(|r| format!("  {r:?}\n"))
            .collect::<String>(),
    )
}

fn check_seed(seed: u64) -> Result<(), String> {
    let mut rng = DeterministicRng::new(seed);
    let table = random_table(&mut rng);
    for _ in 0..QUERIES_PER_SEED {
        let spec = Spec::random(&mut rng);
        let rows = table.rows().expect("seed table rows readable");
        if let Some(first) = divergence(&rows, &spec) {
            return Err(shrink_report(seed, &rows, &spec, first));
        }
    }
    Ok(())
}

fn seeds_under_test() -> Vec<u64> {
    match std::env::var("DIFF_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("DIFF_SEED must be an unsigned integer")],
        Err(_) => (0..SEED_COUNT).collect(),
    }
}

#[test]
fn parallel_serial_rayon_and_brute_force_agree_across_seeds() {
    let mut failures = Vec::new();
    for seed in seeds_under_test() {
        if let Err(report) = check_seed(seed) {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "{} seed(s) diverged:\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

#[test]
fn degenerate_workloads_agree() {
    // Deterministic edge cases the random sweep may not hit every run:
    // empty table, single row, all-NULL aggregation column, all rows in
    // one shard bucket.
    let specs = [
        Spec {
            filters: Vec::new(),
            group: Vec::new(),
            aggs: vec![(Fun::Count, None), (Fun::Sum, Some("cpu_hours"))],
        },
        Spec {
            filters: Vec::new(),
            group: vec![GroupKey::PeriodOf("end_time".to_owned(), Period::Day)],
            aggs: vec![
                (Fun::Count, None),
                (Fun::Avg, Some("cpu_hours")),
                (Fun::Min, Some("cores")),
            ],
        },
    ];
    let single = vec![vec![
        Value::Str("res-0".to_owned()),
        Value::Str("q0".to_owned()),
        Value::Null,
        Value::Int(4),
        Value::Time(base_epoch()),
    ]];
    let all_null_times: Vec<Row> = (0..9)
        .map(|i| {
            vec![
                Value::Str("res-1".to_owned()),
                Value::Str("q1".to_owned()),
                Value::Float(i as f64 / 64.0),
                Value::Int(i + 1),
                Value::Null,
            ]
        })
        .collect();
    let one_bucket: Vec<Row> = (0..16)
        .map(|i| {
            vec![
                Value::Str("res-2".to_owned()),
                Value::Str("q2".to_owned()),
                Value::Float(i as f64 / 32.0),
                Value::Int(i),
                Value::Time(base_epoch() + i * 60),
            ]
        })
        .collect();
    for rows in [&Vec::new(), &single, &all_null_times, &one_bucket] {
        for spec in &specs {
            if let Some(report) = divergence(rows, spec) {
                panic!("degenerate workload diverged: {report}");
            }
        }
    }
}

#[test]
fn oracle_holds_under_concurrent_ingest_and_cache_invalidation() {
    let registry = MetricsRegistry::new();
    let mut db = Database::new();
    db.set_telemetry(registry.clone());
    db.set_parallelism(PoolConfig::new(4).with_shards(6));
    db.create_schema("s").expect("schema creates");
    db.create_table("s", fact_schema()).expect("table creates");
    let db = shared(db);

    let query = Query::new()
        .group_by_period("end_time", Period::Month)
        .aggregate(Aggregate::count("n"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut rng = DeterministicRng::new(7);
            for _ in 0..40 {
                let rows = (0..8).map(|_| random_row(&mut rng)).collect();
                db.write()
                    .insert("s", "fact", rows)
                    .expect("ingest succeeds");
            }
        })
    };
    let reader = {
        let db = Arc::clone(&db);
        let query = query.clone();
        std::thread::spawn(move || {
            for _ in 0..40 {
                // Any interleaving must produce an internally consistent
                // snapshot; an error or panic here is the failure mode.
                db.read()
                    .query_cached("s", "fact", &query)
                    .expect("cached query under concurrent ingest succeeds");
            }
        })
    };
    writer.join().expect("writer thread completes");
    reader.join().expect("reader thread completes");

    // Quiescent state: cached, sharded-serial, and rayon answers agree.
    let db = db.read();
    let cached = db.query_cached("s", "fact", &query).expect("cached query");
    let repeat = db.query_cached("s", "fact", &query).expect("repeat query");
    let table = db.table("s", "fact").expect("fact table exists");
    let serial = run_sharded(
        &query,
        table,
        PoolConfig::serial(),
        &MetricsRegistry::disabled(),
        "fact",
    )
    .expect("serial run");
    let rayon = query.run(table).expect("rayon run");
    assert_eq!(cached, serial);
    assert_eq!(cached, rayon);
    assert_eq!(cached, repeat);
    assert_eq!(table.rows().expect("rows readable").len(), 40 * 8);

    // The repeat after quiescence must be a cache hit, and concurrent
    // invalidation must have produced at least one miss.
    let snap = registry.snapshot();
    let hits = snap
        .counter("warehouse_aggcache_hits_total", &[("table", "fact")])
        .unwrap_or(0);
    let misses = snap
        .counter("warehouse_aggcache_misses_total", &[("table", "fact")])
        .unwrap_or(0);
    assert!(
        hits >= 1,
        "expected at least one aggregate-cache hit, got {hits}"
    );
    assert!(
        misses >= 1,
        "expected at least one aggregate-cache miss, got {misses}"
    );
}

// ---------------------------------------------------------------------------
// Incremental-vs-recompute arm: delta folds riding the binlog
// ---------------------------------------------------------------------------

/// Batches of rows applied in order — the unit the incremental arm
/// generates, checks after, and shrinks over.
type IngestSchedule = Vec<Vec<Row>>;

fn random_schedule(rng: &mut DeterministicRng) -> IngestSchedule {
    let batches = rng.gen_range(2, 8) as usize;
    (0..batches)
        .map(|_| {
            let n = rng.gen_range(0, 60) as usize;
            (0..n).map(|_| random_row(rng)).collect()
        })
        .collect()
}

fn fresh_incremental_db(pool: PoolConfig) -> Database {
    let mut db = Database::new();
    db.set_parallelism(pool);
    db.create_schema("s").expect("schema creates");
    db.create_table("s", fact_schema()).expect("table creates");
    db
}

/// Replay `schedule` into a fresh database, delta-folding after every
/// batch, and report the first step where the incremental answer
/// diverges from a full sharded recompute or the brute-force oracle —
/// or where the engine silently left the incremental path. This is both
/// the oracle check and the schedule-shrinking predicate.
fn incremental_divergence(schedule: &[Vec<Row>], spec: &Spec, pool: PoolConfig) -> Option<String> {
    let mut db = fresh_incremental_db(pool);
    let query = spec.query();
    let mut accumulated: Vec<Row> = Vec::new();
    for (step, batch) in schedule.iter().enumerate() {
        if let Err(e) = db.insert("s", "fact", batch.clone()) {
            return Some(format!("step {step}: ingest errored: {e}"));
        }
        accumulated.extend(batch.iter().cloned());
        let (incr, report) = match db.run_delta_fold("s", "fact", &query, "fact") {
            Ok(r) => r,
            Err(e) => return Some(format!("step {step}: delta fold errored: {e}")),
        };
        // Nothing in an insert-only schedule justifies a fallback: the
        // first pass must be a cold build and every later one a fold.
        let expected_incremental = step > 0;
        if expected_incremental != report.is_incremental() {
            return Some(format!(
                "step {step}: engine left the incremental path: expected {}, got {:?}",
                if expected_incremental {
                    "Incremental"
                } else {
                    "Cold"
                },
                report.outcome,
            ));
        }
        if report.is_incremental() && report.rows_folded != batch.len() {
            return Some(format!(
                "step {step}: folded {} record(s), batch had {}",
                report.rows_folded,
                batch.len()
            ));
        }
        let recompute = match db.query_sharded("s", "fact", &query) {
            Ok(rs) => rs,
            Err(e) => return Some(format!("step {step}: recompute errored: {e}")),
        };
        if incr != recompute {
            return Some(format!(
                "step {step}: incremental diverged from full recompute\n  incremental: {:?}\n  recompute:   {:?}",
                incr.rows, recompute.rows
            ));
        }
        let mut oracle_table = Table::new(fact_schema());
        oracle_table
            .insert_batch(accumulated.clone())
            .expect("accumulated rows fit the schema");
        let brute = brute_force(&oracle_table, spec);
        if incr.rows != brute {
            return Some(format!(
                "step {step}: incremental diverged from brute-force oracle\n  incremental: {:?}\n  brute:       {:?}",
                incr.rows, brute
            ));
        }
    }
    None
}

/// Greedily shrink a diverging ingest schedule: drop whole batches, then
/// single rows within batches, while the divergence persists.
fn shrink_schedule(
    seed: u64,
    schedule: &IngestSchedule,
    spec: &Spec,
    pool: PoolConfig,
    first: String,
) -> String {
    let mut schedule = schedule.to_vec();
    loop {
        let mut shrunk = false;
        for i in 0..schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if incremental_divergence(&candidate, spec, pool).is_some() {
                schedule = candidate;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        'rows: for b in 0..schedule.len() {
            for r in 0..schedule[b].len() {
                let mut candidate = schedule.clone();
                candidate[b].remove(r);
                if incremental_divergence(&candidate, spec, pool).is_some() {
                    schedule = candidate;
                    shrunk = true;
                    break 'rows;
                }
            }
        }
        if !shrunk {
            break;
        }
    }
    let last = incremental_divergence(&schedule, spec, pool)
        .unwrap_or_else(|| "(not reproducible after shrink)".to_owned());
    format!(
        "seed {seed}: {first}\n\nminimal reproducing ingest schedule ({} batch(es), {} row(s)):\n{}\nquery spec: {spec:?}\npool: workers={} shards={}\nfinal divergence: {last}\nreplay with: DIFF_SEED={seed} cargo test --test differential_aggregation incremental",
        schedule.len(),
        schedule.iter().map(Vec::len).sum::<usize>(),
        schedule
            .iter()
            .enumerate()
            .map(|(i, b)| format!("  batch {i}: {b:?}\n"))
            .collect::<String>(),
        pool.workers(),
        pool.shards(),
    )
}

/// Per-seed results accumulated for the `INCR_ORACLE_REPORT` artifact.
static INCR_REPORT: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn record_incr_case(seed: u64, batches: usize, rows: usize, failure: Option<&str>) {
    let status = match failure {
        None => r#""ok""#.to_owned(),
        Some(report) => format!(
            r#""diverged","reproducer":{:?}"#,
            report // JSON-escaped via Debug
        ),
    };
    INCR_REPORT.lock().expect("report lock").push(format!(
        r#"{{"seed":{seed},"batches":{batches},"rows":{rows},"status":{status}}}"#
    ));
}

/// Write the accumulated sweep to `INCR_ORACLE_REPORT` when set (the CI
/// incremental-oracle job archives it).
fn flush_incr_report() {
    let Ok(path) = std::env::var("INCR_ORACLE_REPORT") else {
        return;
    };
    let cases = INCR_REPORT.lock().expect("report lock");
    let doc = format!(
        r#"{{"oracle":"incremental-vs-recompute","cases":[{}],"total":{}}}"#,
        cases.join(","),
        cases.len(),
    );
    let _ = std::fs::write(&path, doc);
}

#[test]
fn incremental_and_full_recompute_agree_across_ingest_schedules() {
    let mut failures = Vec::new();
    for seed in seeds_under_test() {
        // Distinct stream from the table-shape arm so the two sweeps
        // explore independent workloads.
        let mut rng = DeterministicRng::new(seed.wrapping_mul(2_654_435_761).wrapping_add(101));
        let schedule = random_schedule(&mut rng);
        let batches = schedule.len();
        let rows = schedule.iter().map(Vec::len).sum();
        let mut seed_failure: Option<String> = None;
        'specs: for _ in 0..3 {
            let spec = Spec::random(&mut rng);
            for pool in [pools()[1], pools()[3]] {
                if let Some(first) = incremental_divergence(&schedule, &spec, pool) {
                    let report = shrink_schedule(seed, &schedule, &spec, pool, first);
                    seed_failure = Some(report);
                    break 'specs;
                }
            }
        }
        record_incr_case(seed, batches, rows, seed_failure.as_deref());
        if let Some(report) = seed_failure {
            failures.push(report);
        }
    }
    flush_incr_report();
    assert!(
        failures.is_empty(),
        "{} seed(s) diverged on the incremental arm:\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

#[test]
fn incremental_fallback_triggers_rebuild_not_stale_results() {
    // External rebuild: the fold must restart cold, never serve partials
    // folded before the rewrite.
    let mut rng = DeterministicRng::new(99);
    let spec = Spec {
        filters: Vec::new(),
        group: vec![
            GroupKey::Column("resource".to_owned()),
            GroupKey::PeriodOf("end_time".to_owned(), Period::Day),
        ],
        aggs: vec![
            (Fun::Count, None),
            (Fun::Sum, Some("cpu_hours")),
            (Fun::CountDistinct, Some("cores")),
        ],
    };
    let query = spec.query();
    let mut db = fresh_incremental_db(PoolConfig::new(3).with_shards(6));
    let first: Vec<Row> = (0..50).map(|_| random_row(&mut rng)).collect();
    db.insert("s", "fact", first.clone()).expect("ingest");
    db.run_delta_fold("s", "fact", &query, "fact")
        .expect("cold fold");

    let second: Vec<Row> = (0..20).map(|_| random_row(&mut rng)).collect();
    db.insert("s", "fact", second.clone()).expect("ingest");
    db.note_external_rebuild();
    let (rs, report) = db
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("fold");
    assert_eq!(
        report.outcome,
        DeltaOutcome::Cold,
        "cursors must not survive an external rebuild"
    );
    let mut oracle_table = Table::new(fact_schema());
    let mut all = first;
    all.extend(second);
    oracle_table.insert_batch(all).expect("rows fit");
    assert_eq!(rs.rows, brute_force(&oracle_table, &spec));
    assert_eq!(
        rs,
        db.query_sharded("s", "fact", &query).expect("recompute")
    );

    // Fact-table truncate arriving in the delta: fold cannot unfold
    // removed rows and must rebuild.
    db.truncate("s", "fact").expect("truncate");
    let third: Vec<Row> = (0..10).map(|_| random_row(&mut rng)).collect();
    db.insert("s", "fact", third.clone()).expect("ingest");
    let (rs, report) = db
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("fold");
    assert_eq!(
        report.fallback_reason(),
        Some(FallbackReason::FactRewrite),
        "a truncate in the delta must force a full rebuild"
    );
    let mut oracle_table = Table::new(fact_schema());
    oracle_table.insert_batch(third).expect("rows fit");
    assert_eq!(rs.rows, brute_force(&oracle_table, &spec));
}

#[test]
fn incremental_compaction_fallback_against_disk_backend() {
    // Snapshot-triggered binlog compaction can outrun a retained cursor;
    // against the durable backend the fold must detect `CompactedAway`
    // and rebuild from the live table, never half-apply a vanished delta.
    static DIR_SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xdmod-incr-oracle-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let opts = DiskOptions::new(&dir).fsync(false).segment_max_bytes(512);
    let backend = DiskBackend::open(opts).expect("open backend");
    let mut db = Database::open(Box::new(backend)).expect("open db");
    db.set_parallelism(PoolConfig::new(2).with_shards(5));
    db.create_schema("s").expect("schema");
    db.create_table("s", fact_schema()).expect("table");

    let mut rng = DeterministicRng::new(4242);
    let spec = Spec {
        filters: Vec::new(),
        group: vec![GroupKey::PeriodOf("end_time".to_owned(), Period::Month)],
        aggs: vec![(Fun::Count, None), (Fun::Avg, Some("cpu_hours"))],
    };
    let query = spec.query();
    let mut all: Vec<Row> = (0..40).map(|_| random_row(&mut rng)).collect();
    db.insert("s", "fact", all.clone()).expect("ingest");
    let (_, report) = db
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("fold");
    assert_eq!(report.outcome, DeltaOutcome::Cold);
    let cursor = db.binlog_position();

    // Ingest + snapshot twice: the compaction horizon trails one
    // snapshot behind, so the second pass pushes it past the cursor.
    for _ in 0..2 {
        let batch: Vec<Row> = (0..15).map(|_| random_row(&mut rng)).collect();
        db.insert("s", "fact", batch.clone()).expect("ingest");
        all.extend(batch);
        db.snapshot_now().expect("snapshot");
    }
    assert!(
        db.compaction_horizon() > cursor.seqno,
        "compaction must have outrun the cursor for this test to bite"
    );

    let (rs, report) = db
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("fold");
    assert_eq!(
        report.fallback_reason(),
        Some(FallbackReason::CompactedAway),
        "a cursor below the compaction horizon must force a full rebuild"
    );
    let mut oracle_table = Table::new(fact_schema());
    oracle_table.insert_batch(all).expect("rows fit");
    assert_eq!(rs.rows, brute_force(&oracle_table, &spec));
    assert_eq!(
        rs,
        db.query_sharded("s", "fact", &query).expect("recompute")
    );

    // The rebuilt cursor folds incrementally again.
    db.insert("s", "fact", vec![random_row(&mut rng)])
        .expect("ingest");
    let (_, report) = db
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("fold");
    assert!(report.is_incremental());
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_folds_race_cached_reads_without_serving_stale_state() {
    let registry = MetricsRegistry::new();
    let mut db = Database::new();
    db.set_telemetry(registry.clone());
    db.set_parallelism(PoolConfig::new(4).with_shards(6));
    db.create_schema("s").expect("schema creates");
    db.create_table("s", fact_schema()).expect("table creates");
    let db = shared(db);

    let query = Query::new()
        .group_by_period("end_time", Period::Day)
        .aggregate(Aggregate::count("n"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut rng = DeterministicRng::new(23);
            for _ in 0..30 {
                let rows = (0..8).map(|_| random_row(&mut rng)).collect();
                db.write()
                    .insert("s", "fact", rows)
                    .expect("ingest succeeds");
            }
        })
    };
    let folder = {
        let db = Arc::clone(&db);
        let query = query.clone();
        std::thread::spawn(move || {
            let mut incremental_passes = 0usize;
            for _ in 0..30 {
                // One read guard spans the fold and its check recompute,
                // so both see the same snapshot: a delta fold racing
                // ingest must still match a from-scratch answer at the
                // instant it ran.
                let d = db.read();
                let (rs, report) = d
                    .run_delta_fold("s", "fact", &query, "fact")
                    .expect("fold succeeds");
                let recompute = d.query_sharded("s", "fact", &query).expect("recompute");
                assert_eq!(rs, recompute, "mid-race fold diverged from recompute");
                if report.is_incremental() {
                    incremental_passes += 1;
                }
            }
            incremental_passes
        })
    };
    let reader = {
        let db = Arc::clone(&db);
        let query = query.clone();
        std::thread::spawn(move || {
            for _ in 0..30 {
                db.read()
                    .query_cached("s", "fact", &query)
                    .expect("cached query under racing folds succeeds");
            }
        })
    };
    writer.join().expect("writer completes");
    let incremental_passes = folder.join().expect("folder completes");
    reader.join().expect("reader completes");
    assert!(
        incremental_passes >= 1,
        "at least one racing fold should have taken the incremental path"
    );

    // Quiescent: the retained cursor has caught up with the fact table's
    // rebuild ticket — a cache entry is only valid at exactly this pair.
    let d = db.read();
    let (rs, _) = d
        .run_delta_fold("s", "fact", &query, "fact")
        .expect("final fold");
    let key = CacheKey {
        schema: "s".to_owned(),
        table: "fact".to_owned(),
        fingerprint: query.fingerprint(),
    };
    let cursor = d.delta_cache().cursor_of(&key).expect("retained entry");
    assert_eq!(
        cursor,
        d.binlog_position(),
        "cursor must sit at the log head"
    );
    let ticket = d.rebuild_ticket("s", "fact");
    assert_eq!(
        ticket.watermark,
        Some(cursor),
        "fact watermark and delta cursor must agree at quiescence"
    );
    let cached = d.query_cached("s", "fact", &query).expect("cached query");
    assert_eq!(
        rs, cached,
        "cached entry served at a ticket the cursor does not match"
    );
    assert_eq!(rs, d.query_sharded("s", "fact", &query).expect("recompute"));
    assert_eq!(d.table("s", "fact").expect("fact").len(), 30 * 8);
}

// ---------------------------------------------------------------------------
// Paged-vs-resident differential arm
// ---------------------------------------------------------------------------

/// A fresh database with cold-shard paging enabled at a pathologically
/// tiny working-set budget — at most a couple of shards (and the one
/// pinned by an in-flight scan) can ever stay resident, so every query
/// crosses the spill/fault-in machinery.
fn fresh_paged_db(pool: PoolConfig, dir: &std::path::Path, budget: u64) -> Database {
    let mut db = Database::new();
    db.set_parallelism(pool);
    db.enable_paging(
        xdmod::warehouse::PagingConfig::new(dir)
            .budget_bytes(budget)
            .pages_per_table(8),
    )
    .expect("paging enables on a fresh database");
    db.create_schema("s").expect("schema creates");
    db.create_table("s", fact_schema()).expect("table creates");
    db
}

fn paged_twin_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "xdmod-diff-paged-{tag}-{}-{seed}",
        std::process::id()
    ))
}

/// Serial and parallel arms: the same rows behind the paging engine at a
/// one-byte budget must agree byte-for-byte with the fully resident
/// table on `Query::run` and on `run_sharded` across every pool
/// geometry.
#[test]
fn paged_and_resident_twins_agree_on_every_engine() {
    let quiet = MetricsRegistry::disabled();
    for seed in seeds_under_test() {
        // Same stream as the dense four-way arm, so both sweeps see the
        // same tables and query specs.
        let mut rng = DeterministicRng::new(seed);
        let dense = random_table(&mut rng);
        let rows = dense.rows().expect("dense rows readable");
        let dir = paged_twin_dir("engines", seed);
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = fresh_paged_db(pools()[1], &dir, 1);
        db.insert("s", "fact", rows.to_vec()).expect("paged ingest");
        for _ in 0..QUERIES_PER_SEED {
            let spec = Spec::random(&mut rng);
            let query = spec.query();
            let reference = query.run(&dense).expect("dense run");
            let table = db.table("s", "fact").expect("paged table");
            assert!(table.is_paged(), "twin table must actually be paged");
            let paged = query.run(table).expect("paged run");
            assert_eq!(
                paged, reference,
                "seed {seed}: paged Query::run diverged from the resident twin\nspec: {spec:?}"
            );
            for pool in pools() {
                let got =
                    run_sharded(&query, table, pool, &quiet, "fact").expect("paged sharded run");
                assert_eq!(
                    got, reference,
                    "seed {seed}: paged run_sharded(workers={}, shards={}) diverged\nspec: {spec:?}",
                    pool.workers(),
                    pool.shards()
                );
            }
        }
        let stats = db.residency_stats().expect("paging is on");
        if !rows.is_empty() {
            assert!(
                stats.spilled_pages > 0,
                "seed {seed}: a one-byte budget must leave pages spilled: {stats:?}"
            );
        }
        // Checksum parity through arbitrary spill/fault-in cycles: the
        // replication consistency checker relies on this.
        assert_eq!(
            db.table("s", "fact")
                .expect("paged table")
                .content_checksum(),
            dense.content_checksum(),
            "seed {seed}: paged content checksum diverged from the dense twin"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Incremental arm: a paged database replaying an ingest schedule with
/// delta folds after every batch must stay on the incremental path
/// exactly when the unbounded twin does, and return byte-identical
/// results at every step.
#[test]
fn paged_incremental_folds_agree_with_unbounded_twin() {
    for seed in seeds_under_test() {
        // Same stream as the incremental arm, so both sweeps replay the
        // same schedules.
        let mut rng = DeterministicRng::new(seed.wrapping_mul(2_654_435_761).wrapping_add(101));
        let schedule = random_schedule(&mut rng);
        let spec = Spec::random(&mut rng);
        let query = spec.query();
        let pool = pools()[1];
        let dir = paged_twin_dir("incr", seed);
        let _ = std::fs::remove_dir_all(&dir);
        let mut unbounded = fresh_incremental_db(pool);
        let mut paged = fresh_paged_db(pool, &dir, 1);
        for (step, batch) in schedule.iter().enumerate() {
            unbounded
                .insert("s", "fact", batch.clone())
                .expect("unbounded ingest");
            paged
                .insert("s", "fact", batch.clone())
                .expect("paged ingest");
            let (want, want_report) = unbounded
                .run_delta_fold("s", "fact", &query, "fact")
                .expect("unbounded fold");
            let (got, got_report) = paged
                .run_delta_fold("s", "fact", &query, "fact")
                .expect("paged fold");
            assert_eq!(
                got, want,
                "seed {seed} step {step}: paged delta fold diverged\nspec: {spec:?}"
            );
            assert_eq!(
                got_report.outcome, want_report.outcome,
                "seed {seed} step {step}: paging changed the fold outcome"
            );
        }
        drop(paged);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Alert-lifecycle soak: a seeded chaos run against a three-satellite
//! federation must turn every injected fault family into **exactly one**
//! firing alert — repeated observations fold into the open alert's
//! occurrence count instead of multiplying — and every alert must
//! auto-resolve once the supervisor heals (or the operator reinstates)
//! the link. The same engine is then exercised over its full surface:
//! replication lag following the sampled gauge, preflight refusals and
//! gateway admission saturation raising (and timeout-resolving) alerts,
//! and the `/alerts` HTTP surface with `ETag` revalidation and the
//! operator-role acknowledgement gate.
//!
//! The seed is taken from `CHAOS_SEED` when set (the CI alert-soak job
//! loops a fixed set of seeds through this test), defaulting to 42.

use std::sync::{Arc, RwLock};
use std::time::Duration;

use xdmod::alerts::{
    AlertRules, AlertSeverity, AlertState, FAMILY_GATEWAY_SATURATION, FAMILY_LINK_DOWN,
    FAMILY_PREFLIGHT_REFUSED, FAMILY_QUARANTINE, FAMILY_REPLICATION_LAG,
};
use xdmod::auth::{Role, User, SESSION_TTL_SECS};
use xdmod::chaos::{FaultKind, FaultPlan, FaultPoint, FaultSpec};
use xdmod::core::{
    Alert, Federation, FederationConfig, FederationHub, SupervisorPolicy, XdmodInstance,
};
use xdmod::gateway::{App, GatewayConfig, Request, SESSION_COOKIE};
use xdmod::replication::RetryPolicy;
use xdmod::sim::{ClusterSim, ResourceProfile};

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn satellite(name: &str, resource: &str, sim_seed: u64) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.0);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 48.0, 1.0), sim_seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
        .unwrap();
    inst
}

fn policy() -> SupervisorPolicy {
    SupervisorPolicy::default()
        .with_max_failures(2)
        .with_retry(RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            deadline: None,
        })
}

fn find<'a>(alerts: &'a [Alert], family: &str, target: &str) -> Vec<&'a Alert> {
    alerts
        .iter()
        .filter(|a| a.family == family && a.target == target)
        .collect()
}

/// The headline acceptance: chaos faults on a three-satellite federation
/// produce exactly one firing alert per injected fault family, folding
/// repeats, and every alert resolves once the supervisor heals the link.
#[test]
fn injected_faults_fire_exactly_one_alert_each_and_auto_resolve() {
    let x = satellite("x", "res-x", 7);
    let y = satellite("y", "res-y", 8);
    let z = satellite("z", "res-z", 9);

    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_tight(&y, FederationConfig::default()).unwrap();
    fed.join_tight(&z, FederationConfig::default()).unwrap();

    let plan = FaultPlan::new()
        // x: a budgeted burst of transient faults, absorbed by the
        // tick's fast retries — and therefore invisible to the alert
        // engine: no page for a self-healing hiccup.
        .with(
            FaultSpec::every(FaultPoint::Transport, FaultKind::Transient, 2)
                .for_target("x")
                .with_budget(3),
        )
        // z: the link drops on its first op and never comes back.
        .with(FaultSpec::at_ops(FaultPoint::Transport, FaultKind::LinkDown, &[1]).for_target("z"));
    fed.inject_chaos(&plan.injector(seed()));

    for _ in 0..4 {
        fed.supervise(&policy());
    }
    assert_eq!(fed.quarantined_members(), vec!["z"]);

    let alerts = fed.alerts();
    // Transient-absorbing x never alerted.
    assert!(
        alerts.iter().all(|a| a.target != "x"),
        "absorbed transients must not page: {alerts:?}"
    );
    // Exactly one firing alert per fault family, not one per tick.
    let link_down = find(&alerts, FAMILY_LINK_DOWN, "z");
    assert_eq!(link_down.len(), 1, "alerts: {alerts:?}");
    assert_eq!(link_down[0].state, AlertState::Firing);
    assert_eq!(link_down[0].severity, AlertSeverity::Critical);
    let quarantine = find(&alerts, FAMILY_QUARANTINE, "z");
    assert_eq!(quarantine.len(), 1, "alerts: {alerts:?}");
    assert_eq!(quarantine[0].state, AlertState::Firing);
    // The quarantined member is re-observed every tick; those repeats
    // folded into the open alert instead of multiplying it.
    assert!(
        quarantine[0].occurrences > 1,
        "repeat observations must fold: {:?}",
        quarantine[0]
    );
    assert_eq!(fed.alert_engine().open_count(), 2);
    // Two distinct firings ⇒ two notifications; folds dispatch nothing.
    assert_eq!(fed.alert_engine().notifications_sent(), 2);
    assert_eq!(fed.alert_engine().notifications_suppressed(), 0);

    // An operator acknowledges the page; the alert stays open.
    let id = link_down[0].id.clone();
    fed.ack_alert(&id, "sre-oncall").unwrap();
    let alerts = fed.alerts();
    let acked = find(&alerts, FAMILY_LINK_DOWN, "z")[0];
    assert_eq!(acked.state, AlertState::Acknowledged);
    assert_eq!(acked.acked_by.as_deref(), Some("sre-oncall"));
    // Acknowledging twice is refused.
    assert!(fed.ack_alert(&id, "sre-oncall").is_err());

    // Heal: clear the chaos plan (the LinkDown latch lives in the
    // injector), reinstate the parked member, and let the supervisor
    // observe health again.
    fed.inject_chaos(&FaultPlan::new().injector(seed()));
    fed.reinstate_member("z").unwrap();
    for _ in 0..2 {
        let report = fed.supervise(&policy());
        assert!(report.all_healthy(), "healed federation: {report}");
    }

    let alerts = fed.alerts();
    for (family, target) in [(FAMILY_LINK_DOWN, "z"), (FAMILY_QUARANTINE, "z")] {
        let resolved = find(&alerts, family, target);
        assert_eq!(resolved.len(), 1);
        assert_eq!(
            resolved[0].state,
            AlertState::Resolved,
            "{family}/{target} must resolve after healing: {:?}",
            resolved[0]
        );
    }
    assert_eq!(fed.alert_engine().open_count(), 0);

    // Identity is stable across the whole lifecycle.
    assert_eq!(find(&alerts, FAMILY_LINK_DOWN, "z")[0].id, id);

    // The ops dashboard carried the alert section throughout.
    let report = fed.ops_report().unwrap().render();
    assert!(report.contains("Active alerts"), "report: {report}");
}

/// Replication lag: the supervisor classifies a live link as lagging
/// from the `replication_lag_events` gauge its worker samples; the alert
/// engine follows that classification up and back down.
#[test]
fn replication_lag_alert_follows_the_sampled_gauge() {
    let x = satellite("lagx", "res-lx", 11);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.sync().unwrap();
    // A long interval keeps the live worker asleep after its first
    // iteration, so the gauge is ours to script deterministically.
    fed.go_live_forced(Duration::from_secs(600));
    std::thread::sleep(Duration::from_millis(30));

    // The worker's sampler would write exactly this on a backlogged
    // link (see LiveReplicator's lag sampling); scripted here so the
    // soak does not race a real backlog drain.
    fed.hub()
        .telemetry()
        .gauge("replication_lag_events", &[("link", "lagx")])
        .set(42.0);
    fed.supervise(&SupervisorPolicy::default());
    let alerts = fed.alerts();
    let lag = find(&alerts, FAMILY_REPLICATION_LAG, "lagx");
    assert_eq!(lag.len(), 1, "alerts: {alerts:?}");
    assert_eq!(lag[0].state, AlertState::Firing);
    assert!(
        lag[0].detail.contains("42"),
        "detail carries the backlog: {:?}",
        lag[0]
    );

    // Lag drains: the next tick observes a healthy link and resolves.
    fed.hub()
        .telemetry()
        .gauge("replication_lag_events", &[("link", "lagx")])
        .set(0.0);
    fed.supervise(&SupervisorPolicy::default());
    let alerts = fed.alerts();
    assert_eq!(
        find(&alerts, FAMILY_REPLICATION_LAG, "lagx")[0].state,
        AlertState::Resolved
    );
    fed.quiesce().unwrap();
}

/// Event-fed families: a preflight refusal and gateway admission
/// saturation raise alerts through the telemetry event pump, and —
/// having no healthy-path producer — resolve via the rule's quiet
/// timeout.
#[test]
fn event_fed_families_fire_and_timeout_resolve() {
    // `schema_for` maps both names to inst_site_a: XC0001 refuses
    // go_live.
    let a = satellite("site-a", "res-a", 41);
    let b = satellite("site.a", "res-b", 43);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&a, FederationConfig::default()).unwrap();
    fed.join_tight(&b, FederationConfig::default()).unwrap();

    // Tight timeout rules so the test observes the auto-resolve without
    // waiting out the 30 s default (debounce must stay below the
    // resolve timeout or XC0013 would refuse this very table).
    let mut rules = AlertRules::default();
    rules.set(
        FAMILY_PREFLIGHT_REFUSED,
        rules
            .rule_for(FAMILY_PREFLIGHT_REFUSED)
            .with_debounce_ms(1)
            .with_resolve_timeout_ms(40),
    );
    rules.set(
        FAMILY_GATEWAY_SATURATION,
        rules
            .rule_for(FAMILY_GATEWAY_SATURATION)
            .with_debounce_ms(1)
            .with_resolve_timeout_ms(40),
    );
    fed.set_alert_rules(rules);

    fed.go_live(Duration::from_millis(1)).unwrap_err();
    let alerts = fed.alerts();
    let refused = find(&alerts, FAMILY_PREFLIGHT_REFUSED, "preflight");
    assert_eq!(refused.len(), 1, "alerts: {alerts:?}");
    assert_eq!(refused[0].state, AlertState::Firing);

    // A zero-capacity admission gate refuses every valved request and
    // emits `gateway.saturated`; the pump turns it into an alert.
    let fed = Arc::new(RwLock::new(fed));
    let app = App::new(
        Arc::clone(&fed),
        &GatewayConfig::default().with_max_inflight(0),
    );
    let req = Request {
        method: "GET".into(),
        path: "/ops".into(),
        query: vec![],
        headers: vec![],
        body: String::new(),
    };
    let resp = app.handle(&req, "10.0.0.1", 1);
    assert_eq!(resp.status, 503);

    let mut fed = fed.write().unwrap();
    let alerts = fed.alerts();
    let saturated = find(&alerts, FAMILY_GATEWAY_SATURATION, "gateway");
    assert_eq!(saturated.len(), 1, "alerts: {alerts:?}");
    assert_eq!(saturated[0].state, AlertState::Firing);

    // Quiet past the resolve timeout: both families auto-resolve.
    std::thread::sleep(Duration::from_millis(60));
    let alerts = fed.alerts();
    for (family, target) in [
        (FAMILY_PREFLIGHT_REFUSED, "preflight"),
        (FAMILY_GATEWAY_SATURATION, "gateway"),
    ] {
        assert_eq!(
            find(&alerts, family, target)[0].state,
            AlertState::Resolved,
            "{family} must timeout-resolve"
        );
    }
    assert_eq!(fed.alert_engine().open_count(), 0);
}

fn epoch_secs() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64
}

fn request(method: &str, path: &str, headers: Vec<(String, String)>) -> Request {
    Request {
        method: method.into(),
        path: path.into(),
        query: vec![],
        headers,
        body: String::new(),
    }
}

fn cookie_header(cookie: &str) -> Vec<(String, String)> {
    vec![("cookie".to_owned(), format!("{SESSION_COOKIE}={cookie}"))]
}

/// The `/alerts` HTTP surface: ETag revalidation keyed to the engine's
/// generation counter, and the operator-role gate on acknowledgement.
#[test]
fn alerts_endpoint_revalidates_and_gates_ack_by_role() {
    let x = satellite("x", "res-x", 7);
    let z = satellite("z", "res-z", 9);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_tight(&z, FederationConfig::default()).unwrap();
    fed.inject_chaos(
        &FaultPlan::new()
            .with(FaultSpec::at_ops(FaultPoint::Transport, FaultKind::LinkDown, &[1]).for_target("z"))
            .injector(seed()),
    );
    for _ in 0..4 {
        fed.supervise(&policy());
    }
    let firing_id = fed
        .alerts()
        .iter()
        .find(|a| a.family == FAMILY_LINK_DOWN)
        .map(|a| a.id.clone())
        .expect("link_down fired");

    let auth = fed.hub_mut().auth_mut();
    auth.enroll(
        User::member("staff", "staff@hub.example", "hub.example").with_role(Role::CenterStaff),
        Some("staff-pw"),
    );
    auth.enroll(
        User::member("walt", "walt@x.example", "x.example").with_role(Role::User),
        Some("walt-pw"),
    );
    let now = epoch_secs();
    let staff = auth
        .login_local("staff", "staff-pw", now)
        .unwrap()
        .cookie_value();
    let walt = auth
        .login_local("walt", "walt-pw", now)
        .unwrap()
        .cookie_value();

    let app = App::new(Arc::new(RwLock::new(fed)), &GatewayConfig::default());

    // Unauthenticated list is refused.
    let resp = app.handle(&request("GET", "/alerts", vec![]), "c1", 1);
    assert_eq!(resp.status, 401);

    // Authenticated list: 200 with an ETag and the firing alert.
    let resp = app.handle(&request("GET", "/alerts", cookie_header(&staff)), "c1", 2);
    assert_eq!(resp.status, 200, "{}", resp.body);
    let etag = resp
        .headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("etag"))
        .map(|(_, v)| v.clone())
        .expect("200 carries an ETag");
    assert!(resp.body.contains(FAMILY_LINK_DOWN), "{}", resp.body);
    assert!(resp.body.contains(&firing_id), "{}", resp.body);

    // Unchanged alert state revalidates to 304.
    let mut headers = cookie_header(&staff);
    headers.push(("if-none-match".to_owned(), etag.clone()));
    let resp = app.handle(&request("GET", "/alerts", headers.clone()), "c1", 3);
    assert_eq!(resp.status, 304, "{}", resp.body);
    assert!(resp.body.is_empty());

    // Plain users may look but not acknowledge.
    let ack_path = format!("/alerts/{firing_id}/ack");
    let resp = app.handle(&request("GET", "/alerts", cookie_header(&walt)), "c2", 4);
    assert_eq!(resp.status, 200);
    let resp = app.handle(&request("POST", &ack_path, cookie_header(&walt)), "c2", 5);
    assert_eq!(resp.status, 403, "{}", resp.body);

    // Operators may: 200, then 409 on the repeat, 404 for a bogus id.
    let resp = app.handle(&request("POST", &ack_path, cookie_header(&staff)), "c1", 6);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("staff"), "{}", resp.body);
    let resp = app.handle(&request("POST", &ack_path, cookie_header(&staff)), "c1", 7);
    assert_eq!(resp.status, 409, "{}", resp.body);
    let resp = app.handle(
        &request("POST", "/alerts/ffffffffffffffff/ack", cookie_header(&staff)),
        "c1",
        8,
    );
    assert_eq!(resp.status, 404, "{}", resp.body);
    // GET on the ack route is a method error, not a fall-through.
    let resp = app.handle(&request("GET", &ack_path, cookie_header(&staff)), "c1", 9);
    assert_eq!(resp.status, 405, "{}", resp.body);

    // The ack moved the generation: the old ETag misses now.
    let resp = app.handle(&request("GET", "/alerts", headers), "c1", 10);
    assert_eq!(resp.status, 200, "stale ETag must re-serve");
    assert!(resp.body.contains("acknowledged"), "{}", resp.body);
}

/// The acceptor's idle-path housekeeping: expired sessions are actually
/// purged (not merely purgeable), on the configured cadence.
#[test]
fn idle_path_purges_expired_sessions() {
    let x = satellite("x", "res-x", 7);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    let auth = fed.hub_mut().auth_mut();
    auth.enroll(
        User::member("staff", "staff@hub.example", "hub.example").with_role(Role::CenterStaff),
        Some("staff-pw"),
    );
    // One live session, one long expired.
    let now = epoch_secs();
    auth.login_local("staff", "staff-pw", now).unwrap();
    auth.login_local("staff", "staff-pw", now - SESSION_TTL_SECS - 3600)
        .unwrap();

    let fed = Arc::new(RwLock::new(fed));
    // Interval zero: sweep on every idle tick (the production default
    // is a minute).
    let app = App::new(
        Arc::clone(&fed),
        &GatewayConfig::default().with_session_purge_interval(Duration::ZERO),
    );
    assert_eq!(app.maybe_purge_sessions(1_000), 1);
    // Swept already — nothing left to purge, but the sweep still runs.
    assert_eq!(app.maybe_purge_sessions(2_000), 0);
    // The sweep left its audit counter.
    assert_eq!(
        fed.read()
            .unwrap()
            .hub()
            .telemetry()
            .snapshot()
            .counter("gateway_sessions_purged_total", &[]),
        Some(1)
    );

    // A non-zero interval rate-limits the sweep.
    let spaced = App::new(
        Arc::clone(&fed),
        &GatewayConfig::default().with_session_purge_interval(Duration::from_secs(60)),
    );
    assert_eq!(spaced.maybe_purge_sessions(1_000), 0); // first sweep
    assert_eq!(spaced.maybe_purge_sessions(30_000), 0); // within interval: skipped
    assert_eq!(spaced.maybe_purge_sessions(61_001), 0); // due again: runs, nothing expired
}

//! Integration tests for the usage explorer and federation reporting —
//! the presentation path a real XDMoD deployment exercises daily.

use xdmod::core::{
    federation_report, ChartRequest, Federation, FederationConfig, FederationHub, XdmodInstance,
};
use xdmod::realms::docs::data_dictionary;
use xdmod::realms::levels::{hub_walltime, AggregationLevelsConfig, DIM_WALL_TIME};
use xdmod::realms::RealmKind;
use xdmod::sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};
use xdmod::warehouse::{CivilDate, Period};

fn federation() -> (Vec<XdmodInstance>, Federation) {
    let mut instances = Vec::new();
    for (name, resource, seed) in [("ccr", "rush", 1u64), ("cornell", "redcloud-hpc", 2)] {
        let mut inst = XdmodInstance::new(name);
        inst.set_su_factor(resource, 1.4);
        let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 24.0, 1.4), seed);
        inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=4)).unwrap();
        instances.push(inst);
    }
    // CCR also carries storage + cloud.
    instances[0]
        .ingest_storage_json(&StorageSim::ccr(3).json_document(2017, 3))
        .unwrap();
    let cloud = CloudSim::new("ccr-cloud", 10, 3);
    instances[0]
        .ingest_cloud_feed(&cloud.event_feed(2017), CloudSim::horizon(2017))
        .unwrap();

    let mut hub = FederationHub::new("fed-hub");
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, hub_walltime());
    hub.set_levels(levels);
    let mut fed = Federation::new(hub);
    for inst in &instances {
        fed.join_tight(inst, FederationConfig::default_realms()).unwrap();
    }
    fed.sync().unwrap();
    (instances, fed)
}

#[test]
fn explorer_federated_su_by_resource_covers_both_sites() {
    let (_instances, fed) = federation();
    let ds = fed
        .hub()
        .explore_federated(
            &ChartRequest::timeseries(RealmKind::Jobs, "total_su", Period::Month)
                .group_by("resource"),
        )
        .unwrap();
    assert_eq!(ds.series.len(), 2);
    assert!(ds.title.contains("federated"));
    assert!(ds.series_named("rush").is_some());
    assert!(ds.series_named("redcloud-hpc").is_some());
}

#[test]
fn explorer_numeric_dimension_uses_hub_levels_on_hub() {
    let (_instances, fed) = federation();
    let ds = fed
        .hub()
        .explore_federated(
            &ChartRequest::aggregate(RealmKind::Jobs, "job_count").group_by(DIM_WALL_TIME),
        )
        .unwrap();
    // Labels come from the hub's wall-time levels.
    for label in &ds.labels {
        assert!(
            [
                "0-60 minutes",
                "1-5 hours",
                "5-10 hours",
                "10-20 hours",
                "20-50 hours",
                "other"
            ]
            .contains(&label.as_str()),
            "unexpected label {label}"
        );
    }
}

#[test]
fn explorer_drilldown_matches_direct_filter_total() {
    let (instances, fed) = federation();
    let ds_all = fed
        .hub()
        .explore_federated(
            &ChartRequest::timeseries(RealmKind::Jobs, "total_cpu_hours", Period::Year),
        )
        .unwrap();
    let ds_rush = fed
        .hub()
        .explore_federated(
            &ChartRequest::timeseries(RealmKind::Jobs, "total_cpu_hours", Period::Year)
                .filter("resource", "rush"),
        )
        .unwrap();
    let all = ds_all.series_total("total_cpu_hours").unwrap();
    let rush = ds_rush.series_total("total_cpu_hours").unwrap();
    assert!(rush < all);
    // Drill-down on the hub matches the owning satellite's local total.
    let local = instances[0]
        .explore(&ChartRequest::timeseries(
            RealmKind::Jobs,
            "total_cpu_hours",
            Period::Year,
        ))
        .unwrap()
        .series_total("total_cpu_hours")
        .unwrap();
    assert!((rush - local).abs() < 1e-6);
}

#[test]
fn annual_report_renders_with_charts_and_tables() {
    let (_instances, fed) = federation();
    let report = federation_report(&fed, 2017);
    let text = report.render();
    assert!(text.contains("fed-hub — 2017 annual summary"));
    assert!(text.contains("2 member instances"));
    assert!(text.contains("HPC usage"));
    assert!(text.contains("Storage"));
    assert!(text.contains("Cloud"));
    // The charts carry real month labels.
    assert!(text.contains("2017-0"));
}

#[test]
fn report_respects_time_range() {
    let (_instances, fed) = federation();
    // A report for 2016 finds membership but no realm data in range.
    let text = federation_report(&fed, 2016).render();
    assert!(text.contains("2016 annual summary"));
    // No 2017 month labels leak into the 2016 report's charts.
    assert!(!text.contains("2017-03"));
}

#[test]
fn data_dictionary_matches_explorer_vocabulary() {
    let (instances, _fed) = federation();
    let dict = data_dictionary(instances[0].levels());
    // Every metric the dictionary lists must be explorable.
    for (realm, metric) in [
        (RealmKind::Jobs, "total_su"),
        (RealmKind::Storage, "physical_usage"),
        (RealmKind::Cloud, "total_core_hours"),
    ] {
        assert!(dict.contains(&format!("`{metric}`")));
        instances[0]
            .explore(&ChartRequest::timeseries(realm, metric, Period::Month))
            .unwrap();
    }
}

#[test]
fn explorer_time_ranges_clip_exactly() {
    let (instances, _fed) = federation();
    let feb = CivilDate::new(2017, 2, 1).to_epoch();
    let mar = CivilDate::new(2017, 3, 1).to_epoch();
    let ds = instances[0]
        .explore(
            &ChartRequest::timeseries(RealmKind::Jobs, "job_count", Period::Month)
                .between(feb, mar),
        )
        .unwrap();
    assert_eq!(ds.labels, vec!["2017-02"]);
}

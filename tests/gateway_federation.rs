//! End-to-end serving-tier acceptance: a real gateway on an ephemeral
//! TCP port over a three-satellite federation.
//!
//! The scripted session: login → authorized federated query (200 with
//! correct JSON) → `If-None-Match` revalidation (304) → new rows ingested
//! and replicated → revalidation misses (200, new ETag) → a burst past
//! the rate limit (429) → graceful drain (new requests 503, health stays
//! up) — with the auth edge cases (expired cookie → 401, role without
//! realm access → 403, malformed parameters → 400) and every counter
//! visible at `/metrics` along the way. Worker panics must be zero at
//! the end: no client input may kill a worker.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use xdmod::auth::{Role, User, SESSION_TTL_SECS};
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::gateway::{serve, GatewayConfig, SESSION_COOKIE};
use xdmod::sim::{ClusterSim, ResourceProfile};

fn satellite(name: &str, resource: &str, sim_seed: u64) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.0);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 48.0, 1.0), sim_seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2))
        .unwrap();
    inst
}

/// Minimal HTTP client: one exchange, read to EOF.
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: SocketAddr, target: &str, headers: &str) -> (u16, String, String) {
    exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\n{headers}\r\n"),
    )
}

fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
    })
}

fn login(addr: SocketAddr, username: &str, password: &str) -> String {
    let creds = format!("{{\"username\":\"{username}\",\"password\":\"{password}\"}}");
    let (status, head, body) = exchange(
        addr,
        &format!(
            "POST /login HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{creds}",
            creds.len()
        ),
    );
    assert_eq!(status, 200, "login failed: {body}");
    let cookie = header_value(&head, "set-cookie").expect("login sets a cookie");
    assert!(cookie.starts_with(SESSION_COOKIE));
    format!(
        "Cookie: {}\r\n",
        cookie.split(';').next().expect("cookie pair")
    )
}

#[test]
fn gateway_serves_a_three_satellite_federation_end_to_end() {
    let mut x = satellite("site-x", "res-x", 7);
    let y = satellite("site-y", "res-y", 8);
    let z = satellite("site-z", "res-z", 9);
    let mut fed = Federation::new(FederationHub::new("hub"));
    for inst in [&x, &y, &z] {
        fed.join_tight(inst, FederationConfig::default()).unwrap();
    }
    fed.sync().unwrap();
    let auth = fed.hub_mut().auth_mut();
    auth.enroll(
        User::member("staff", "staff@hub.example", "hub.example").with_role(Role::CenterStaff),
        Some("staff-pw"),
    );
    auth.enroll(
        User::member("walt", "walt@site-x.example", "site-x.example").with_role(Role::User),
        Some("walt-pw"),
    );

    let fed = Arc::new(RwLock::new(fed));
    // Tight rate budget so the burst test trips it deterministically;
    // refill of 1/sec keeps mid-test refill negligible.
    let config = GatewayConfig::default()
        .with_workers(2)
        .with_rate_limit(40, 1);
    let handle = serve(Arc::clone(&fed), config, None).unwrap();
    let addr = handle.addr();

    // --- Anonymous surface ---------------------------------------------
    let (status, _, body) = get(addr, "/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, _, body) = get(addr, "/realms", "");
    assert_eq!(status, 200);
    for needle in ["site-x", "site-y", "site-z", "\"jobs\"", "HPC Jobs"] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }
    let (status, _, _) = get(addr, "/query?realm=jobs&metric=job_count", "");
    assert_eq!(status, 401, "query must require a session");

    // --- Login and an authorized federated query -----------------------
    let staff = login(addr, "staff", "staff-pw");
    let target = "/query?realm=jobs&metric=job_count&dimension=resource&view=aggregate";
    let (status, head, body) = get(addr, target, &staff);
    assert_eq!(status, 200, "{body}");
    let etag = header_value(&head, "etag").expect("200 carries an ETag");
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed["etag"].as_str(), Some(etag.as_str()));
    let labels: Vec<&str> = parsed["dataset"]["labels"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str())
        .collect();
    assert_eq!(labels.len(), 3, "one bar per resource: {labels:?}");
    for resource in ["res-x", "res-y", "res-z"] {
        assert!(labels.contains(&resource), "{labels:?}");
    }

    // --- ETag revalidation: unchanged data is a 304 --------------------
    let revalidate = format!("{staff}If-None-Match: {etag}\r\n");
    let (status, head, body) = get(addr, target, &revalidate);
    assert_eq!(status, 304, "{body}");
    assert!(body.is_empty());
    assert_eq!(header_value(&head, "etag").as_deref(), Some(etag.as_str()));

    // --- New rows move the watermark: revalidation misses --------------
    let sim = ClusterSim::new(ResourceProfile::generic("res-x", 128, 48.0, 1.0), 99);
    x.ingest_sacct("res-x", &sim.sacct_log(2017, 3..=3))
        .unwrap();
    fed.write().unwrap().sync().unwrap();
    let (status, head, body) = get(addr, target, &revalidate);
    assert_eq!(status, 200, "stale ETag must re-serve: {body}");
    let new_etag = header_value(&head, "etag").expect("fresh ETag");
    assert_ne!(new_etag, etag, "watermark moved, ETag must move");

    // --- Auth edge cases -----------------------------------------------
    // Expired session: minted 9 hours in the past straight on the hub.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64;
    let expired = fed
        .write()
        .unwrap()
        .hub_mut()
        .auth_mut()
        .login_local("staff", "staff-pw", now - SESSION_TTL_SECS - 3600)
        .unwrap();
    let expired_cookie = format!("Cookie: {SESSION_COOKIE}={}\r\n", expired.cookie_value());
    let (status, _, body) = get(addr, target, &expired_cookie);
    assert_eq!(status, 401, "expired cookie: {body}");

    // Role without realm access: plain users only see Jobs.
    let walt = login(addr, "walt", "walt-pw");
    let (status, _, body) = get(addr, "/query?realm=storage&metric=total_bytes", &walt);
    assert_eq!(status, 403, "user role into storage: {body}");
    let (status, _, _) = get(addr, "/query?realm=jobs&metric=job_count", &walt);
    assert_eq!(status, 200, "user role may query jobs");

    // Malformed parameters are 400s, never worker panics.
    for bad in [
        "/query?metric=job_count",                       // missing realm
        "/query?realm=jobs",                             // missing metric
        "/query?realm=jobs&metric=job_count&top_n=lots", // non-numeric
        "/query?realm=jobs&metric=job_count&start=5",    // start without end
        "/query?realm=jobs&metric=no_such_metric",       // catalog miss
        "/query?realm=jobs&metric=job_count&view=pie",   // bad view
    ] {
        let (status, _, body) = get(addr, bad, &staff);
        assert_eq!(status, 400, "{bad} -> {body}");
    }
    // Garbage session cookie is a 401, not a parse panic.
    let (status, _, _) = get(
        addr,
        target,
        &format!("Cookie: {SESSION_COOKIE}=zzzz-not-hex\r\n"),
    );
    assert_eq!(status, 401);

    // --- Burst past the rate limit: 429 with Retry-After ---------------
    let mut saw_429 = false;
    for _ in 0..60 {
        let (status, head, _) = get(addr, "/realms", "");
        if status == 429 {
            assert!(header_value(&head, "retry-after").is_some());
            saw_429 = true;
            break;
        }
        assert_eq!(status, 200);
    }
    assert!(
        saw_429,
        "60 rapid requests against a 40-token bucket must trip 429"
    );

    // --- Counters are all visible at /metrics (valve-exempt) -----------
    let (status, _, metrics) = get(addr, "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "gateway_http_requests_total",
        "gateway_http_request_seconds",
        "gateway_http_429_total",
        "gateway_http_304_total",
        "gateway_inflight_requests",
        "gateway_connections_total",
    ] {
        assert!(metrics.contains(needle), "missing {needle}");
    }

    // --- Graceful drain: new requests 503, observability stays up ------
    handle.drain();
    let (status, head, _) = get(addr, "/query?realm=jobs&metric=job_count", &staff);
    assert_eq!(status, 503, "draining gateway must refuse queries");
    assert!(header_value(&head, "retry-after").is_some());
    let (status, _, body) = get(addr, "/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");

    assert_eq!(handle.worker_panics(), 0, "no input may kill a worker");
    handle.shutdown();
}

#[test]
fn gateway_refuses_queries_while_members_are_paused() {
    let x = satellite("site-x", "res-x", 7);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.sync().unwrap();
    fed.hub_mut().auth_mut().enroll(
        User::member("staff", "s@hub", "hub").with_role(Role::CenterStaff),
        Some("pw"),
    );
    fed.go_live(Duration::from_millis(1)).unwrap();

    let fed = Arc::new(RwLock::new(fed));
    let handle = serve(Arc::clone(&fed), GatewayConfig::default(), None).unwrap();
    let addr = handle.addr();
    let staff = login(addr, "staff", "pw");
    let target = "/query?realm=jobs&metric=job_count";

    let (status, _, _) = get(addr, target, &staff);
    assert_eq!(status, 200);

    // Pause the member's replication: the unified view is now frozen —
    // the gateway must say 503, not serve it as live.
    fed.read().unwrap().pause_member("site-x").unwrap();
    let (status, _, body) = get(addr, target, &staff);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("site-x"), "names the stale member: {body}");

    fed.read().unwrap().resume_member("site-x").unwrap();
    let (status, _, _) = get(addr, target, &staff);
    assert_eq!(status, 200, "resume restores service");

    fed.write().unwrap().quiesce().unwrap();
    let (status, _, _) = get(addr, target, &staff);
    assert_eq!(status, 503, "quiesced links leave a stale view");

    assert_eq!(handle.worker_panics(), 0);
    handle.shutdown();
}

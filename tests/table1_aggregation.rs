//! Integration test reproducing **Table I** of the paper: different
//! wall-time aggregation levels on Instance A (5-hour limit), Instance B
//! (50-hour limit), and the federation hub — with the guarantee that
//! re-binning on the hub is lossless.

use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::levels::{
    hub_walltime, instance_a_walltime, instance_b_walltime, AggregationLevelsConfig, DIM_WALL_TIME,
};
use xdmod::realms::RealmKind;
use xdmod::sim::{ClusterSim, ResourceProfile};
use xdmod::warehouse::{AggFn, Aggregate, Query, Value};

/// Instance A monitors resources with a 5-hour wall limit; Instance B,
/// 50 hours — exactly Table I's setup.
fn build_federation() -> (XdmodInstance, XdmodInstance, Federation) {
    let mut a = XdmodInstance::new("instance-a");
    let sim_a = ClusterSim::new(ResourceProfile::generic("short-queue", 128, 5.0, 1.0), 41);
    a.ingest_sacct("short-queue", &sim_a.sacct_log(2017, 1..=2))
        .unwrap();
    let mut levels_a = AggregationLevelsConfig::new();
    levels_a.set(DIM_WALL_TIME, instance_a_walltime());
    a.set_levels(levels_a);
    a.aggregate().unwrap();

    let mut b = XdmodInstance::new("instance-b");
    let sim_b = ClusterSim::new(ResourceProfile::generic("long-queue", 128, 50.0, 1.0), 42);
    b.ingest_sacct("long-queue", &sim_b.sacct_log(2017, 1..=2))
        .unwrap();
    let mut levels_b = AggregationLevelsConfig::new();
    levels_b.set(DIM_WALL_TIME, instance_b_walltime());
    b.set_levels(levels_b);
    b.aggregate().unwrap();

    let mut hub = FederationHub::new("hub");
    let mut hub_levels = AggregationLevelsConfig::new();
    hub_levels.set(DIM_WALL_TIME, hub_walltime());
    hub.set_levels(hub_levels);

    let mut fed = Federation::new(hub);
    fed.join_tight(&a, FederationConfig::default()).unwrap();
    fed.join_tight(&b, FederationConfig::default()).unwrap();
    fed.sync_and_aggregate().unwrap();
    (a, b, fed)
}

/// Wall-time bin labels present in an instance's monthly aggregate.
fn bins_used(db: &xdmod::warehouse::Database, schema: &str) -> Vec<String> {
    let t = db.table(schema, "jobfact_by_month").unwrap();
    let idx = t.schema().column_index("wall_hours_bin").unwrap();
    let mut labels: Vec<String> = t
        .rows()
        .expect("rows readable")
        .iter()
        .map(|r| r[idx].as_str().unwrap_or("NULL").to_owned())
        .collect();
    labels.sort();
    labels.dedup();
    labels
}

#[test]
fn satellite_a_uses_its_own_fine_grained_levels() {
    let (a, _, _) = build_federation();
    let db = a.database();
    let db = db.read();
    let labels = bins_used(&db, &a.schema_name());
    // Every label is from Instance A's configured set (plus possibly
    // "other" for sub-second jobs).
    for l in &labels {
        assert!(
            ["1-60 seconds", "1-60 minutes", "1-5 hours", "other"].contains(&l.as_str()),
            "unexpected bin {l} on instance A"
        );
    }
    assert!(labels.contains(&"1-5 hours".to_owned()));
}

#[test]
fn satellite_b_uses_coarser_levels() {
    let (_, b, _) = build_federation();
    let db = b.database();
    let db = db.read();
    let labels = bins_used(&db, &b.schema_name());
    for l in &labels {
        assert!(
            ["1-10 hours", "10-20 hours", "20-50 hours", "other"].contains(&l.as_str()),
            "unexpected bin {l} on instance B"
        );
    }
    assert!(labels.contains(&"20-50 hours".to_owned()));
}

#[test]
fn hub_rebins_all_raw_data_under_its_own_levels() {
    let (_, _, fed) = build_federation();
    let hub_db = fed.hub().database();
    let db = hub_db.read();
    for sat in ["instance-a", "instance-b"] {
        let labels = bins_used(&db, &FederationHub::schema_for(sat));
        for l in &labels {
            assert!(
                [
                    "0-60 minutes",
                    "1-5 hours",
                    "5-10 hours",
                    "10-20 hours",
                    "20-50 hours",
                    "other"
                ]
                .contains(&l.as_str()),
                "unexpected hub bin {l} for {sat}"
            );
        }
    }
    // Instance A's data never reaches B's long bins, and vice versa: the
    // hub's 20-50 hour bin contains only instance-b jobs.
    let a_labels = bins_used(&db, &FederationHub::schema_for("instance-a"));
    assert!(!a_labels.contains(&"20-50 hours".to_owned()));
    let b_labels = bins_used(&db, &FederationHub::schema_for("instance-b"));
    assert!(b_labels.contains(&"20-50 hours".to_owned()));
}

#[test]
fn rebinning_is_lossless() {
    // "All raw instance data are fully replicated to the master, then
    // aggregated there, according to the federation hub's aggregation
    // levels, so no data are lost or changed."
    let (a, b, fed) = build_federation();
    let q = Query::new()
        .aggregate(Aggregate::count("jobs"))
        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "cpu"));
    let rs_a = a.query(RealmKind::Jobs, &q).unwrap();
    let rs_b = b.query(RealmKind::Jobs, &q).unwrap();
    let rs_hub = fed.hub().federated_query(RealmKind::Jobs, &q).unwrap();
    assert_eq!(
        rs_hub.scalar_f64("jobs").unwrap(),
        rs_a.scalar_f64("jobs").unwrap() + rs_b.scalar_f64("jobs").unwrap()
    );
    let hub_cpu = rs_hub.scalar_f64("cpu").unwrap();
    let sat_cpu = rs_a.scalar_f64("cpu").unwrap() + rs_b.scalar_f64("cpu").unwrap();
    assert!((hub_cpu - sat_cpu).abs() < 1e-6);

    // And the binned aggregate on the hub sums to the same totals.
    let hub_db = fed.hub().database();
    let db = hub_db.read();
    let mut agg_jobs = 0i64;
    for sat in ["instance-a", "instance-b"] {
        let t = db
            .table(&FederationHub::schema_for(sat), "jobfact_by_year")
            .unwrap();
        let idx = t.schema().column_index("job_count").unwrap();
        agg_jobs += t
            .rows()
            .expect("rows readable")
            .iter()
            .map(|r| r[idx].as_i64().unwrap())
            .sum::<i64>();
    }
    assert_eq!(agg_jobs as f64, rs_hub.scalar_f64("jobs").unwrap());
}

#[test]
fn changing_hub_levels_and_reaggregating() {
    // The administrator redefines hub levels "to accommodate a new
    // satellite instance", then re-aggregates all raw federation data.
    // Bin *contents* change; totals must not.
    let (_, _, mut fed) = build_federation();
    let total_before: f64 = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "t")),
        )
        .unwrap()
        .scalar_f64("t")
        .unwrap();

    let mut new_levels = AggregationLevelsConfig::new();
    new_levels.set(
        DIM_WALL_TIME,
        vec![
            xdmod::realms::LevelSpec::new("0-24 hours", 0.0, 24.0),
            xdmod::realms::LevelSpec::new("24-100 hours", 24.0, 100.0),
        ],
    );
    fed.hub_mut().set_levels(new_levels);
    fed.hub().aggregate_all().unwrap();

    let hub_db = fed.hub().database();
    let db = hub_db.read();
    let labels = bins_used(&db, &FederationHub::schema_for("instance-a"));
    assert!(labels
        .iter()
        .all(|l| l == "0-24 hours" || l == "24-100 hours" || l == "other"));
    drop(db);

    let total_after: f64 = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "t")),
        )
        .unwrap()
        .scalar_f64("t")
        .unwrap();
    assert!((total_before - total_after).abs() < 1e-9);
}

#[test]
fn timeout_jobs_land_in_the_top_bin_of_their_instance() {
    let (a, b, _) = build_federation();
    // On instance A, a TIMEOUT job ran exactly 5 h: the paper's levels
    // make 1-5 hours the top bin; [1,5) excludes 5.0, so it is "other".
    // Checking the raw data confirms the half-open semantics.
    let q = Query::new()
        .filter(xdmod::warehouse::Predicate::Eq(
            "exit_status".into(),
            Value::Str("TIMEOUT".into()),
        ))
        .aggregate(Aggregate::of(AggFn::Max, "wall_hours", "max_wall"));
    let rs = a.query(RealmKind::Jobs, &q).unwrap();
    if let Some(max_wall) = rs.scalar_f64("max_wall") {
        assert!((max_wall - 5.0).abs() < 1e-9);
    }
    let rs = b.query(RealmKind::Jobs, &q).unwrap();
    if let Some(max_wall) = rs.scalar_f64("max_wall") {
        assert!((max_wall - 50.0).abs() < 1e-9);
    }
}

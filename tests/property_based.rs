//! Property-based tests (proptest) over the workspace's core data
//! structures and invariants.

use proptest::prelude::*;
use xdmod::warehouse::binlog::{decode_payload, decode_stream, encode_payload, Binlog};
use xdmod::warehouse::time::{
    civil_from_days, days_from_civil, format_iso_datetime, parse_iso_datetime,
};
use xdmod::warehouse::{
    run_sharded, AggFn, Aggregate, Bin, Bins, ColumnType, EventPayload, LogPosition, Period,
    PoolConfig, Query, Row, SchemaBuilder, ShardedPartials, Snapshot, Table, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,32}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Time),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..6)
}

proptest! {
    // ---------------- binlog ----------------

    #[test]
    fn binlog_payload_roundtrip(schema in "[a-z_]{1,12}", table in "[a-z_]{1,12}",
                                rows in prop::collection::vec(arb_row(), 0..8)) {
        let payload = EventPayload::InsertBatch { schema, table, rows };
        let decoded = decode_payload(encode_payload(&payload)).unwrap();
        prop_assert_eq!(decoded, payload);
    }

    #[test]
    fn binlog_stream_roundtrip_and_positions(batches in prop::collection::vec(prop::collection::vec(arb_row(), 1..4), 1..6)) {
        let mut log = Binlog::new();
        for rows in &batches {
            log.append(&EventPayload::InsertBatch {
                schema: "s".into(),
                table: "t".into(),
                rows: rows.clone(),
            });
        }
        let events = decode_stream(log.export_after(LogPosition::START).unwrap()).unwrap();
        prop_assert_eq!(events.len(), batches.len());
        // Positions are dense and ordered.
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.position.seqno, i as u64 + 1);
        }
        // Reading after any prefix returns exactly the suffix.
        for k in 0..batches.len() {
            let tail = log.read_after(LogPosition { epoch: 0, seqno: k as u64 }).unwrap();
            prop_assert_eq!(tail.len(), batches.len() - k);
        }
    }

    #[test]
    fn binlog_corruption_never_panics(mut bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes must decode to Ok or Err, never panic.
        let _ = decode_stream(bytes::Bytes::from(std::mem::take(&mut bytes)));
    }

    #[test]
    fn damaged_tail_never_panics_and_repair_preserves_undamaged_prefix(
        batches in prop::collection::vec(prop::collection::vec(arb_row(), 1..4), 1..6),
        truncate_instead_of_corrupt in any::<bool>(),
        damage_at in 0.0f64..1.0,
    ) {
        let mut log = Binlog::new();
        let mut frame_ends = Vec::new(); // byte offset just past each frame
        let mut originals = Vec::new();
        for rows in &batches {
            let payload = EventPayload::InsertBatch {
                schema: "s".into(),
                table: "t".into(),
                rows: rows.clone(),
            };
            let pos = log.append(&payload);
            frame_ends.push(log.byte_len());
            originals.push((pos, payload));
        }
        let total = log.byte_len();
        // Damage an arbitrary point of the raw log: either flip the byte
        // there, or tear off everything from it to the end (torn write).
        let index = ((total - 1) as f64 * damage_at) as usize;
        if truncate_instead_of_corrupt {
            log.truncate_tail_bytes(total - index);
        } else {
            prop_assert!(log.corrupt_byte(index));
        }
        // The tailer must never panic on a damaged log; errors are fine.
        let _ = log.read_after(LogPosition::START);
        for seqno in 1..=batches.len() as u64 {
            let _ = log.record_at(seqno);
        }
        // Repair restores crash consistency...
        let repair = log.repair_tail();
        let events = log.read_after(LogPosition::START).unwrap();
        // ...keeping every record that lies fully before the damage.
        let intact = frame_ends.iter().filter(|end| **end <= index).count();
        prop_assert!(
            events.len() >= intact,
            "repair dropped undamaged records: kept {} of {} ({})",
            events.len(), intact, repair
        );
        for (ev, (pos, payload)) in events.iter().zip(&originals).take(intact) {
            prop_assert_eq!(&ev.position, pos);
            prop_assert_eq!(&ev.payload, payload);
        }
        // A repaired log is crash-consistent: a second repair is a no-op.
        prop_assert!(log.repair_tail().is_clean());
    }

    #[test]
    fn database_tail_truncation_is_always_repairable(
        n_rows in 1usize..8,
        chop in 1usize..200,
    ) {
        let mut db = xdmod::warehouse::Database::new();
        db.create_schema("s").unwrap();
        db.create_table(
            "s",
            SchemaBuilder::new("t").required("a", ColumnType::Int).build().unwrap(),
        )
        .unwrap();
        for i in 0..n_rows {
            db.insert("s", "t", vec![vec![Value::Int(i as i64)]]).unwrap();
        }
        db.truncate_binlog_tail(chop);
        let _ = db.binlog_after(LogPosition::START); // may error, must not panic
        db.repair_binlog();
        // After repair the stream reads clean and is a prefix of the
        // original history (schema + table + n_rows inserts).
        let events = db.binlog_after(LogPosition::START).unwrap();
        prop_assert!(events.len() <= 2 + n_rows);
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.position.seqno, i as u64 + 1);
        }
    }

    // ---------------- bins ----------------

    #[test]
    fn bins_partition_is_exclusive_and_exhaustive(
        edges in prop::collection::btree_set(0u32..1000, 2..10),
        probe in -100.0f64..1100.0,
    ) {
        let edges: Vec<f64> = edges.into_iter().map(f64::from).collect();
        let bins = Bins::new(
            edges.windows(2)
                .enumerate()
                .map(|(i, w)| Bin::new(&format!("b{i}"), w[0], w[1]))
                .collect(),
        ).unwrap();
        // Exactly one label applies (a real bin or "other").
        let label = bins.label_of(probe);
        let inside = bins.index_of(probe);
        match inside {
            Some(i) => {
                prop_assert!(bins.bins()[i].contains(probe));
                prop_assert_eq!(label, bins.bins()[i].label.as_str());
            }
            None => {
                prop_assert_eq!(label, "other");
                for b in bins.bins() {
                    prop_assert!(!b.contains(probe));
                }
            }
        }
    }

    // ---------------- calendar ----------------

    #[test]
    fn civil_days_roundtrip(days in -1_000_000i64..1_000_000) {
        let d = civil_from_days(days);
        prop_assert_eq!(days_from_civil(d.year, d.month, d.day), days);
    }

    #[test]
    fn iso_datetime_roundtrip(epoch in -60_000_000_000i64..60_000_000_000) {
        prop_assert_eq!(parse_iso_datetime(&format_iso_datetime(epoch)), Some(epoch));
    }

    #[test]
    fn period_buckets_bracket_their_members(epoch in -60_000_000_000i64..60_000_000_000) {
        for p in Period::ALL {
            let b = p.bucket_of(epoch);
            prop_assert!(p.bucket_start(b) <= epoch);
            prop_assert!(epoch < p.bucket_end(b));
            // Buckets tile: the end of b is the start of b+1.
            prop_assert_eq!(p.bucket_end(b), p.bucket_start(b + 1));
        }
    }

    // ---------------- query engine ----------------

    #[test]
    fn parallel_sum_equals_sequential(values in prop::collection::vec(-1e6f64..1e6, 0..300),
                                      keys in prop::collection::vec(0u8..4, 0..300)) {
        let n = values.len().min(keys.len());
        let mut table = Table::new(
            SchemaBuilder::new("t")
                .required("k", ColumnType::Str)
                .required("v", ColumnType::Float)
                .build()
                .unwrap(),
        );
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Str(format!("k{}", keys[i])), Value::Float(values[i])])
            .collect();
        table.insert_batch(rows).unwrap();

        let rs = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::of(AggFn::Sum, "v", "sum"))
            .aggregate(Aggregate::count("n"))
            .run(&table)
            .unwrap();

        // Sequential reference.
        use std::collections::BTreeMap;
        let mut expect: BTreeMap<String, (f64, i64)> = BTreeMap::new();
        for i in 0..n {
            let e = expect.entry(format!("k{}", keys[i])).or_insert((0.0, 0));
            e.0 += values[i];
            e.1 += 1;
        }
        prop_assert_eq!(rs.len(), expect.len());
        for row in &rs.rows {
            let key = row[0].as_str().unwrap();
            let (sum, count) = expect[key];
            prop_assert_eq!(row[2].as_i64().unwrap(), count);
            let got = row[1].as_f64().unwrap();
            prop_assert!((got - sum).abs() <= 1e-6 * (1.0 + sum.abs()),
                "key {}: {} vs {}", key, got, sum);
        }
    }

    #[test]
    fn count_is_invariant_under_grouping(keys in prop::collection::vec(0u8..5, 1..200)) {
        let mut table = Table::new(
            SchemaBuilder::new("t")
                .required("k", ColumnType::Str)
                .build()
                .unwrap(),
        );
        table
            .insert_batch(keys.iter().map(|k| vec![Value::Str(format!("k{k}"))]).collect())
            .unwrap();
        let total = Query::new()
            .aggregate(Aggregate::count("n"))
            .run(&table)
            .unwrap()
            .scalar_f64("n")
            .unwrap();
        let grouped = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::count("n"))
            .run(&table)
            .unwrap();
        let idx = grouped.column_index("n").unwrap();
        let sum: f64 = grouped.rows.iter().map(|r| r[idx].as_f64().unwrap()).sum();
        prop_assert_eq!(total, sum);
        prop_assert_eq!(total as usize, keys.len());
    }

    // ---------------- parallel aggregation & caching ----------------

    #[test]
    fn shard_merge_is_split_and_order_invariant(
        raw in prop::collection::vec((0u32..4096, 0u8..5), 0..200),
        cuts in prop::collection::vec(0usize..200, 0..6),
    ) {
        // Dyadic values (n/64) make float sums exact, so "invariant"
        // means byte-identical, not approximately equal.
        let mut table = Table::new(
            SchemaBuilder::new("t")
                .required("k", ColumnType::Str)
                .required("v", ColumnType::Float)
                .build()
                .unwrap(),
        );
        table
            .insert_batch(
                raw.iter()
                    .map(|(v, k)| vec![Value::Str(format!("k{k}")), Value::Float(*v as f64 / 64.0)])
                    .collect(),
            )
            .unwrap();
        let query = Query::new()
            .group_by_column("k")
            .aggregate(Aggregate::count("n"))
            .aggregate(Aggregate::of(AggFn::Sum, "v", "sum"))
            .aggregate(Aggregate::of(AggFn::Avg, "v", "avg"))
            .aggregate(Aggregate::of(AggFn::Min, "v", "min"))
            .aggregate(Aggregate::of(AggFn::Max, "v", "max"));
        let schema = table.schema();
        let rows = table.rows().expect("rows readable");

        // Split the row stream at arbitrary (sorted, deduped) cut points.
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(rows.len())).collect();
        cuts.push(0);
        cuts.push(rows.len());
        cuts.sort_unstable();
        cuts.dedup();
        let chunks: Vec<&[Row]> = cuts.windows(2).map(|w| &rows[w[0]..w[1]]).collect();
        let partials: Vec<_> = chunks
            .iter()
            .map(|c| query.partial_aggregate(schema, c.iter()).unwrap())
            .collect();

        // Folding shards forward and backward must finalize identically
        // to the unsplit whole: merge is associative and commutative.
        let fold = |order: Vec<xdmod::warehouse::PartialAggregation>| {
            let mut acc = xdmod::warehouse::PartialAggregation::default();
            for p in order {
                acc.merge(p);
            }
            query.finalize_partials(schema, acc).unwrap()
        };
        let forward = fold(partials.clone());
        let mut reversed = partials;
        reversed.reverse();
        let backward = fold(reversed);
        let whole = query
            .finalize_partials(schema, query.partial_aggregate(schema, rows.iter()).unwrap())
            .unwrap();
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(&forward, &query.run(&table).unwrap());
    }

    #[test]
    fn sharded_equals_unsharded_for_any_pool_geometry(
        raw in prop::collection::vec((0u32..4096, 0u8..4, 0i64..200), 0..200),
        workers in 0usize..9,
        shards in 0usize..17,
    ) {
        let mut table = Table::new(
            SchemaBuilder::new("t")
                .required("k", ColumnType::Str)
                .required("v", ColumnType::Float)
                .required("ts", ColumnType::Time)
                .build()
                .unwrap(),
        );
        table
            .insert_batch(
                raw.iter()
                    .map(|(v, k, d)| {
                        vec![
                            Value::Str(format!("k{k}")),
                            Value::Float(*v as f64 / 64.0),
                            Value::Time(*d * 86_400),
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        let query = Query::new()
            .group_by_period("ts", Period::Month)
            .group_by_column("k")
            .aggregate(Aggregate::count("n"))
            .aggregate(Aggregate::of(AggFn::Sum, "v", "sum"));
        let pool = PoolConfig::new(workers).with_shards(shards);
        let got = run_sharded(
            &query,
            &table,
            pool,
            &xdmod::telemetry::MetricsRegistry::disabled(),
            "t",
        )
        .unwrap();
        prop_assert_eq!(got, query.run(&table).unwrap());
    }

    // The incremental-aggregation algebra: folding rows into retained
    // state in two stages, split at an arbitrary watermark point, must
    // finalize byte-identically to a single-pass recompute of the whole
    // stream — for every aggregation function at once. Dyadic values
    // (n/64) keep float sums exact, so equality is `==`, not epsilon.
    #[test]
    fn delta_fold_equals_recompute_at_any_watermark_split(
        raw in prop::collection::vec((0u32..4096, 0u8..5, 0i64..200, any::<bool>()), 0..200),
        split in 0usize..201,
        workers in 0usize..5,
        shards in 0usize..9,
    ) {
        let mut table = Table::new(
            SchemaBuilder::new("t")
                .required("k", ColumnType::Str)
                .required("v", ColumnType::Float)
                .nullable("ts", ColumnType::Time)
                .build()
                .unwrap(),
        );
        table
            .insert_batch(
                raw.iter()
                    .map(|(v, k, d, null_ts)| {
                        vec![
                            Value::Str(format!("k{k}")),
                            Value::Float(*v as f64 / 64.0),
                            if *null_ts { Value::Null } else { Value::Time(*d * 86_400) },
                        ]
                    })
                    .collect(),
            )
            .unwrap();
        let query = Query::new()
            .group_by_period("ts", Period::Month)
            .group_by_column("k")
            .aggregate(Aggregate::count("n"))
            .aggregate(Aggregate::of(AggFn::Sum, "v", "sum"))
            .aggregate(Aggregate::of(AggFn::Avg, "v", "avg"))
            .aggregate(Aggregate::of(AggFn::Min, "v", "min"))
            .aggregate(Aggregate::of(AggFn::Max, "v", "max"))
            .aggregate(Aggregate::of(AggFn::CountDistinct, "v", "uniq"));
        let schema = table.schema();
        let rows = table.rows().expect("rows readable");
        let split = split.min(rows.len());
        let (a, b) = rows.split_at(split);
        let whole = query.run(&table).unwrap();

        // fold(fold(P, a), b) == recompute(a ++ b), serial primitive.
        let mut partial = xdmod::warehouse::PartialAggregation::default();
        query.fold_partial(schema, &mut partial, a.iter()).unwrap();
        query.fold_partial(schema, &mut partial, b.iter()).unwrap();
        prop_assert_eq!(&query.finalize_partials(schema, partial).unwrap(), &whole);

        // The same algebra through the sharded retained state the delta
        // engine actually keeps: cold build over the prefix, one delta
        // batch for the suffix, finalize.
        let pool = PoolConfig::new(workers).with_shards(shards);
        let telemetry = xdmod::telemetry::MetricsRegistry::disabled();
        let mut sp = ShardedPartials::build(&query, schema, a, pool, &telemetry, "t").unwrap();
        let dirty = sp.fold_batch(&query, schema, b).unwrap();
        prop_assert!(dirty <= sp.shard_count());
        prop_assert_eq!(sp.rows_folded(), rows.len());
        prop_assert_eq!(&sp.finalize(&query, schema).unwrap(), &whole);
        // And against the one-shot sharded engine, same pool geometry.
        prop_assert_eq!(
            &run_sharded(&query, &table, pool, &telemetry, "t").unwrap(),
            &whole
        );
    }

    #[test]
    fn watermarks_and_rebuild_tickets_track_binlog_ingest(
        batches in prop::collection::vec(prop::collection::vec(0i64..1000, 1..5), 1..8),
        external_rebuilds in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let mut db = xdmod::warehouse::Database::new();
        db.create_schema("s").unwrap();
        db.create_table(
            "s",
            SchemaBuilder::new("t").required("a", ColumnType::Int).build().unwrap(),
        )
        .unwrap();
        prop_assert_eq!(db.table_watermark("s", "t"), None);
        let mut last_seqno = 0u64;
        let mut last_generation = db.rebuild_generation();
        for (i, rows) in batches.iter().enumerate() {
            let before = db.rebuild_ticket("s", "t");
            let pos = db
                .insert("s", "t", rows.iter().map(|v| vec![Value::Int(*v)]).collect())
                .unwrap();
            let after = db.rebuild_ticket("s", "t");
            // The watermark is exactly the binlog position of the ingest
            // and advances strictly monotonically with the seqno.
            prop_assert_eq!(db.table_watermark("s", "t"), Some(pos));
            prop_assert!(pos.seqno > last_seqno);
            last_seqno = pos.seqno;
            // Ingest invalidates the pre-ingest ticket; a quiet reissue
            // re-validates.
            prop_assert_ne!(before, after);
            prop_assert_eq!(after, db.rebuild_ticket("s", "t"));
            if external_rebuilds.get(i).copied().unwrap_or(false) {
                // External rebuilds (resync, restore) bump the generation
                // monotonically and invalidate even a fresh ticket.
                let generation = db.note_external_rebuild();
                prop_assert!(generation > last_generation);
                last_generation = generation;
                prop_assert_ne!(after, db.rebuild_ticket("s", "t"));
            }
        }
        // Watermarks are per-table: a table never written has none.
        prop_assert_eq!(db.table_watermark("s", "untouched"), None);
    }

    // ---------------- snapshots & checksums ----------------

    #[test]
    fn snapshot_roundtrip_preserves_checksums(rows in prop::collection::vec(
        (any::<i64>(), -1e9f64..1e9), 0..50))
    {
        let mut db = xdmod::warehouse::Database::new();
        db.create_schema("s").unwrap();
        db.create_table(
            "s",
            SchemaBuilder::new("t")
                .required("a", ColumnType::Int)
                .required("b", ColumnType::Float)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "s",
            "t",
            rows.iter().map(|(a, b)| vec![Value::Int(*a), Value::Float(*b)]).collect(),
        )
        .unwrap();
        let snap = Snapshot::capture(&db).unwrap();
        let bytes = snap.to_bytes().unwrap();
        let mut restored = xdmod::warehouse::Database::new();
        Snapshot::from_bytes(&bytes).unwrap().restore_into(&mut restored).unwrap();
        prop_assert_eq!(
            db.table("s", "t").unwrap().content_checksum(),
            restored.table("s", "t").unwrap().content_checksum()
        );
    }

    #[test]
    fn content_checksum_is_permutation_invariant(mut rows in prop::collection::vec(any::<i64>(), 1..30), rotate in 0usize..30) {
        let schema = SchemaBuilder::new("t").required("a", ColumnType::Int).build().unwrap();
        let mut t1 = Table::new(schema.clone());
        t1.insert_batch(rows.iter().map(|v| vec![Value::Int(*v)]).collect()).unwrap();
        let k = rotate % rows.len();
        rows.rotate_left(k);
        let mut t2 = Table::new(schema);
        t2.insert_batch(rows.iter().map(|v| vec![Value::Int(*v)]).collect()).unwrap();
        prop_assert_eq!(t1.content_checksum(), t2.content_checksum());
    }

    // ---------------- auth ----------------

    #[test]
    fn tampered_assertions_never_validate(subject in "[a-z]{1,10}", attacker in "[a-z]{1,10}") {
        use xdmod::auth::Assertion;
        prop_assume!(subject != attacker);
        let a = Assertion::issue("idp", &subject, "sp", Default::default(), 1000, 300, 42);
        let mut forged = a.clone();
        forged.subject = attacker;
        prop_assert!(forged.validate(42, "sp", 1100).is_err());
        // The untampered one still validates.
        prop_assert!(a.validate(42, "sp", 1100).is_ok());
    }

    #[test]
    fn identity_dedup_is_idempotent(emails in prop::collection::vec(0u8..5, 1..20)) {
        use xdmod::auth::{IdentityMap, User};
        let mut map = IdentityMap::new();
        for (i, e) in emails.iter().enumerate() {
            map.register(
                &format!("inst{}", i % 3),
                &User::member(&format!("u{i}"), &format!("person{e}@x.edu"), "x.edu"),
            );
        }
        map.auto_deduplicate();
        let persons = map.person_count();
        // Distinct emails = distinct persons after dedup.
        let mut uniq = emails.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(persons, uniq.len());
        // Running again changes nothing.
        prop_assert_eq!(map.auto_deduplicate(), 0);
        prop_assert_eq!(map.person_count(), uniq.len());
    }

    // ---------------- SU conversion ----------------

    #[test]
    fn su_conversion_is_linear(factor in 0.01f64..100.0, h1 in 0.0f64..1e6, h2 in 0.0f64..1e6) {
        use xdmod::realms::SuConverter;
        let mut c = SuConverter::new();
        c.set_factor("r", factor);
        let lhs = c.xdsu("r", h1 + h2);
        let rhs = c.xdsu("r", h1) + c.xdsu("r", h2);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
        prop_assert!((c.nu("r", h1) - c.xdsu("r", h1) * xdmod::realms::NUS_PER_XDSU).abs() < 1e-6);
    }

    // ---------------- alert flap damping ----------------

    // An arbitrary interleaving of fault/ok observations over a handful
    // of (family, target) identities, at arbitrary (monotone) times,
    // must never violate the engine's core invariants: at most one
    // alert per identity, a stable id across the whole run, a monotone
    // generation counter, and flap-damped notifications — a re-fire
    // within the debounce window folds into the existing alert instead
    // of dispatching a fresh notification.
    #[test]
    fn alert_engine_folds_flaps_and_keeps_identity(
        steps in prop::collection::vec((0u8..2, 0usize..15, 1u64..2_000), 1..60),
    ) {
        use xdmod::alerts::{fingerprint, format_alert_id, AlertEngine, AlertRules, AlertState, FAMILIES};

        let targets = ["x", "y", "z"];
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut now_ms = 0u64;
        let mut last_generation = engine.generation();
        let mut seen_ids: std::collections::HashMap<(usize, usize), String> =
            std::collections::HashMap::new();

        for (op, pick, dt) in steps {
            now_ms += dt;
            let family_at = pick % FAMILIES.len();
            let family = FAMILIES[family_at];
            let target = targets[pick % targets.len()];
            let sent_before = engine.notifications_sent() + engine.notifications_suppressed();
            if op == 0 {
                let was_open = engine
                    .get(&format_alert_id(fingerprint(family, target)))
                    .map(|a| a.state.is_open())
                    .unwrap_or(false);
                let id = engine.observe_fault(family, target, "prop fault", now_ms);
                // Identity is a pure function of (family, target).
                let prior = seen_ids
                    .entry((family_at, pick % targets.len()))
                    .or_insert_with(|| id.clone());
                prop_assert_eq!(&*prior, &id);
                // Folding into an open alert never notifies; opening or
                // reopening dispatches exactly one (sent or suppressed).
                let dispatched =
                    engine.notifications_sent() + engine.notifications_suppressed() - sent_before;
                prop_assert_eq!(dispatched, u64::from(!was_open));
            } else {
                engine.observe_ok(family, target, now_ms);
            }
            engine.tick(now_ms);
            // Generation only moves forward.
            prop_assert!(engine.generation() >= last_generation);
            last_generation = engine.generation();

            let alerts = engine.alerts();
            // At most one alert per identity, ever.
            let mut keys: Vec<(&str, &str)> = alerts
                .iter()
                .map(|a| (a.family.as_str(), a.target.as_str()))
                .collect();
            keys.sort_unstable();
            let total = keys.len();
            keys.dedup();
            prop_assert_eq!(keys.len(), total, "duplicate alert identities");
            for alert in &alerts {
                prop_assert!(alert.occurrences >= 1);
                prop_assert!(alert.occurrences > alert.flaps);
                // Acked-by only while acknowledged (never set here).
                prop_assert!(alert.acked_by.is_none() || alert.state == AlertState::Acknowledged);
            }
        }
    }

    // ---------------- cold-shard paging ----------------

    // An arbitrary interleaving of ingests and queries against a paged
    // database, with an arbitrary — and, under shrinking, pathologically
    // tiny — byte budget and page count, must be indistinguishable from
    // a fully-resident twin fed the same rows: every query result, the
    // final row stream, and the content checksum are byte-identical.
    // Between operations nothing is pinned, so the working set obeys the
    // budget outright (scans may transiently hold one pinned page above
    // it, but never past their own completion). Dyadic values (n/64)
    // keep float sums exact, so equality is `==`, not epsilon.
    #[test]
    fn paged_database_is_indistinguishable_from_resident_twin(
        ops in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..5, 0u32..4096, 0i64..60), 1..8)),
            1..30,
        ),
        budget in 0u64..4096,
        pages in 1u32..10,
    ) {
        use xdmod::warehouse::{Database, PagingConfig};
        static PAGING_DIR_SEQ: std::sync::atomic::AtomicUsize =
            std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xdmod-paging-prop-{}-{}",
            std::process::id(),
            PAGING_DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let schema = SchemaBuilder::new("jobfact")
            .required("resource", ColumnType::Str)
            .required("end_time", ColumnType::Time)
            .required("cpu_hours", ColumnType::Float)
            .build()
            .unwrap();
        let mut paged = Database::new();
        paged
            .enable_paging(
                PagingConfig::new(&dir)
                    .budget_bytes(budget)
                    .pages_per_table(pages),
            )
            .unwrap();
        let mut resident = Database::new();
        for db in [&mut paged, &mut resident] {
            db.create_schema("s").unwrap();
            db.create_table("s", schema.clone()).unwrap();
        }
        for (op, payload) in &ops {
            if *op == 0 {
                let batch: Vec<Row> = payload
                    .iter()
                    .map(|(k, v, d)| {
                        vec![
                            Value::Str(format!("res-{k}")),
                            Value::Time(*d * 86_400),
                            Value::Float(*v as f64 / 64.0),
                        ]
                    })
                    .collect();
                paged.insert("s", "jobfact", batch.clone()).unwrap();
                resident.insert("s", "jobfact", batch).unwrap();
            } else {
                let query = match (*op, payload[0].0 % 2) {
                    (1, 0) => Query::new()
                        .group_by_column("resource")
                        .aggregate(Aggregate::count("n"))
                        .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
                    (1, _) => Query::new()
                        .group_by_period("end_time", Period::Day)
                        .aggregate(Aggregate::count("n"))
                        .aggregate(Aggregate::of(AggFn::Max, "cpu_hours", "peak")),
                    _ => Query::new()
                        .aggregate(Aggregate::count("n"))
                        .aggregate(Aggregate::of(AggFn::Min, "cpu_hours", "low")),
                };
                let got = paged.query_sharded("s", "jobfact", &query).unwrap();
                let want = resident.query_sharded("s", "jobfact", &query).unwrap();
                prop_assert_eq!(got, want, "paged result diverged (budget {})", budget);
            }
            let stats = paged.residency_stats().unwrap();
            prop_assert!(
                stats.resident_bytes <= budget,
                "resident {} bytes over the {}-byte budget between ops: {:?}",
                stats.resident_bytes, budget, stats
            );
        }
        {
            let got = paged.table("s", "jobfact").unwrap();
            let want = resident.table("s", "jobfact").unwrap();
            prop_assert_eq!(got.len(), want.len());
            prop_assert_eq!(got.content_checksum(), want.content_checksum());
            let got_rows = got.rows().unwrap();
            let want_rows = want.rows().unwrap();
            prop_assert_eq!(&got_rows[..], &want_rows[..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Integration tests asserting the *shape* of every data figure in the
//! paper, driven through the full pipeline (simulate → ingest →
//! federate → query → chart).

use xdmod::chart::Dataset;
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::cloud::avg_core_hours_per_vm;
use xdmod::realms::levels::{fig7_vm_memory_levels, AggregationLevelsConfig, DIM_VM_MEMORY};
use xdmod::realms::RealmKind;
use xdmod::sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};
use xdmod::warehouse::{AggFn, Aggregate, GroupKey, OrderBy, Period, Query};

/// Build the Fig. 1 scenario: the three 2017 XSEDE-like resources on one
/// instance (XSEDE XDMoD monitors many resources in one install).
fn xsede_instance() -> XdmodInstance {
    let mut inst = XdmodInstance::new("xsede");
    for (profile, seed) in [
        (ResourceProfile::comet(), 101),
        (ResourceProfile::stampede(), 102),
        (ResourceProfile::stampede2(), 103),
    ] {
        inst.set_su_factor(&profile.name, profile.hpl_gflops_per_core);
        let name = profile.name.clone();
        let sim = ClusterSim::new(profile, seed);
        inst.ingest_sacct(&name, &sim.sacct_log(2017, 1..=12)).unwrap();
    }
    inst
}

#[test]
fn fig1_top_three_resources_by_total_su() {
    let inst = xsede_instance();
    // "Top XSEDE resources in 2017, by total SUs charged": rank by SUM.
    let rs = inst
        .query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_column("resource")
                .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su"))
                .order(OrderBy::ColumnDesc("total_su".into()))
                .limit(3),
        )
        .unwrap();
    let order: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(
        order,
        vec!["comet", "stampede2", "stampede"],
        "Fig. 1 ordering violated"
    );
}

#[test]
fn fig1_monthly_series_shapes() {
    let inst = xsede_instance();
    // The paper's chart covers calendar 2017; jobs spilling into 2018
    // are excluded by the time-range filter, as in the XDMoD UI.
    let y2017 = xdmod::warehouse::CivilDate::new(2017, 1, 1).to_epoch();
    let y2018 = xdmod::warehouse::CivilDate::new(2018, 1, 1).to_epoch();
    let rs = inst
        .query(
            RealmKind::Jobs,
            &Query::new()
                .filter(xdmod::warehouse::Predicate::TimeRange {
                    column: "end_time".into(),
                    start: y2017,
                    end: y2018,
                })
                .group_by_period("end_time", Period::Month)
                .group_by_column("resource")
                .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su")),
        )
        .unwrap();
    let ds = Dataset::timeseries(
        "Fig 1",
        "XD SU",
        &rs,
        Period::Month,
        "end_time_month",
        Some("resource"),
        "total_su",
    )
    .unwrap();

    // Stampede2 is absent early in the year and strong late.
    let s2 = ds.series_named("stampede2").unwrap();
    assert!(s2.values[0].is_none(), "stampede2 should be dark in January");
    assert!(s2.values[11].unwrap_or(0.0) > 0.0);

    // Stampede declines: December well below January.
    let s1 = ds.series_named("stampede").unwrap();
    let jan = s1.values[0].unwrap();
    let dec = s1.values[11].unwrap_or(0.0);
    assert!(dec < jan * 0.3, "stampede should ramp down (jan {jan}, dec {dec})");

    // Comet is comparatively steady: every month within 3x of its mean.
    let comet = ds.series_named("comet").unwrap();
    let vals: Vec<f64> = comet.values.iter().flatten().copied().collect();
    assert_eq!(vals.len(), 12);
    let mean = vals.iter().sum::<f64>() / 12.0;
    for v in vals {
        assert!(v > mean / 3.0 && v < mean * 3.0);
    }

    // Late-year crossover: Stampede2's December exceeds Stampede's.
    assert!(s2.values[11].unwrap() > dec);
}

#[test]
fn fig6_storage_file_count_and_usage_grow_monthly() {
    let mut inst = XdmodInstance::new("ccr");
    for doc in StorageSim::ccr(7).year_documents(2017) {
        inst.ingest_storage_json(&doc).unwrap();
    }
    let rs = inst
        .query(
            RealmKind::Storage,
            &Query::new()
                .group_by_period("ts", Period::Month)
                .aggregate(Aggregate::of(AggFn::Sum, "file_count", "files"))
                .aggregate(Aggregate::of(AggFn::Sum, "physical_usage_gb", "physical")),
        )
        .unwrap();
    assert_eq!(rs.len(), 12);
    let files = rs.column("files").unwrap();
    let physical = rs.column("physical").unwrap();
    for pair in files.windows(2) {
        assert!(pair[1].as_f64().unwrap() > pair[0].as_f64().unwrap());
    }
    for pair in physical.windows(2) {
        assert!(pair[1].as_f64().unwrap() > pair[0].as_f64().unwrap());
    }
}

#[test]
fn fig7_avg_core_hours_per_vm_increase_with_memory_bin() {
    let mut inst = XdmodInstance::new("ccr");
    let sim = CloudSim::new("ccr-cloud", 40, 9);
    inst.ingest_cloud_feed(&sim.event_feed(2017), CloudSim::horizon(2017))
        .unwrap();

    let bins = {
        let mut cfg = AggregationLevelsConfig::new();
        cfg.set(DIM_VM_MEMORY, fig7_vm_memory_levels());
        cfg.bins_for(DIM_VM_MEMORY).unwrap()
    };
    let rs = inst
        .query(
            RealmKind::Cloud,
            &Query::new()
                .group(GroupKey::Binned("memory_gb".into(), bins))
                .aggregate(Aggregate::of(AggFn::Sum, "core_hours", "total_core_hours"))
                .aggregate(Aggregate::of(AggFn::CountDistinct, "vm_id", "num_vms")),
        )
        .unwrap();
    let labels: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    let avg = avg_core_hours_per_vm(&rs).unwrap();

    // Order the paper's four bins and check monotone increase.
    let want = ["<1 GB", "1-2 GB", "2-4 GB", "4-8 GB"];
    let mut ordered = Vec::new();
    for w in want {
        let idx = labels.iter().position(|l| l == w).unwrap_or_else(|| {
            panic!("bin {w} missing from result ({labels:?})")
        });
        ordered.push(avg[idx]);
    }
    for pair in ordered.windows(2) {
        assert!(
            pair[1] > pair[0],
            "Fig. 7 shape violated: {ordered:?} not increasing"
        );
    }
}

#[test]
fn fig1_reproduces_identically_through_a_federation() {
    // The figure must look the same whether charted on the monitoring
    // instance or on a federation hub fed by it.
    let inst = xsede_instance();
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&inst, FederationConfig::default()).unwrap();
    fed.sync().unwrap();

    let q = Query::new()
        .group_by_column("resource")
        .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su"))
        .order(OrderBy::ColumnDesc("total_su".into()));
    let local = inst.query(RealmKind::Jobs, &q).unwrap();
    let federated = fed.hub().federated_query(RealmKind::Jobs, &q).unwrap();
    assert_eq!(local, federated);
}

//! End-to-end integration: simulators → shredders → warehouse →
//! replication → federation hub → charts, across every crate in the
//! workspace.

use xdmod::chart::Dataset;
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::levels::{hub_walltime, AggregationLevelsConfig, DIM_WALL_TIME};
use xdmod::realms::RealmKind;
use xdmod::sim::{CloudSim, ClusterSim, ResourceProfile, StorageSim};
use xdmod::warehouse::{AggFn, Aggregate, Period, Query};

fn hpc_instance(
    name: &str,
    resource: &str,
    seed: u64,
    months: std::ops::RangeInclusive<u8>,
) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    inst.set_su_factor(resource, 1.5);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 256, 48.0, 1.5), seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, months))
        .unwrap();
    inst
}

#[test]
fn federated_totals_equal_sum_of_satellite_totals() {
    let x = hpc_instance("x", "res-x", 1, 1..=3);
    let y = hpc_instance("y", "res-y", 2, 1..=3);

    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_loose(&y, FederationConfig::default()).unwrap();
    fed.sync().unwrap();

    let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
    let local_x = x
        .query(RealmKind::Jobs, &q)
        .unwrap()
        .scalar_f64("total")
        .unwrap();
    let local_y = y
        .query(RealmKind::Jobs, &q)
        .unwrap()
        .scalar_f64("total")
        .unwrap();
    let fed_total = fed
        .hub()
        .federated_query(RealmKind::Jobs, &q)
        .unwrap()
        .scalar_f64("total")
        .unwrap();
    assert!((fed_total - (local_x + local_y)).abs() < 1e-6);
}

#[test]
fn hub_aggregates_with_its_own_levels_losslessly() {
    let x = hpc_instance("x", "res-x", 3, 1..=2);
    let mut fed = Federation::new(FederationHub::new("hub"));
    let mut levels = AggregationLevelsConfig::new();
    levels.set(DIM_WALL_TIME, hub_walltime());
    fed.hub_mut().set_levels(levels);
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.sync_and_aggregate().unwrap();

    // Sum of the hub's binned aggregate equals the raw federated sum:
    // "all raw instance data are fully replicated to the master, then
    // aggregated there ... so no data are lost or changed".
    let hub_db = fed.hub().database();
    let hub = hub_db.read();
    let agg = hub
        .table(&FederationHub::schema_for("x"), "jobfact_by_year")
        .unwrap();
    let cpu_idx = agg.schema().column_index("total_cpu_hours").unwrap();
    let agg_sum: f64 = agg
        .rows()
        .expect("rows readable")
        .iter()
        .map(|r| r[cpu_idx].as_f64().unwrap())
        .sum();
    drop(hub);

    let raw_sum = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total")),
        )
        .unwrap()
        .scalar_f64("total")
        .unwrap();
    assert!((agg_sum - raw_sum).abs() < 1e-6);
}

#[test]
fn live_threaded_replication_matches_polled() {
    use std::time::Duration;
    use xdmod::replication::{LinkConfig, LiveReplicator, Replicator};

    let mut inst = hpc_instance("x", "res-x", 4, 1..=1);
    let hub = xdmod::warehouse::shared(xdmod::warehouse::Database::new());
    let rep = Replicator::new(
        inst.database(),
        std::sync::Arc::clone(&hub),
        LinkConfig::renaming(&inst.schema_name(), "inst_x"),
    );
    let live = LiveReplicator::start(rep, Duration::from_millis(1));

    // Keep ingesting while the replicator streams.
    let sim = ClusterSim::new(ResourceProfile::generic("res-x", 256, 48.0, 1.5), 5);
    inst.ingest_sacct("res-x", &sim.sacct_log(2017, 2..=2))
        .unwrap();
    inst.ingest_sacct("res-x", &sim.sacct_log(2017, 3..=3))
        .unwrap();

    let rep = live.stop().unwrap();
    assert!(rep.stats().events_applied > 0);
    let expected = inst.fact_rows(RealmKind::Jobs).unwrap();
    assert_eq!(
        hub.read().table("inst_x", "jobfact").unwrap().len(),
        expected
    );
}

#[test]
fn all_three_heterogeneous_realms_federate() {
    let mut ccr = XdmodInstance::new("ccr");
    let hpc = ClusterSim::new(ResourceProfile::generic("rush", 128, 48.0, 1.0), 6);
    ccr.ingest_sacct("rush", &hpc.sacct_log(2017, 1..=2))
        .unwrap();
    ccr.ingest_storage_json(&StorageSim::ccr(6).json_document(2017, 1))
        .unwrap();
    let cloud = CloudSim::new("ccr-cloud", 10, 6);
    ccr.ingest_cloud_feed(&cloud.event_feed(2017), CloudSim::horizon(2017))
        .unwrap();
    // SUPReMM data exists locally...
    let jobs = hpc.jobs(2017, 1..=1);
    ccr.ingest_pcp(&hpc.pcp_archive(&jobs[..5])).unwrap();

    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&ccr, FederationConfig::default_realms())
        .unwrap();
    fed.sync().unwrap();

    assert!(fed.hub().federated_fact_rows(RealmKind::Jobs) > 0);
    assert!(fed.hub().federated_fact_rows(RealmKind::Storage) > 0);
    assert!(fed.hub().federated_fact_rows(RealmKind::Cloud) > 0);
    // ...but never crosses to the hub (§II-C5).
    assert_eq!(fed.hub().federated_fact_rows(RealmKind::Supremm), 0);
    assert!(ccr.fact_rows(RealmKind::Supremm).unwrap() > 0);
}

#[test]
fn drill_down_matches_filtered_totals() {
    // XDMoD's drill-down is filter + regroup; verify the algebra: the sum
    // over a drill-down equals the parent group's value.
    let x = hpc_instance("x", "res-x", 7, 1..=1);
    let total = x
        .query(
            RealmKind::Jobs,
            &Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "t")),
        )
        .unwrap()
        .scalar_f64("t")
        .unwrap();
    let by_user = x
        .query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_column("user")
                .aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "t")),
        )
        .unwrap();
    let idx = by_user.column_index("t").unwrap();
    let sum: f64 = by_user.rows.iter().map(|r| r[idx].as_f64().unwrap()).sum();
    assert!((sum - total).abs() < 1e-6);
}

#[test]
fn federated_chart_renders_per_resource_series() {
    let x = hpc_instance("x", "res-x", 8, 1..=3);
    let y = hpc_instance("y", "res-y", 9, 2..=4);
    let mut fed = Federation::new(FederationHub::new("hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_tight(&y, FederationConfig::default()).unwrap();
    fed.sync().unwrap();

    let rs = fed
        .hub()
        .federated_query(
            RealmKind::Jobs,
            &Query::new()
                .group_by_period("end_time", Period::Month)
                .group_by_column("resource")
                .aggregate(Aggregate::of(AggFn::Sum, "su_charged", "total_su")),
        )
        .unwrap();
    let ds = Dataset::timeseries(
        "SUs",
        "XD SU",
        &rs,
        Period::Month,
        "end_time_month",
        Some("resource"),
        "total_su",
    )
    .unwrap();
    assert_eq!(ds.series.len(), 2);
    assert!(ds.width() >= 3);
    // res-x has no April data; its series must end in a gap or the chart
    // covers exactly both ranges.
    let res_x = ds.series_named("res-x").unwrap();
    assert!(res_x.values.last().unwrap().is_none() || ds.width() == 3);
    let rendered = xdmod::chart::ascii_chart(&ds, 10);
    assert!(rendered.contains("res-x"));
    assert!(rendered.contains("res-y"));
}

#[test]
fn version_mismatch_blocks_membership_end_to_end() {
    use xdmod::core::XdmodVersion;
    let old = XdmodInstance::with_version("old", XdmodVersion::new(7, 0, 0));
    let mut fed = Federation::new(FederationHub::new("hub"));
    assert!(fed.join_tight(&old, FederationConfig::default()).is_err());
    assert!(fed.hub().satellites().is_empty());
}

//! Self-monitoring end to end: a hub plus two live-replicating
//! satellites, all reporting into the hub's metrics registry, capped by
//! the `ops_report()` dashboard — the monitoring system monitoring
//! itself.

use std::time::Duration;
use xdmod::core::{Federation, FederationConfig, FederationHub, XdmodInstance};
use xdmod::realms::RealmKind;
use xdmod::sim::{ClusterSim, ResourceProfile};
use xdmod::warehouse::{AggFn, Aggregate, Query};

/// Poll `cond` for up to ~5 s; panic with `what` if it never holds.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn satellite(name: &str, resource: &str, seed: u64) -> XdmodInstance {
    let mut inst = XdmodInstance::new(name);
    let sim = ClusterSim::new(ResourceProfile::generic(resource, 128, 24.0, 1.0), seed);
    inst.ingest_sacct(resource, &sim.sacct_log(2017, 1..=2)).unwrap();
    inst
}

#[test]
fn federation_self_monitoring_end_to_end() {
    let mut x = satellite("x", "res-x", 11);
    let y = satellite("y", "res-y", 22);
    let x_jobs = x.fact_rows(RealmKind::Jobs).unwrap();
    let y_jobs = y.fact_rows(RealmKind::Jobs).unwrap();
    assert!(x_jobs > 0 && y_jobs > 0);

    let mut fed = Federation::new(FederationHub::new("ops-hub"));
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.join_tight(&y, FederationConfig::default()).unwrap();
    assert_eq!(fed.go_live(Duration::from_millis(1)).unwrap(), 2);
    eventually("both satellites to drain", || {
        fed.hub().federated_fact_rows(RealmKind::Jobs) == x_jobs + y_jobs
    });

    // A maintenance window on x: lag becomes visible on the hub's gauges
    // while y keeps replicating.
    fed.pause_member("x").unwrap();
    let sim = ClusterSim::new(ResourceProfile::generic("res-x", 128, 24.0, 1.0), 33);
    x.ingest_sacct("res-x", &sim.sacct_log(2017, 3..=3)).unwrap();
    let backlog = x.fact_rows(RealmKind::Jobs).unwrap() - x_jobs;
    eventually("lag gauge to expose the backlog", || {
        fed.hub()
            .telemetry()
            .snapshot()
            .gauge("replication_lag_events", &[("link", "x")])
            .is_some_and(|lag| lag > 0.0)
    });
    // Wall-clock lag is finite and positive while behind.
    eventually("wall-clock lag to register", || {
        fed.hub()
            .telemetry()
            .snapshot()
            .gauge("replication_lag_seconds", &[("link", "x")])
            .is_some_and(|s| s > 0.0 && s.is_finite())
    });

    fed.resume_member("x").unwrap();
    eventually("x's backlog to drain", || {
        fed.hub().federated_fact_rows(RealmKind::Jobs) == x_jobs + y_jobs + backlog
    });
    assert_eq!(fed.quiesce().unwrap(), 2);

    let snap = fed.hub().telemetry().snapshot();
    // Lag settled back to zero after quiescence.
    assert_eq!(snap.gauge("replication_lag_events", &[("link", "x")]), Some(0.0));
    assert_eq!(snap.gauge("replication_lag_seconds", &[("link", "x")]), Some(0.0));
    // Per-link applied counts match what each satellite shipped.
    assert_eq!(
        snap.counter("replication_events_applied_total", &[("link", "x")])
            .map(|n| n > 0),
        Some(true)
    );
    assert_eq!(
        snap.counter("replication_events_applied_total", &[("link", "y")])
            .map(|n| n > 0),
        Some(true)
    );
    assert_eq!(snap.counter_total("replication_apply_errors_total"), 0);
    // Replication wrote through the hub warehouse's binlog.
    assert!(snap.counter_total("warehouse_binlog_appends_total") > 0);
    assert!(snap.counter_total("warehouse_binlog_bytes_total") > 0);

    // Federated queries time the fan-out per satellite.
    let q = Query::new().aggregate(Aggregate::of(AggFn::Sum, "cpu_hours", "total"));
    let total = fed
        .hub()
        .federated_query(RealmKind::Jobs, &q)
        .unwrap()
        .scalar_f64("total")
        .unwrap();
    assert!(total > 0.0);
    let snap = fed.hub().telemetry().snapshot();
    for sat in ["x", "y"] {
        let h = snap
            .histogram("hub_satellite_query_seconds", &[("satellite", sat)])
            .unwrap_or_else(|| panic!("satellite {sat} untimed"));
        assert!(h.count >= 1);
        assert!(h.max.is_finite());
    }
    assert!(snap.histogram("hub_federated_query_seconds", &[]).is_some());

    // The ops dashboard renders the maintenance window's lag series and
    // the latency table, and the meta schema is queryable like any realm.
    let report = fed.hub().ops_report().unwrap();
    let text = report.render();
    assert!(text.contains("Replication lag"), "no lag series in:\n{text}");
    assert!(text.contains("Operation latency quantiles"));
    let hub_db = fed.hub().database();
    let db = hub_db.read();
    assert!(db.table("xdmod_meta", "ops_lag_samples").unwrap().len() > 0);
    drop(db);

    // Prometheus text carries the per-link counters; JSON exposition is
    // well-formed.
    let prom = fed.hub().telemetry().prometheus_text();
    assert!(prom.contains("replication_events_applied_total{link=\"x\"}"));
    assert!(prom.contains("# TYPE warehouse_binlog_appends_total counter"));
    let json: serde_json::Value =
        serde_json::from_str(&fed.hub().telemetry().json()).expect("exposition JSON parses");
    assert!(json["counters"].is_array());
    assert!(json["histograms"].is_array());
}

#[test]
fn preflight_refuses_go_live_and_reports_to_telemetry() {
    // `schema_for` sanitizes both names to inst_site_a: pre-flight's
    // XC0001 (hub schema collision) must stop go_live before any
    // replication thread starts, and the refusal must be visible on the
    // same ops registry the dashboard reads.
    let a = satellite("site-a", "res-a", 41);
    let b = satellite("site.a", "res-b", 42);
    let mut fed = Federation::new(FederationHub::new("ops-hub"));
    fed.join_tight(&a, FederationConfig::default()).unwrap();
    fed.join_tight(&b, FederationConfig::default()).unwrap();

    let err = fed.go_live(Duration::from_millis(1)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("XC0001"), "diagnostics missing from: {msg}");
    assert!(msg.contains("go_live_forced"), "no override hint in: {msg}");

    // The refusal left an audit event with the error count.
    let events = fed
        .hub()
        .telemetry()
        .events_of_kind("federation.preflight_refused");
    assert_eq!(events.len(), 1);

    // Nothing went live: both links are still in polled mode.
    assert!(fed.pause_member("site-a").is_err());
    assert!(fed.pause_member("site.a").is_err());

    // An operator who has reviewed the report can still force the
    // switch; quiesce returns the links to polled mode cleanly.
    assert_eq!(fed.go_live_forced(Duration::from_millis(1)), 2);
    assert_eq!(fed.quiesce().unwrap(), 2);
}

#[test]
fn satellite_registries_can_share_the_hub_view() {
    let mut x = XdmodInstance::new("x");
    let mut fed = Federation::new(FederationHub::new("hub"));
    // Attach the hub's registry to the satellite *before* ingesting:
    // ingest counters and satellite-local query timings land in the same
    // federation-wide view.
    x.set_telemetry(fed.hub().telemetry().clone());
    let sim = ClusterSim::new(ResourceProfile::generic("r", 64, 8.0, 1.0), 7);
    x.ingest_sacct("r", &sim.sacct_log(2017, 1..=1)).unwrap();
    fed.join_tight(&x, FederationConfig::default()).unwrap();
    fed.sync().unwrap();

    let snap = fed.hub().telemetry().snapshot();
    assert!(snap
        .counter("ingest_records_total", &[("format", "sacct")])
        .is_some_and(|n| n > 0));
    assert!(snap
        .counter("replication_events_read_total", &[("link", "x")])
        .is_some_and(|n| n > 0));
}
